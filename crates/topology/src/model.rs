//! The topology arena: primitives, structural rules, and connectivity
//! queries, all without coordinates.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Identifier of a node (0-dimensional primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of an edge (1-dimensional primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Identifier of a face (2-dimensional primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaceId(pub u32);

/// Identifier of a TopoSolid (3-dimensional primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SolidId(pub u32);

/// A directed use of an edge: "a face is a 2-dimensional primitive bounded
/// by a set of directed edges" (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectedEdge {
    /// The underlying edge.
    pub edge: EdgeId,
    /// True = traversed start→end, false = end→start.
    pub forward: bool,
}

impl DirectedEdge {
    /// Forward use of `edge`.
    pub fn forward(edge: EdgeId) -> DirectedEdge {
        DirectedEdge {
            edge,
            forward: true,
        }
    }

    /// Reverse use of `edge`.
    pub fn reverse(edge: EdgeId) -> DirectedEdge {
        DirectedEdge {
            edge,
            forward: false,
        }
    }
}

/// Structural errors raised by topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced primitive id does not exist in the model.
    UnknownPrimitive(String),
    /// An edge's endpoints are the same node (loops are disallowed here).
    DegenerateEdge,
    /// A face boundary is empty — List 5 requires ≥ 1 edge.
    EmptyFaceBoundary,
    /// A face boundary's directed edges do not chain into a closed loop.
    OpenFaceBoundary {
        /// Index of the directed edge where the chain breaks.
        at: usize,
    },
    /// A face already bounds two TopoSolids — List 5's `maxCardinality 2`.
    FaceSolidLimit(FaceId),
    /// A solid needs at least one bounding face.
    EmptySolidShell,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownPrimitive(which) => write!(f, "unknown primitive: {which}"),
            TopologyError::DegenerateEdge => write!(f, "edge endpoints must differ"),
            TopologyError::EmptyFaceBoundary => {
                write!(f, "face boundary must contain at least one edge")
            }
            TopologyError::OpenFaceBoundary { at } => {
                write!(f, "face boundary breaks at directed edge {at}")
            }
            TopologyError::FaceSolidLimit(id) => {
                write!(f, "face {id:?} already bounds two TopoSolids")
            }
            TopologyError::EmptySolidShell => write!(f, "solid shell must contain a face"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone)]
struct Edge {
    start: NodeId,
    end: NodeId,
}

#[derive(Debug, Clone)]
struct Face {
    boundary: Vec<DirectedEdge>,
}

#[derive(Debug, Clone)]
struct Solid {
    shell: Vec<FaceId>,
}

/// The coordinate-free topology arena.
#[derive(Debug, Clone, Default)]
pub struct TopologyModel {
    nodes: u32,
    edges: Vec<Edge>,
    faces: Vec<Face>,
    solids: Vec<Solid>,
    /// node → incident edges (co-boundary of dimension 0→1).
    node_edges: HashMap<NodeId, Vec<EdgeId>>,
    /// edge → faces using it (co-boundary of dimension 1→2).
    edge_faces: HashMap<EdgeId, Vec<FaceId>>,
    /// face → solids it bounds (co-boundary of dimension 2→3).
    face_solids: HashMap<FaceId, Vec<SolidId>>,
}

impl TopologyModel {
    /// Empty model.
    pub fn new() -> TopologyModel {
        TopologyModel::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes as usize
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of faces.
    pub fn face_count(&self) -> usize {
        self.faces.len()
    }

    /// Number of solids.
    pub fn solid_count(&self) -> usize {
        self.solids.len()
    }

    /// Add an isolated node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes);
        self.nodes += 1;
        id
    }

    /// Whether `n` exists.
    pub fn has_node(&self, n: NodeId) -> bool {
        n.0 < self.nodes
    }

    /// Add an edge between two distinct existing nodes.
    pub fn add_edge(&mut self, start: NodeId, end: NodeId) -> Result<EdgeId, TopologyError> {
        if !self.has_node(start) || !self.has_node(end) {
            return Err(TopologyError::UnknownPrimitive("node".into()));
        }
        if start == end {
            return Err(TopologyError::DegenerateEdge);
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { start, end });
        self.node_edges.entry(start).or_default().push(id);
        self.node_edges.entry(end).or_default().push(id);
        Ok(id)
    }

    /// Endpoints `(start, end)` of an edge.
    pub fn edge_nodes(&self, e: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges
            .get(e.0 as usize)
            .map(|edge| (edge.start, edge.end))
    }

    /// Origin node of a directed edge use.
    pub fn directed_start(&self, d: DirectedEdge) -> Option<NodeId> {
        let (s, e) = self.edge_nodes(d.edge)?;
        Some(if d.forward { s } else { e })
    }

    /// Target node of a directed edge use.
    pub fn directed_end(&self, d: DirectedEdge) -> Option<NodeId> {
        let (s, e) = self.edge_nodes(d.edge)?;
        Some(if d.forward { e } else { s })
    }

    /// Add a face bounded by a closed chain of directed edges.
    pub fn add_face(&mut self, boundary: Vec<DirectedEdge>) -> Result<FaceId, TopologyError> {
        if boundary.is_empty() {
            return Err(TopologyError::EmptyFaceBoundary);
        }
        for d in &boundary {
            if self.edge_nodes(d.edge).is_none() {
                return Err(TopologyError::UnknownPrimitive("edge".into()));
            }
        }
        // The chain must be connected end-to-start, and closed.
        for i in 0..boundary.len() {
            let cur_end = self.directed_end(boundary[i]).expect("checked above");
            let next = boundary[(i + 1) % boundary.len()];
            let next_start = self.directed_start(next).expect("checked above");
            if cur_end != next_start {
                return Err(TopologyError::OpenFaceBoundary { at: i });
            }
        }
        let id = FaceId(self.faces.len() as u32);
        for d in &boundary {
            self.edge_faces.entry(d.edge).or_default().push(id);
        }
        self.faces.push(Face { boundary });
        Ok(id)
    }

    /// The directed boundary of a face.
    pub fn face_boundary(&self, f: FaceId) -> Option<&[DirectedEdge]> {
        self.faces
            .get(f.0 as usize)
            .map(|face| face.boundary.as_slice())
    }

    /// Add a TopoSolid bounded by faces; enforces List 5's limit of two
    /// solids per face.
    pub fn add_solid(&mut self, shell: Vec<FaceId>) -> Result<SolidId, TopologyError> {
        if shell.is_empty() {
            return Err(TopologyError::EmptySolidShell);
        }
        for f in &shell {
            if self.faces.get(f.0 as usize).is_none() {
                return Err(TopologyError::UnknownPrimitive("face".into()));
            }
            if self.face_solids.get(f).map_or(0, Vec::len) >= 2 {
                return Err(TopologyError::FaceSolidLimit(*f));
            }
        }
        let id = SolidId(self.solids.len() as u32);
        for f in &shell {
            self.face_solids.entry(*f).or_default().push(id);
        }
        self.solids.push(Solid { shell });
        Ok(id)
    }

    /// The faces bounding a solid.
    pub fn solid_shell(&self, s: SolidId) -> Option<&[FaceId]> {
        self.solids
            .get(s.0 as usize)
            .map(|solid| solid.shell.as_slice())
    }

    // --- co-boundary queries -------------------------------------------

    /// Edges incident to a node.
    pub fn edges_at(&self, n: NodeId) -> Vec<EdgeId> {
        self.node_edges.get(&n).cloned().unwrap_or_default()
    }

    /// Faces that use an edge.
    pub fn faces_of(&self, e: EdgeId) -> Vec<FaceId> {
        self.edge_faces.get(&e).cloned().unwrap_or_default()
    }

    /// Solids a face bounds.
    pub fn solids_of(&self, f: FaceId) -> Vec<SolidId> {
        self.face_solids.get(&f).cloned().unwrap_or_default()
    }

    /// Degree (number of incident edges) of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.edges_at(n).len()
    }

    // --- connectivity ----------------------------------------------------

    /// Nodes adjacent to `n` through one edge.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for e in self.edges_at(n) {
            let (s, t) = self.edge_nodes(e).expect("edge exists");
            out.push(if s == n { t } else { s });
        }
        out
    }

    /// Whether a path of edges connects `a` and `b` — "the connectivity
    /// information is enough to perform these operations".
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        q.push_back(a);
        seen.insert(a);
        while let Some(n) = q.pop_front() {
            for m in self.neighbors(n) {
                if m == b {
                    return true;
                }
                if seen.insert(m) {
                    q.push_back(m);
                }
            }
        }
        false
    }

    /// Shortest path (by hop count) between two nodes.
    pub fn shortest_path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut q = VecDeque::new();
        q.push_back(a);
        prev.insert(a, a);
        while let Some(n) = q.pop_front() {
            for m in self.neighbors(n) {
                if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(m) {
                    e.insert(n);
                    if m == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while cur != a {
                            cur = prev[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(m);
                }
            }
        }
        None
    }

    /// Number of connected components over nodes and edges.
    pub fn connected_components(&self) -> usize {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut components = 0;
        for i in 0..self.nodes {
            let n = NodeId(i);
            if seen.contains(&n) {
                continue;
            }
            components += 1;
            let mut q = VecDeque::new();
            q.push_back(n);
            seen.insert(n);
            while let Some(x) = q.pop_front() {
                for m in self.neighbors(x) {
                    if seen.insert(m) {
                        q.push_back(m);
                    }
                }
            }
        }
        components
    }

    /// Euler characteristic `V − E + F` of the 2-skeleton.
    pub fn euler_characteristic(&self) -> i64 {
        self.node_count() as i64 - self.edge_count() as i64 + self.face_count() as i64
    }

    /// Validate all co-dimension facts recorded in the model (internal
    /// consistency; used by property tests).
    pub fn validate(&self) -> Result<(), TopologyError> {
        for (f_idx, face) in self.faces.iter().enumerate() {
            for (i, d) in face.boundary.iter().enumerate() {
                let end = self
                    .directed_end(*d)
                    .ok_or_else(|| TopologyError::UnknownPrimitive("edge".into()))?;
                let next = face.boundary[(i + 1) % face.boundary.len()];
                let start = self
                    .directed_start(next)
                    .ok_or_else(|| TopologyError::UnknownPrimitive("edge".into()))?;
                if end != start {
                    return Err(TopologyError::OpenFaceBoundary { at: i });
                }
            }
            let _ = f_idx;
        }
        for solids in self.face_solids.values() {
            if solids.len() > 2 {
                return Err(TopologyError::FaceSolidLimit(FaceId(0)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle face: three nodes, three edges, one face.
    fn triangle() -> (TopologyModel, [NodeId; 3], [EdgeId; 3], FaceId) {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = m.add_edge(a, b).unwrap();
        let e1 = m.add_edge(b, c).unwrap();
        let e2 = m.add_edge(c, a).unwrap();
        let f = m
            .add_face(vec![
                DirectedEdge::forward(e0),
                DirectedEdge::forward(e1),
                DirectedEdge::forward(e2),
            ])
            .unwrap();
        (m, [a, b, c], [e0, e1, e2], f)
    }

    #[test]
    fn edge_construction_rules() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        assert!(m.add_edge(a, b).is_ok());
        assert_eq!(m.add_edge(a, a), Err(TopologyError::DegenerateEdge));
        assert!(matches!(
            m.add_edge(a, NodeId(99)),
            Err(TopologyError::UnknownPrimitive(_))
        ));
    }

    #[test]
    fn face_boundary_must_close() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = m.add_edge(a, b).unwrap();
        let e1 = m.add_edge(b, c).unwrap();
        // Open chain a→b→c.
        let err = m
            .add_face(vec![DirectedEdge::forward(e0), DirectedEdge::forward(e1)])
            .unwrap_err();
        assert!(matches!(err, TopologyError::OpenFaceBoundary { at: 1 }));
        assert_eq!(m.add_face(vec![]), Err(TopologyError::EmptyFaceBoundary));
    }

    #[test]
    fn reversed_edges_close_a_loop() {
        let mut m = TopologyModel::new();
        let a = m.add_node();
        let b = m.add_node();
        let c = m.add_node();
        let e0 = m.add_edge(a, b).unwrap();
        let e1 = m.add_edge(b, c).unwrap();
        let e2 = m.add_edge(a, c).unwrap(); // note: a→c, must be reversed
        let f = m.add_face(vec![
            DirectedEdge::forward(e0),
            DirectedEdge::forward(e1),
            DirectedEdge::reverse(e2),
        ]);
        assert!(f.is_ok());
    }

    #[test]
    fn coboundaries_track_uses() {
        let (m, [a, _, _], [e0, _, e2], f) = triangle();
        assert_eq!(m.edges_at(a).len(), 2);
        assert!(m.edges_at(a).contains(&e0) && m.edges_at(a).contains(&e2));
        assert_eq!(m.faces_of(e0), vec![f]);
        assert_eq!(m.degree(a), 2);
    }

    #[test]
    fn face_solid_cardinality_list5() {
        let (mut m, _, _, f) = triangle();
        let s1 = m.add_solid(vec![f]).unwrap();
        let s2 = m.add_solid(vec![f]).unwrap();
        assert_eq!(m.solids_of(f), vec![s1, s2]);
        // Third use violates maxCardinality 2.
        assert_eq!(m.add_solid(vec![f]), Err(TopologyError::FaceSolidLimit(f)));
        assert_eq!(m.add_solid(vec![]), Err(TopologyError::EmptySolidShell));
    }

    #[test]
    fn connectivity_without_coordinates() {
        let mut m = TopologyModel::new();
        let ns: Vec<NodeId> = (0..6).map(|_| m.add_node()).collect();
        m.add_edge(ns[0], ns[1]).unwrap();
        m.add_edge(ns[1], ns[2]).unwrap();
        m.add_edge(ns[3], ns[4]).unwrap();
        assert!(m.connected(ns[0], ns[2]));
        assert!(!m.connected(ns[0], ns[3]));
        assert!(m.connected(ns[5], ns[5]), "reflexive");
        assert_eq!(m.connected_components(), 3); // {0,1,2} {3,4} {5}
    }

    #[test]
    fn shortest_path_hops() {
        let mut m = TopologyModel::new();
        let ns: Vec<NodeId> = (0..4).map(|_| m.add_node()).collect();
        m.add_edge(ns[0], ns[1]).unwrap();
        m.add_edge(ns[1], ns[2]).unwrap();
        m.add_edge(ns[2], ns[3]).unwrap();
        m.add_edge(ns[0], ns[3]).unwrap(); // shortcut
        let p = m.shortest_path(ns[0], ns[3]).unwrap();
        assert_eq!(p, vec![ns[0], ns[3]]);
        assert!(m.shortest_path(ns[0], NodeId(99)).is_none());
    }

    #[test]
    fn euler_characteristic_of_shapes() {
        let (m, _, _, _) = triangle();
        // Disc: V − E + F = 3 − 3 + 1 = 1.
        assert_eq!(m.euler_characteristic(), 1);

        // Tetrahedron boundary: V=4, E=6, F=4 → χ=2 (sphere).
        let mut t = TopologyModel::new();
        let n: Vec<NodeId> = (0..4).map(|_| t.add_node()).collect();
        let mut e = HashMap::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                e.insert((i, j), t.add_edge(n[i], n[j]).unwrap());
            }
        }
        let de = |i: usize, j: usize| {
            if i < j {
                DirectedEdge::forward(e[&(i, j)])
            } else {
                DirectedEdge::reverse(e[&(j, i)])
            }
        };
        for tri in [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]] {
            t.add_face(vec![
                de(tri[0], tri[1]),
                de(tri[1], tri[2]),
                de(tri[2], tri[0]),
            ])
            .unwrap();
        }
        assert_eq!(t.euler_characteristic(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_passes_on_well_formed_model() {
        let (m, _, _, _) = triangle();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn error_display() {
        let e = TopologyError::OpenFaceBoundary { at: 2 };
        assert!(e.to_string().contains('2'));
    }
}
