//! `grdf:Observation` (§3.3.5): "represents recording/observing of a
//! feature. Observation itself is a Feature type and therefore can be used
//! as such in a transaction that accepts a Feature type."

use crate::feature::Feature;
use crate::time::TimeObject;
use crate::value::Value;

/// An observation of a target feature at a time, producing a result.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The observation *is a* feature (per the paper); its IRI, type and
    /// extra properties live here.
    pub feature: Feature,
    /// IRI of the observed feature.
    pub target: String,
    /// When the observation was made.
    pub time: TimeObject,
    /// The recorded result.
    pub result: Value,
    /// What was measured (free-form, e.g. `turbidity`, `ph`).
    pub observed_property: String,
}

impl Observation {
    /// Create an observation; the carrier feature is typed
    /// `grdf:Observation`-compatible (`Observation` local name).
    pub fn new(
        iri: &str,
        target: &str,
        time: TimeObject,
        observed_property: &str,
        result: Value,
    ) -> Observation {
        Observation {
            feature: Feature::new(iri, "Observation"),
            target: target.to_string(),
            time,
            result,
            observed_property: observed_property.to_string(),
        }
    }

    /// Convert into the carrier feature with the observation facts folded
    /// in as properties — this is what "Observation is a Feature" buys: any
    /// transaction that accepts features accepts observations.
    pub fn into_feature(mut self) -> Feature {
        self.feature
            .set_property("observedFeature", Value::Uri(self.target.clone()));
        self.feature
            .set_property("observedProperty", self.observed_property.as_str());
        self.feature
            .set_property("phenomenonTime", Value::Time(self.time.begin()));
        if self.time.end() != self.time.begin() {
            self.feature
                .set_property("phenomenonTimeEnd", Value::Time(self.time.end()));
        }
        self.feature.set_property("result", self.result.clone());
        self.feature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{TimeInstant, TimePeriod};

    #[test]
    fn instant_observation_folds_to_feature() {
        let t = TimeInstant::parse("2026-07-06T08:00:00Z").unwrap();
        let obs = Observation::new(
            "urn:obs1",
            "urn:stream7",
            TimeObject::Instant(t),
            "turbidity",
            Value::Double(4.2),
        );
        let f = obs.into_feature();
        assert_eq!(f.feature_type, "Observation");
        assert_eq!(
            f.property("observedFeature"),
            Some(&Value::Uri("urn:stream7".into()))
        );
        assert_eq!(f.property("result"), Some(&Value::Double(4.2)));
        assert_eq!(f.property("phenomenonTime"), Some(&Value::Time(t)));
        assert!(
            f.property("phenomenonTimeEnd").is_none(),
            "instants have no end"
        );
    }

    #[test]
    fn period_observation_keeps_both_bounds() {
        let begin = TimeInstant::from_epoch(100);
        let end = TimeInstant::from_epoch(200);
        let obs = Observation::new(
            "urn:obs2",
            "urn:site",
            TimeObject::Period(TimePeriod::new(begin, end).unwrap()),
            "discharge",
            Value::Integer(7),
        );
        let f = obs.into_feature();
        assert_eq!(f.property("phenomenonTime"), Some(&Value::Time(begin)));
        assert_eq!(f.property("phenomenonTimeEnd"), Some(&Value::Time(end)));
    }
}
