//! The GRDF feature model (paper §4) and the supporting types of §3.3.
//!
//! "A feature is a concrete object belonging to a particular domain. A
//! complex object builds on smaller features. A feature is defined using
//! the 'Feature' class and usually associated with its extent through
//! properties." This crate provides:
//!
//! * [`feature`] — [`feature::Feature`] and [`feature::FeatureCollection`]:
//!   typed application objects with properties, geometry and extent.
//! * [`bounding`] — `BoundingShape`: `Envelope`,
//!   `EnvelopeWithTimePeriod`, or `Null` ("a value of GRDF:Null will appear
//!   if an extent is not applicable or not available").
//! * [`time`] — `TimeObject` (§3.3.7): instants and periods with an
//!   ISO-8601 subset parser (no external time crates).
//! * [`value`] — `Value` (§3.3.4): "an aggregate concept for real-world
//!   values assignable to feature properties".
//! * [`observation`] — `Observation` (§3.3.5): "recording/observing of a
//!   feature. Observation itself is a Feature type."
//! * [`coverage`] — `Coverage` (§3.3.8): "the distribution of some
//!   quantitative or qualitative properties of an arbitrary object", e.g. a
//!   series of sensor temperatures.
//! * [`rdf_codec`] — encoding features to GRDF RDF triples and decoding
//!   them back (the shape shown in the paper's Lists 6–7).

pub mod bounding;
pub mod coverage;
pub mod feature;
pub mod observation;
pub mod rdf_codec;
pub mod time;
pub mod value;

pub use bounding::BoundingShape;
pub use coverage::Coverage;
pub use feature::{Feature, FeatureCollection};
pub use observation::Observation;
pub use rdf_codec::{decode_feature, decode_features, encode_feature};
pub use time::{TimeInstant, TimeObject, TimePeriod};
pub use value::Value;
