//! `grdf:BoundingShape` (§4): "It can specify the shape in terms of either
//! of two aforementioned envelope classes. A value of GRDF:Null will appear
//! if an extent is not applicable or not available for some reason."

use grdf_geometry::envelope::Envelope;

use crate::time::TimePeriod;

/// The extent of a feature.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundingShape {
    /// No extent — with the reason GML-style (`unknown`, `inapplicable`,
    /// `missing`, `withheld`...).
    Null(String),
    /// Spatial extent only.
    Envelope(Envelope),
    /// Spatial extent with a temporal dimension — the paper's
    /// `EnvelopeWithTimePeriod` with its **exactly two** time positions
    /// (begin and end — List 3's cardinality-2 restriction is what
    /// `TimePeriod`'s two fields encode structurally).
    EnvelopeWithTimePeriod(Envelope, TimePeriod),
}

impl BoundingShape {
    /// `grdf:Null` with the conventional `unknown` reason.
    pub fn unknown() -> BoundingShape {
        BoundingShape::Null("unknown".to_string())
    }

    /// The spatial envelope, when present.
    pub fn envelope(&self) -> Option<&Envelope> {
        match self {
            BoundingShape::Null(_) => None,
            BoundingShape::Envelope(e) => Some(e),
            BoundingShape::EnvelopeWithTimePeriod(e, _) => Some(e),
        }
    }

    /// The temporal extent, when present.
    pub fn time_period(&self) -> Option<&TimePeriod> {
        match self {
            BoundingShape::EnvelopeWithTimePeriod(_, p) => Some(p),
            _ => None,
        }
    }

    /// Whether the extent is absent.
    pub fn is_null(&self) -> bool {
        matches!(self, BoundingShape::Null(_))
    }

    /// GRDF class name for RDF encoding.
    pub fn class_name(&self) -> &'static str {
        match self {
            BoundingShape::Null(_) => "Null",
            BoundingShape::Envelope(_) => "Envelope",
            BoundingShape::EnvelopeWithTimePeriod(..) => "EnvelopeWithTimePeriod",
        }
    }
}

impl From<Envelope> for BoundingShape {
    fn from(e: Envelope) -> BoundingShape {
        BoundingShape::Envelope(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeInstant;
    use grdf_geometry::coord::Coord;

    #[test]
    fn accessors() {
        let e = Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(2.0, 2.0));
        let p = TimePeriod::new(TimeInstant::from_epoch(0), TimeInstant::from_epoch(100)).unwrap();
        let null = BoundingShape::unknown();
        assert!(null.is_null());
        assert!(null.envelope().is_none());
        assert_eq!(null.class_name(), "Null");

        let plain: BoundingShape = e.into();
        assert_eq!(plain.envelope().unwrap().area(), 4.0);
        assert!(plain.time_period().is_none());
        assert_eq!(plain.class_name(), "Envelope");

        let temporal = BoundingShape::EnvelopeWithTimePeriod(e, p);
        assert!(temporal.envelope().is_some());
        assert_eq!(temporal.time_period().unwrap().duration_seconds(), 100);
        assert_eq!(temporal.class_name(), "EnvelopeWithTimePeriod");
    }
}
