//! `grdf:Coverage` (§3.3.8): "the ability to represent the distribution of
//! some quantitative or qualitative properties of an arbitrary object. The
//! object may or may not be geospatial in nature. For example, a series of
//! sensor temperatures could be captured by the Coverage type."
//!
//! Implemented as a discrete point coverage: a sampled domain of positions
//! with one range value per sample, plus nearest-neighbour evaluation and
//! simple statistics.

use grdf_geometry::coord::Coord;
use grdf_geometry::envelope::Envelope;

use crate::value::Value;

/// A discrete point coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// What the range values measure (e.g. `temperature`).
    pub range_property: String,
    /// Sample positions.
    domain: Vec<Coord>,
    /// One value per position.
    values: Vec<Value>,
}

impl Coverage {
    /// Build a coverage; `None` when domain and range lengths differ or are
    /// empty.
    pub fn new(range_property: &str, domain: Vec<Coord>, values: Vec<Value>) -> Option<Coverage> {
        if domain.is_empty() || domain.len() != values.len() {
            return None;
        }
        Some(Coverage {
            range_property: range_property.to_string(),
            domain,
            values,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.domain.len()
    }

    /// Whether there are no samples (cannot occur for constructed values).
    pub fn is_empty(&self) -> bool {
        self.domain.is_empty()
    }

    /// The sample positions.
    pub fn domain(&self) -> &[Coord] {
        &self.domain
    }

    /// The sample values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Spatial extent of the domain.
    pub fn envelope(&self) -> Envelope {
        Envelope::of_coords(&self.domain).expect("non-empty by construction")
    }

    /// Nearest-neighbour evaluation at an arbitrary position.
    pub fn evaluate(&self, at: &Coord) -> &Value {
        let (idx, _) = self
            .domain
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.distance_2d(at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
            .expect("non-empty by construction");
        &self.values[idx]
    }

    /// Mean of the numeric range values (ignores non-numeric samples);
    /// `None` when no sample is numeric.
    pub fn mean(&self) -> Option<f64> {
        let nums: Vec<f64> = self.values.iter().filter_map(Value::as_f64).collect();
        if nums.is_empty() {
            return None;
        }
        Some(nums.iter().sum::<f64>() / nums.len() as f64)
    }

    /// Minimum and maximum of numeric range values.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().filter_map(Value::as_f64);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }

    /// Samples whose position falls inside `env`.
    pub fn samples_in(&self, env: &Envelope) -> Vec<(&Coord, &Value)> {
        self.domain
            .iter()
            .zip(&self.values)
            .filter(|(c, _)| env.contains(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_grid() -> Coverage {
        // A 2×2 grid of temperature sensors.
        Coverage::new(
            "temperature",
            vec![
                Coord::xy(0.0, 0.0),
                Coord::xy(10.0, 0.0),
                Coord::xy(0.0, 10.0),
                Coord::xy(10.0, 10.0),
            ],
            vec![
                Value::Double(20.0),
                Value::Double(22.0),
                Value::Double(24.0),
                Value::Double(30.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        assert!(Coverage::new("t", vec![], vec![]).is_none());
        assert!(Coverage::new("t", vec![Coord::xy(0.0, 0.0)], vec![]).is_none());
        assert!(Coverage::new("t", vec![Coord::xy(0.0, 0.0)], vec![Value::Integer(1)]).is_some());
    }

    #[test]
    fn nearest_neighbour_evaluation() {
        let c = sensor_grid();
        assert_eq!(c.evaluate(&Coord::xy(1.0, 1.0)), &Value::Double(20.0));
        assert_eq!(c.evaluate(&Coord::xy(9.0, 9.0)), &Value::Double(30.0));
        assert_eq!(c.evaluate(&Coord::xy(9.0, 1.0)), &Value::Double(22.0));
    }

    #[test]
    fn statistics() {
        let c = sensor_grid();
        assert_eq!(c.mean(), Some(24.0));
        assert_eq!(c.min_max(), Some((20.0, 30.0)));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn qualitative_values_allowed() {
        // "quantitative or qualitative properties".
        let c = Coverage::new(
            "landuse",
            vec![Coord::xy(0.0, 0.0), Coord::xy(1.0, 1.0)],
            vec![Value::from("residential"), Value::from("industrial")],
        )
        .unwrap();
        assert_eq!(c.mean(), None);
        assert_eq!(
            c.evaluate(&Coord::xy(0.9, 0.9)).as_str(),
            Some("industrial")
        );
    }

    #[test]
    fn spatial_queries() {
        let c = sensor_grid();
        assert_eq!(c.envelope().area(), 100.0);
        let window = Envelope::new(Coord::xy(-1.0, -1.0), Coord::xy(5.0, 5.0));
        assert_eq!(c.samples_in(&window).len(), 1);
    }
}
