//! Encoding features as GRDF triples and decoding them back.
//!
//! The triple shape mirrors the paper's Lists 6–7:
//!
//! ```text
//! app:NTEnergy  a app:ChemSite ;
//!     app:hasSiteName "North Texas Energy" ;
//!     grdf:hasGeometry [ a grdf:LineString ;
//!                        grdf:srsName  "http://…/TX83-NCF" ;
//!                        grdf:coordinates "2533822.17,7108248.82 …" ;
//!                        grdf:asWKT    "LINESTRING (…)" ] ;
//!     grdf:isBoundedBy [ a grdf:Envelope ; grdf:coordinates "…" ] .
//! ```
//!
//! Round-trip fidelity: exact for the WKT subset (Point, LineString,
//! Polygon, MultiPoint, MultiCurve); other geometry kinds are encoded by
//! envelope (documented substitution — DESIGN.md §2).

use grdf_geometry::coord::{format_coord_list, parse_coord_list, Coord};
use grdf_geometry::envelope::Envelope;
use grdf_geometry::geometry::Geometry;
use grdf_geometry::wkt;
use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Literal, Term};
use grdf_rdf::vocab::{grdf as ns, rdf};

use crate::bounding::BoundingShape;
use crate::feature::{Feature, FeatureCollection};
use crate::time::{TimeInstant, TimePeriod};
use crate::value::Value;

/// Resolve a feature-type or property name to a full IRI (local names live
/// in the `app:` namespace).
fn resolve_app(name: &str) -> String {
    if name.contains("://") || name.starts_with("urn:") {
        name.to_string()
    } else {
        ns::app(name)
    }
}

/// Compact an IRI back to a local name when it is in the `app:` namespace.
fn compact_app(iri: &str) -> String {
    iri.strip_prefix(ns::APP_NS)
        .map_or_else(|| iri.to_string(), str::to_string)
}

/// Encode one feature into `graph`; returns the subject term.
pub fn encode_feature(graph: &mut Graph, feature: &Feature) -> Term {
    let subject = Term::iri(&feature.iri);
    graph.add(
        subject.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&resolve_app(&feature.feature_type)),
    );
    // Every GRDF feature is also a grdf:Feature.
    graph.add(
        subject.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&ns::iri("Feature")),
    );

    for (prop, value) in &feature.properties {
        let p = Term::iri(&resolve_app(prop));
        for t in value.to_terms() {
            graph.add(subject.clone(), p.clone(), t);
        }
    }

    if let Some(geom) = &feature.geometry {
        let gnode = graph.fresh_blank();
        graph.add(
            subject.clone(),
            Term::iri(&ns::iri("hasGeometry")),
            gnode.clone(),
        );
        graph.add(
            gnode.clone(),
            Term::iri(rdf::TYPE),
            Term::iri(&ns::iri(geom.class_name())),
        );
        if let Some(srs) = &feature.srs_name {
            graph.add(
                gnode.clone(),
                Term::iri(&ns::iri("srsName")),
                Term::string(srs),
            );
        }
        graph.add(
            gnode.clone(),
            Term::iri(&ns::iri("asWKT")),
            Term::string(&wkt::to_wkt(geom)),
        );
        if let Some(coords) = flat_coords(geom) {
            graph.add(
                gnode,
                Term::iri(&ns::iri("coordinates")),
                Term::string(&format_coord_list(&coords)),
            );
        }
    }

    encode_bounding(
        graph,
        &subject,
        &feature.bounded_by,
        feature.srs_name.as_deref(),
    );
    subject
}

fn encode_bounding(graph: &mut Graph, subject: &Term, b: &BoundingShape, srs: Option<&str>) {
    let p_bounded = Term::iri(&ns::iri("isBoundedBy"));
    match b {
        BoundingShape::Null(reason) => {
            let node = graph.fresh_blank();
            graph.add(subject.clone(), p_bounded, node.clone());
            graph.add(
                node.clone(),
                Term::iri(rdf::TYPE),
                Term::iri(&ns::iri("Null")),
            );
            graph.add(
                node,
                Term::iri(&ns::iri("nullReason")),
                Term::string(reason),
            );
        }
        BoundingShape::Envelope(env) => {
            let node = encode_envelope(graph, env, srs, "Envelope");
            graph.add(subject.clone(), p_bounded, node);
        }
        BoundingShape::EnvelopeWithTimePeriod(env, period) => {
            let node = encode_envelope(graph, env, srs, "EnvelopeWithTimePeriod");
            // List 3: exactly two grdf:hasTimePosition values.
            for t in [period.begin, period.end] {
                graph.add(
                    node.clone(),
                    Term::iri(&ns::iri("hasTimePosition")),
                    Term::Literal(Literal::date_time(&t.to_iso8601())),
                );
            }
            graph.add(subject.clone(), p_bounded, node);
        }
    }
}

fn encode_envelope(graph: &mut Graph, env: &Envelope, srs: Option<&str>, class: &str) -> Term {
    let node = graph.fresh_blank();
    graph.add(
        node.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&ns::iri(class)),
    );
    if let Some(srs) = srs {
        graph.add(
            node.clone(),
            Term::iri(&ns::iri("srsName")),
            Term::string(srs),
        );
    }
    graph.add(
        node.clone(),
        Term::iri(&ns::iri("coordinates")),
        Term::string(&format_coord_list(&[env.min, env.max])),
    );
    node
}

/// Coordinates for the `grdf:coordinates` literal (primitive shapes only).
fn flat_coords(g: &Geometry) -> Option<Vec<Coord>> {
    match g {
        Geometry::Point(p) => Some(vec![p.coord]),
        Geometry::LineString(l) => Some(l.coords.clone()),
        Geometry::Ring(r) => Some(r.coords.clone()),
        Geometry::Polygon(p) => Some(p.exterior.coords.clone()),
        _ => None,
    }
}

/// Decode the feature rooted at `subject` from `graph`; `None` when the
/// subject has no `app:`/typed description.
pub fn decode_feature(graph: &Graph, subject: &Term) -> Option<Feature> {
    let types = graph.objects(subject, &Term::iri(rdf::TYPE));
    // The application type is any non-grdf, non-blank type.
    let app_type = types.iter().find_map(|t| {
        let iri = t.as_iri()?;
        (!iri.starts_with(ns::NS)
            && !iri.starts_with(grdf_rdf::vocab::owl::NS)
            && !iri.starts_with(grdf_rdf::vocab::rdfs::NS))
        .then(|| compact_app(iri))
    })?;

    let iri = subject.as_iri()?.to_string();
    let mut feature = Feature::new(&iri, &app_type);

    for t in graph.match_pattern(Some(subject), None, None) {
        let Some(pred) = t.predicate.as_iri() else {
            continue;
        };
        if pred == rdf::TYPE {
            continue;
        }
        if pred == ns::iri("hasGeometry") {
            if let Some((geom, srs)) = decode_geometry(graph, &t.object) {
                feature.srs_name = srs.or(feature.srs_name);
                feature.geometry = Some(geom);
            }
            continue;
        }
        if pred == ns::iri("isBoundedBy") {
            if let Some(b) = decode_bounding(graph, &t.object) {
                feature.bounded_by = b;
            }
            continue;
        }
        if pred.starts_with(ns::NS) {
            continue; // other grdf-internal bookkeeping
        }
        feature
            .properties
            .push((compact_app(pred), Value::from_term(&t.object)));
    }
    Some(feature)
}

fn decode_geometry(graph: &Graph, node: &Term) -> Option<(Geometry, Option<String>)> {
    let srs = graph
        .object(node, &Term::iri(&ns::iri("srsName")))
        .and_then(|t| t.as_literal().map(|l| l.lexical().to_string()));
    // Prefer WKT (full fidelity for the subset), fall back to coordinates.
    if let Some(w) = graph.object(node, &Term::iri(&ns::iri("asWKT"))) {
        if let Some(g) = w.as_literal().and_then(|l| wkt::parse_wkt(l.lexical())) {
            return Some((g, srs));
        }
    }
    let coords_text = graph.object(node, &Term::iri(&ns::iri("coordinates")))?;
    let coords = parse_coord_list(coords_text.as_literal()?.lexical(), 2)?;
    let class = graph
        .object(node, &Term::iri(rdf::TYPE))
        .and_then(|t| t.as_iri().map(|i| i.trim_start_matches(ns::NS).to_string()))
        .unwrap_or_default();
    let geom = match class.as_str() {
        "Point" => Geometry::Point(grdf_geometry::primitives::Point::at(*coords.first()?)),
        "Polygon" | "Ring" | "Surface" => Geometry::Polygon(
            grdf_geometry::primitives::Polygon::new(grdf_geometry::primitives::Ring::new(coords)?),
        ),
        _ => Geometry::LineString(grdf_geometry::primitives::LineString::new(coords)?),
    };
    Some((geom, srs))
}

fn decode_bounding(graph: &Graph, node: &Term) -> Option<BoundingShape> {
    let class = graph
        .object(node, &Term::iri(rdf::TYPE))
        .and_then(|t| t.as_iri().map(|i| i.trim_start_matches(ns::NS).to_string()))?;
    match class.as_str() {
        "Null" => {
            let reason = graph
                .object(node, &Term::iri(&ns::iri("nullReason")))
                .and_then(|t| t.as_literal().map(|l| l.lexical().to_string()))
                .unwrap_or_else(|| "unknown".to_string());
            Some(BoundingShape::Null(reason))
        }
        "Envelope" | "EnvelopeWithTimePeriod" => {
            let coords_text = graph.object(node, &Term::iri(&ns::iri("coordinates")))?;
            let coords = parse_coord_list(coords_text.as_literal()?.lexical(), 2)?;
            if coords.len() < 2 {
                return None;
            }
            let env = Envelope::new(coords[0], coords[1]);
            if class == "Envelope" {
                return Some(BoundingShape::Envelope(env));
            }
            let mut times: Vec<TimeInstant> = graph
                .objects(node, &Term::iri(&ns::iri("hasTimePosition")))
                .into_iter()
                .filter_map(|t| t.as_literal().and_then(|l| TimeInstant::parse(l.lexical())))
                .collect();
            times.sort();
            match times.as_slice() {
                [begin, .., end] => Some(BoundingShape::EnvelopeWithTimePeriod(
                    env,
                    TimePeriod::new(*begin, *end)?,
                )),
                _ => Some(BoundingShape::Envelope(env)),
            }
        }
        _ => None,
    }
}

/// Decode every feature in a graph (each subject carrying an `app:` type).
pub fn decode_features(graph: &Graph) -> FeatureCollection {
    let mut out = FeatureCollection::new();
    for subject in graph.all_subjects() {
        if subject.is_blank() {
            continue; // geometry / envelope nodes
        }
        if let Some(f) = decode_feature(graph, &subject) {
            out.push(f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_geometry::primitives::{LineString, Point, Polygon, Ring};

    fn list6_feature() -> Feature {
        // Mirrors List 6: a hydrology stream centerline.
        let mut f = Feature::new(
            "http://grdf.org/app#VECTOR.HYDRO_STREAMS_CENSUS_line.11070",
            "Stream",
        );
        f.set_property("hasObjectID", 11070i64);
        f.srs_name = Some("http://grdf.org/crs/TX83-NCF".to_string());
        f.set_geometry(
            LineString::new(vec![
                Coord::xy(2533822.17263276, 7108248.82783879),
                Coord::xy(2533900.5, 7108300.25),
                Coord::xy(2534011.0, 7108352.5),
            ])
            .unwrap()
            .into(),
        );
        f
    }

    #[test]
    fn encode_produces_list6_shape() {
        let mut g = Graph::new();
        let subject = encode_feature(&mut g, &list6_feature());
        // Typed both as app:Stream and grdf:Feature.
        assert!(g.has(
            &subject,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::app("Stream"))
        ));
        assert!(g.has(
            &subject,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::iri("Feature"))
        ));
        // Property keeps its integer type.
        let oid = g
            .object(&subject, &Term::iri(&ns::app("hasObjectID")))
            .unwrap();
        assert_eq!(oid.as_literal().unwrap().as_integer(), Some(11070));
        // Geometry node with class, srsName, coordinates and WKT.
        let gnode = g
            .object(&subject, &Term::iri(&ns::iri("hasGeometry")))
            .unwrap();
        assert!(g.has(
            &gnode,
            &Term::iri(rdf::TYPE),
            &Term::iri(&ns::iri("LineString"))
        ));
        let coords = g
            .object(&gnode, &Term::iri(&ns::iri("coordinates")))
            .unwrap();
        assert!(coords
            .as_literal()
            .unwrap()
            .lexical()
            .starts_with("2533822.17263276,"));
    }

    #[test]
    fn roundtrip_linestring_feature() {
        let f = list6_feature();
        let mut g = Graph::new();
        let subject = encode_feature(&mut g, &f);
        let back = decode_feature(&g, &subject).unwrap();
        assert_eq!(back.iri, f.iri);
        assert_eq!(back.feature_type, "Stream");
        assert_eq!(back.property("hasObjectID"), Some(&Value::Integer(11070)));
        assert_eq!(back.geometry, f.geometry);
        assert_eq!(back.srs_name, f.srs_name);
    }

    #[test]
    fn roundtrip_point_and_polygon() {
        for geom in [
            Geometry::Point(Point::new(1.5, 2.5)),
            Geometry::Polygon(Polygon::new(
                Ring::new(vec![
                    Coord::xy(0.0, 0.0),
                    Coord::xy(4.0, 0.0),
                    Coord::xy(4.0, 4.0),
                    Coord::xy(0.0, 4.0),
                ])
                .unwrap(),
            )),
        ] {
            let mut f = Feature::new("urn:f", "Site");
            f.set_geometry(geom.clone());
            let mut g = Graph::new();
            let s = encode_feature(&mut g, &f);
            let back = decode_feature(&g, &s).unwrap();
            assert_eq!(back.geometry, Some(geom));
        }
    }

    #[test]
    fn roundtrip_null_and_temporal_extents() {
        // Null extent.
        let f = Feature::new("urn:n", "Thing");
        let mut g = Graph::new();
        let s = encode_feature(&mut g, &f);
        let back = decode_feature(&g, &s).unwrap();
        assert_eq!(back.bounded_by, BoundingShape::Null("unknown".into()));

        // EnvelopeWithTimePeriod (List 3 shape: two time positions).
        let mut f2 = Feature::new("urn:t", "Thing");
        let env = Envelope::new(Coord::xy(0.0, 0.0), Coord::xy(5.0, 5.0));
        let period = TimePeriod::new(
            TimeInstant::parse("2020-01-01").unwrap(),
            TimeInstant::parse("2020-06-01").unwrap(),
        )
        .unwrap();
        f2.bounded_by = BoundingShape::EnvelopeWithTimePeriod(env, period);
        let mut g2 = Graph::new();
        let s2 = encode_feature(&mut g2, &f2);
        // Exactly two hasTimePosition triples on the envelope node.
        let bnode = g2.object(&s2, &Term::iri(&ns::iri("isBoundedBy"))).unwrap();
        assert_eq!(
            g2.objects(&bnode, &Term::iri(&ns::iri("hasTimePosition")))
                .len(),
            2
        );
        let back2 = decode_feature(&g2, &s2).unwrap();
        assert_eq!(back2.bounded_by, f2.bounded_by);
    }

    #[test]
    fn decode_features_finds_all_and_skips_blanks() {
        let mut g = Graph::new();
        encode_feature(&mut g, &list6_feature());
        let mut f2 = Feature::new("urn:site", "ChemSite");
        f2.set_property("hasSiteName", "North Texas Energy");
        encode_feature(&mut g, &f2);
        let all = decode_features(&g);
        assert_eq!(all.len(), 2);
        assert!(all.find("urn:site").is_some());
    }

    #[test]
    fn absolute_type_iris_pass_through() {
        let f = Feature::new("urn:x", "http://other.org/vocab#Factory");
        let mut g = Graph::new();
        let s = encode_feature(&mut g, &f);
        assert!(g.has(
            &s,
            &Term::iri(rdf::TYPE),
            &Term::iri("http://other.org/vocab#Factory")
        ));
        let back = decode_feature(&g, &s).unwrap();
        assert_eq!(back.feature_type, "http://other.org/vocab#Factory");
    }

    #[test]
    fn composite_values_flatten_to_repeated_properties() {
        let mut f = Feature::new("urn:c", "Site");
        f.set_property(
            "hasChemical",
            Value::Composite(vec![Value::from("Sulfuric Acid"), Value::from("Chlorine")]),
        );
        let mut g = Graph::new();
        let s = encode_feature(&mut g, &f);
        assert_eq!(g.objects(&s, &Term::iri(&ns::app("hasChemical"))).len(), 2);
        let back = decode_feature(&g, &s).unwrap();
        assert_eq!(back.property_values("hasChemical").len(), 2);
    }
}
