//! `grdf:Feature` — "an application object such as 'landfill' and
//! 'building'" (§3.3.1) — and feature collections.

use grdf_geometry::envelope::Envelope;
use grdf_geometry::geometry::Geometry;

use crate::bounding::BoundingShape;
use crate::value::Value;

/// A typed application object with properties, geometry and extent.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// The feature's IRI.
    pub iri: String,
    /// Its application type — a full IRI, or a local name resolved against
    /// the `app:` namespace by the codec (e.g. `ChemSite`).
    pub feature_type: String,
    /// Domain properties in insertion order (property IRI/local name,
    /// value). A property may repeat.
    pub properties: Vec<(String, Value)>,
    /// Concrete geometry, when any.
    pub geometry: Option<Geometry>,
    /// Extent (`grdf:isBoundedBy`).
    pub bounded_by: BoundingShape,
    /// The CRS of coordinates (`grdf:srsName`).
    pub srs_name: Option<String>,
}

impl Feature {
    /// New feature with no properties and an unknown extent.
    pub fn new(iri: &str, feature_type: &str) -> Feature {
        Feature {
            iri: iri.to_string(),
            feature_type: feature_type.to_string(),
            properties: Vec::new(),
            geometry: None,
            bounded_by: BoundingShape::unknown(),
            srs_name: None,
        }
    }

    /// Add a property (builder style).
    #[must_use]
    pub fn with_property(mut self, name: &str, value: impl Into<Value>) -> Feature {
        self.set_property(name, value);
        self
    }

    /// Add a property.
    pub fn set_property(&mut self, name: &str, value: impl Into<Value>) {
        self.properties.push((name.to_string(), value.into()));
    }

    /// First value of a property.
    pub fn property(&self, name: &str) -> Option<&Value> {
        self.properties
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// All values of a property.
    pub fn property_values(&self, name: &str) -> Vec<&Value> {
        self.properties
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v)
            .collect()
    }

    /// Attach geometry and refresh the envelope-based extent.
    pub fn set_geometry(&mut self, g: Geometry) {
        if let Some(env) = g.envelope() {
            if self.bounded_by.is_null() {
                self.bounded_by = BoundingShape::Envelope(env);
            }
        }
        self.geometry = Some(g);
    }

    /// The effective spatial extent: explicit bound, else the geometry's.
    pub fn envelope(&self) -> Option<Envelope> {
        self.bounded_by
            .envelope()
            .copied()
            .or_else(|| self.geometry.as_ref().and_then(Geometry::envelope))
    }
}

/// A collection of features — itself conceptually a feature in GML/GRDF.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureCollection {
    /// Members in order.
    pub features: Vec<Feature>,
}

impl FeatureCollection {
    /// Empty collection.
    pub fn new() -> FeatureCollection {
        FeatureCollection::default()
    }

    /// Add a member.
    pub fn push(&mut self, f: Feature) {
        self.features.push(f);
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Find a member by IRI.
    pub fn find(&self, iri: &str) -> Option<&Feature> {
        self.features.iter().find(|f| f.iri == iri)
    }

    /// Union envelope of all members with extents.
    pub fn envelope(&self) -> Option<Envelope> {
        self.features
            .iter()
            .filter_map(Feature::envelope)
            .reduce(|a, b| a.union(&b))
    }

    /// Members whose extent intersects `query`.
    pub fn in_envelope(&self, query: &Envelope) -> Vec<&Feature> {
        self.features
            .iter()
            .filter(|f| f.envelope().is_some_and(|e| e.intersects(query)))
            .collect()
    }

    /// Members of a given type.
    pub fn of_type(&self, feature_type: &str) -> Vec<&Feature> {
        self.features
            .iter()
            .filter(|f| f.feature_type == feature_type)
            .collect()
    }
}

impl FromIterator<Feature> for FeatureCollection {
    fn from_iter<I: IntoIterator<Item = Feature>>(iter: I) -> Self {
        FeatureCollection {
            features: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_geometry::coord::Coord;
    use grdf_geometry::primitives::{LineString, Point};

    #[test]
    fn properties_accumulate_and_repeat() {
        let mut f = Feature::new("urn:f1", "ChemSite");
        f.set_property("hasChemName", "Sulfuric Acid");
        f.set_property("hasChemName", "Chlorine");
        f.set_property("hasSiteId", 4221i64);
        assert_eq!(f.property("hasSiteId"), Some(&Value::Integer(4221)));
        assert_eq!(f.property_values("hasChemName").len(), 2);
        assert_eq!(f.property("missing"), None);
    }

    #[test]
    fn geometry_sets_extent() {
        let mut f = Feature::new("urn:f1", "Stream");
        assert!(f.envelope().is_none());
        f.set_geometry(
            LineString::new(vec![Coord::xy(0.0, 0.0), Coord::xy(10.0, 5.0)])
                .unwrap()
                .into(),
        );
        let env = f.envelope().unwrap();
        assert_eq!(env.max, Coord::xy(10.0, 5.0));
        assert!(!f.bounded_by.is_null());
    }

    #[test]
    fn explicit_bound_wins_over_geometry() {
        let mut f = Feature::new("urn:f1", "Site");
        f.bounded_by =
            BoundingShape::Envelope(Envelope::new(Coord::xy(-5.0, -5.0), Coord::xy(5.0, 5.0)));
        f.set_geometry(Point::new(1.0, 1.0).into());
        assert_eq!(f.envelope().unwrap().area(), 100.0);
    }

    #[test]
    fn collection_queries() {
        let mut c = FeatureCollection::new();
        let mut a = Feature::new("urn:a", "Stream");
        a.set_geometry(Point::new(0.0, 0.0).into());
        let mut b = Feature::new("urn:b", "ChemSite");
        b.set_geometry(Point::new(10.0, 10.0).into());
        c.push(a);
        c.push(b);
        assert_eq!(c.len(), 2);
        assert!(c.find("urn:a").is_some());
        assert!(c.find("urn:z").is_none());
        assert_eq!(c.of_type("Stream").len(), 1);
        let q = Envelope::new(Coord::xy(-1.0, -1.0), Coord::xy(1.0, 1.0));
        assert_eq!(c.in_envelope(&q).len(), 1);
        let full = c.envelope().unwrap();
        assert_eq!(full.max, Coord::xy(10.0, 10.0));
    }

    #[test]
    fn builder_style() {
        let f = Feature::new("urn:f", "T")
            .with_property("a", 1i64)
            .with_property("b", "x");
        assert_eq!(f.properties.len(), 2);
    }

    #[test]
    fn collection_from_iterator() {
        let c: FeatureCollection = (0..3)
            .map(|i| Feature::new(&format!("urn:f{i}"), "T"))
            .collect();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.envelope().is_none(), "no extents yet");
    }
}
