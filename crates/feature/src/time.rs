//! Temporal types — `grdf:TimeObject` (§3.3.7): "a standardized way to
//! capture the timing elements of a feature or observation."
//!
//! Implemented without external time crates: instants are seconds since the
//! Unix epoch, converted to/from an ISO-8601 subset (`YYYY-MM-DD` and
//! `YYYY-MM-DDTHH:MM:SS` with optional `Z`) using the proleptic Gregorian
//! civil-day algorithm.

use std::fmt;

/// A point in time, seconds since 1970-01-01T00:00:00Z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeInstant {
    /// Seconds since the Unix epoch (may be negative).
    pub epoch_seconds: i64,
}

impl TimeInstant {
    /// Instant from epoch seconds.
    pub fn from_epoch(epoch_seconds: i64) -> TimeInstant {
        TimeInstant { epoch_seconds }
    }

    /// Instant from calendar components (UTC).
    pub fn from_ymd_hms(y: i64, m: u32, d: u32, hh: u32, mm: u32, ss: u32) -> Option<TimeInstant> {
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return None;
        }
        if hh > 23 || mm > 59 || ss > 59 {
            return None;
        }
        let days = days_from_civil(y, m, d);
        Some(TimeInstant {
            epoch_seconds: days * 86_400
                + i64::from(hh) * 3600
                + i64::from(mm) * 60
                + i64::from(ss),
        })
    }

    /// Parse an ISO-8601 subset: `YYYY-MM-DD` or `YYYY-MM-DDTHH:MM:SS`
    /// (optional trailing `Z`).
    pub fn parse(s: &str) -> Option<TimeInstant> {
        let s = s.trim().trim_end_matches('Z');
        let (date, time) = match s.split_once('T') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let mut dp = date.splitn(3, '-');
        // A leading '-' would make the year part empty; negative years are
        // out of scope.
        let y: i64 = dp.next()?.parse().ok()?;
        let m: u32 = dp.next()?.parse().ok()?;
        let d: u32 = dp.next()?.parse().ok()?;
        let (hh, mm, ss) = match time {
            None => (0, 0, 0),
            Some(t) => {
                let mut tp = t.splitn(3, ':');
                (
                    tp.next()?.parse().ok()?,
                    tp.next()?.parse().ok()?,
                    tp.next().unwrap_or("0").parse().ok()?,
                )
            }
        };
        TimeInstant::from_ymd_hms(y, m, d, hh, mm, ss)
    }

    /// Calendar components `(year, month, day, hour, minute, second)` (UTC).
    pub fn to_ymd_hms(&self) -> (i64, u32, u32, u32, u32, u32) {
        let days = self.epoch_seconds.div_euclid(86_400);
        let secs = self.epoch_seconds.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (secs / 3600) as u32,
            ((secs % 3600) / 60) as u32,
            (secs % 60) as u32,
        )
    }

    /// ISO-8601 rendering with a `Z` suffix.
    pub fn to_iso8601(&self) -> String {
        let (y, m, d, hh, mm, ss) = self.to_ymd_hms();
        format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
    }
}

impl fmt::Display for TimeInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_iso8601())
    }
}

/// Days from the epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // Mar=0 … Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(y) => 29,
        2 => 28,
        _ => 0,
    }
}

/// A closed time interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimePeriod {
    /// Period start.
    pub begin: TimeInstant,
    /// Period end (≥ begin).
    pub end: TimeInstant,
}

impl TimePeriod {
    /// Build a period; `None` when `end < begin`.
    pub fn new(begin: TimeInstant, end: TimeInstant) -> Option<TimePeriod> {
        (end >= begin).then_some(TimePeriod { begin, end })
    }

    /// Duration in seconds.
    pub fn duration_seconds(&self) -> i64 {
        self.end.epoch_seconds - self.begin.epoch_seconds
    }

    /// Whether `t` falls inside (inclusive).
    pub fn contains(&self, t: TimeInstant) -> bool {
        t >= self.begin && t <= self.end
    }

    /// Whether two periods share any instant.
    pub fn overlaps(&self, other: &TimePeriod) -> bool {
        self.begin <= other.end && other.begin <= self.end
    }
}

/// `grdf:TimeObject`: either an instant or a period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeObject {
    /// A single instant.
    Instant(TimeInstant),
    /// An interval.
    Period(TimePeriod),
}

impl TimeObject {
    /// Earliest instant covered.
    pub fn begin(&self) -> TimeInstant {
        match self {
            TimeObject::Instant(t) => *t,
            TimeObject::Period(p) => p.begin,
        }
    }

    /// Latest instant covered.
    pub fn end(&self) -> TimeInstant {
        match self {
            TimeObject::Instant(t) => *t,
            TimeObject::Period(p) => p.end,
        }
    }

    /// Whether this time object intersects another.
    pub fn intersects(&self, other: &TimeObject) -> bool {
        self.begin() <= other.end() && other.begin() <= self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        let t = TimeInstant::parse("1970-01-01T00:00:00Z").unwrap();
        assert_eq!(t.epoch_seconds, 0);
    }

    #[test]
    fn known_timestamps() {
        // 2008-01-22 (the paper's online date) 00:00 UTC.
        let t = TimeInstant::parse("2008-01-22").unwrap();
        assert_eq!(t.epoch_seconds, 1_200_960_000);
        let t2 = TimeInstant::parse("2000-03-01T12:00:00").unwrap();
        assert_eq!(t2.epoch_seconds, 951_912_000);
    }

    #[test]
    fn roundtrip_iso8601() {
        for s in [
            "1970-01-01T00:00:00Z",
            "1999-12-31T23:59:59Z",
            "2000-02-29T12:30:45Z",
            "2026-07-06T08:00:00Z",
            "1960-06-15T01:02:03Z",
        ] {
            let t = TimeInstant::parse(s).unwrap();
            assert_eq!(t.to_iso8601(), s, "roundtrip of {s}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(TimeInstant::parse("2000-02-29").is_some(), "400-year leap");
        assert!(
            TimeInstant::parse("1900-02-29").is_none(),
            "100-year non-leap"
        );
        assert!(TimeInstant::parse("2024-02-29").is_some());
        assert!(TimeInstant::parse("2023-02-29").is_none());
    }

    #[test]
    fn invalid_components_rejected() {
        assert!(TimeInstant::parse("2020-13-01").is_none());
        assert!(TimeInstant::parse("2020-00-01").is_none());
        assert!(TimeInstant::parse("2020-04-31").is_none());
        assert!(TimeInstant::parse("2020-01-01T24:00:00").is_none());
        assert!(TimeInstant::parse("garbage").is_none());
        assert!(TimeInstant::parse("2020").is_none());
    }

    #[test]
    fn instants_order() {
        let a = TimeInstant::parse("2020-01-01").unwrap();
        let b = TimeInstant::parse("2020-01-02").unwrap();
        assert!(a < b);
        assert_eq!(b.epoch_seconds - a.epoch_seconds, 86_400);
    }

    #[test]
    fn period_construction_and_queries() {
        let a = TimeInstant::parse("2020-01-01").unwrap();
        let b = TimeInstant::parse("2020-01-10").unwrap();
        let p = TimePeriod::new(a, b).unwrap();
        assert_eq!(p.duration_seconds(), 9 * 86_400);
        assert!(p.contains(TimeInstant::parse("2020-01-05").unwrap()));
        assert!(!p.contains(TimeInstant::parse("2020-02-01").unwrap()));
        assert!(TimePeriod::new(b, a).is_none(), "reversed bounds rejected");
    }

    #[test]
    fn period_overlap() {
        let p1 = TimePeriod::new(
            TimeInstant::parse("2020-01-01").unwrap(),
            TimeInstant::parse("2020-01-10").unwrap(),
        )
        .unwrap();
        let p2 = TimePeriod::new(
            TimeInstant::parse("2020-01-10").unwrap(),
            TimeInstant::parse("2020-01-20").unwrap(),
        )
        .unwrap();
        let p3 = TimePeriod::new(
            TimeInstant::parse("2020-02-01").unwrap(),
            TimeInstant::parse("2020-02-02").unwrap(),
        )
        .unwrap();
        assert!(p1.overlaps(&p2), "touching endpoints overlap");
        assert!(!p1.overlaps(&p3));
    }

    #[test]
    fn time_object_intersection() {
        let i = TimeObject::Instant(TimeInstant::parse("2020-01-05").unwrap());
        let p = TimeObject::Period(
            TimePeriod::new(
                TimeInstant::parse("2020-01-01").unwrap(),
                TimeInstant::parse("2020-01-10").unwrap(),
            )
            .unwrap(),
        );
        assert!(i.intersects(&p));
        assert!(p.intersects(&i));
        let later = TimeObject::Instant(TimeInstant::parse("2021-01-01").unwrap());
        assert!(!later.intersects(&p));
    }

    #[test]
    fn display_matches_iso() {
        let t = TimeInstant::parse("2026-07-06T10:30:00Z").unwrap();
        assert_eq!(t.to_string(), "2026-07-06T10:30:00Z");
    }

    #[test]
    fn pre_epoch_dates() {
        let t = TimeInstant::parse("1969-12-31T23:59:59Z").unwrap();
        assert_eq!(t.epoch_seconds, -1);
        assert_eq!(t.to_iso8601(), "1969-12-31T23:59:59Z");
    }
}
