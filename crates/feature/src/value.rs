//! `grdf:Value` (§3.3.4): "an aggregate concept for real-world values
//! assignable to feature properties … useful in encapsulating a set of
//! concrete values (e.g., string, integer) as one object, thus enabling
//! passing it around in a coherent fashion."

use std::fmt;

use grdf_rdf::term::{Literal, Term};
use grdf_rdf::vocab::xsd;

use crate::time::TimeInstant;

/// A property value: concrete scalar kinds plus the aggregate form.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Text.
    String(String),
    /// Whole number.
    Integer(i64),
    /// Floating point.
    Double(f64),
    /// Truth value.
    Boolean(bool),
    /// Reference to another resource.
    Uri(String),
    /// A time stamp.
    Time(TimeInstant),
    /// "A set of concrete values as one object."
    Composite(Vec<Value>),
}

impl Value {
    /// Convert to an RDF term (composites are not directly representable —
    /// the codec flattens them into repeated properties; this returns the
    /// first element's term for a composite, `None` when empty).
    pub fn to_term(&self) -> Option<Term> {
        match self {
            Value::String(s) => Some(Term::string(s)),
            Value::Integer(i) => Some(Term::integer(*i)),
            Value::Double(d) => Some(Term::double(*d)),
            Value::Boolean(b) => Some(Term::boolean(*b)),
            Value::Uri(u) => Some(Term::iri(u)),
            Value::Time(t) => Some(Term::Literal(Literal::date_time(&t.to_iso8601()))),
            Value::Composite(vs) => vs.first().and_then(Value::to_term),
        }
    }

    /// Every RDF term this value maps to (composites expand, recursively).
    pub fn to_terms(&self) -> Vec<Term> {
        match self {
            Value::Composite(vs) => vs.iter().flat_map(Value::to_terms).collect(),
            other => other.to_term().into_iter().collect(),
        }
    }

    /// Reconstruct a value from an RDF term.
    pub fn from_term(term: &Term) -> Value {
        match term {
            Term::Iri(iri) => Value::Uri(iri.to_string()),
            Term::Blank(b) => Value::Uri(format!("_:{b}")),
            Term::Literal(l) => match l.datatype() {
                xsd::INTEGER | xsd::LONG | xsd::INT | xsd::NON_NEGATIVE_INTEGER => l
                    .as_integer()
                    .map_or_else(|| Value::String(l.lexical().to_string()), Value::Integer),
                xsd::DOUBLE | xsd::FLOAT | xsd::DECIMAL => l
                    .as_double()
                    .map_or_else(|| Value::String(l.lexical().to_string()), Value::Double),
                xsd::BOOLEAN => l
                    .as_boolean()
                    .map_or_else(|| Value::String(l.lexical().to_string()), Value::Boolean),
                xsd::DATE_TIME | xsd::DATE => TimeInstant::parse(l.lexical())
                    .map_or_else(|| Value::String(l.lexical().to_string()), Value::Time),
                _ => Value::String(l.lexical().to_string()),
            },
        }
    }

    /// Numeric view (integers widen to doubles).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            Value::Uri(u) => Some(u),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::String(s) => f.write_str(s),
            Value::Integer(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Uri(u) => write!(f, "<{u}>"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Composite(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Integer(i)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Value {
        Value::Double(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Boolean(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_term_roundtrips() {
        for v in [
            Value::String("x".into()),
            Value::Integer(7),
            Value::Double(2.5),
            Value::Boolean(true),
            Value::Uri("urn:a".into()),
            Value::Time(TimeInstant::parse("2020-01-01T00:00:00Z").unwrap()),
        ] {
            let t = v.to_term().unwrap();
            assert_eq!(Value::from_term(&t), v, "roundtrip of {v}");
        }
    }

    #[test]
    fn composite_expands_to_terms() {
        let v = Value::Composite(vec![
            Value::Integer(1),
            Value::Composite(vec![Value::Integer(2), Value::Integer(3)]),
        ]);
        assert_eq!(v.to_terms().len(), 3);
        assert_eq!(v.to_term(), Some(Term::integer(1)));
        assert_eq!(Value::Composite(vec![]).to_term(), None);
    }

    #[test]
    fn numeric_and_string_views() {
        assert_eq!(Value::Integer(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::String("x".into()).as_f64(), None);
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Uri("urn:a".into()).as_str(), Some("urn:a"));
        assert_eq!(Value::Integer(1).as_str(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::from(42i64).to_string(), "42");
        assert_eq!(
            Value::Composite(vec![Value::from(1i64), Value::from("a")]).to_string(),
            "[1, a]"
        );
    }

    #[test]
    fn blank_terms_become_labelled_uris() {
        let v = Value::from_term(&Term::blank("n1"));
        assert_eq!(v, Value::Uri("_:n1".into()));
    }
}
