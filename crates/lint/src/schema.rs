//! Schema conformance (G004–G006, G010): instance data against the
//! `rdfs:domain`/`rdfs:range` declarations and cardinality restrictions
//! the ontology carries.
//!
//! The flagship case is the paper's List 1: `measureValue` is declared
//! with range `xsd:double`, and a hand-written value like `"10.5mp"`
//! type-checks as RDF but is garbage as a measurement — G006 catches it.
//! Domain checks stay quiet for untyped subjects and range checks for
//! untyped objects: an open-world graph is allowed to under-describe, and
//! only a *contradicting* description is a finding.

use std::collections::{BTreeMap, HashMap};

use grdf_owl::hierarchy::Hierarchy;
use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Literal, Term};
use grdf_rdf::vocab::{owl, rdf, rdfs, xsd};

/// Whether `datatype` names an XSD datatype (or `rdfs:Literal`), i.e. a
/// range that demands a literal object.
fn is_datatype(iri: &str) -> bool {
    iri.starts_with(xsd::NS) || iri == rdfs::LITERAL
}

/// Whether a literal's value conforms to the declared datatype. Lenient
/// on lexical coercion (an untyped `"3.4"` passes for `xsd:double`) and
/// strict on nonsense (`"10.5mp"` does not).
fn literal_conforms(lit: &Literal, datatype: &str) -> bool {
    // A plain literal (no tag, default string datatype) is hand-written
    // shorthand; judge it by its lexical form rather than demanding `^^`.
    let plain = lit.lang().is_none() && lit.datatype() == xsd::STRING;
    let lexical = lit.lexical().trim();
    match datatype {
        xsd::DOUBLE | xsd::FLOAT | xsd::DECIMAL => {
            lit.as_double().is_some() || (plain && lexical.parse::<f64>().is_ok())
        }
        xsd::INTEGER | xsd::INT | xsd::LONG => {
            lit.as_integer().is_some() || (plain && lexical.parse::<i64>().is_ok())
        }
        xsd::NON_NEGATIVE_INTEGER => lit
            .as_integer()
            .or_else(|| if plain { lexical.parse().ok() } else { None })
            .is_some_and(|v| v >= 0),
        xsd::BOOLEAN => {
            lit.as_boolean().is_some() || (plain && matches!(lexical, "true" | "false" | "0" | "1"))
        }
        xsd::STRING => lit.lang().is_none() && lit.datatype() == xsd::STRING,
        // anyURI's lexical space admits any string; only a literal typed
        // with some *other* datatype contradicts it.
        xsd::ANY_URI => plain || lit.datatype() == xsd::ANY_URI,
        rdfs::LITERAL => true,
        other => lit.datatype() == other,
    }
}

/// Whether any of `types` is (a subclass of) `class`.
fn any_type_matches(h: &Hierarchy<'_>, types: &[Term], class: &Term) -> bool {
    types.iter().any(|t| h.is_subclass_of(t, class))
}

/// Run the schema pass.
pub fn check(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let h = Hierarchy::new(g);

    // Declared domains and ranges, keyed by predicate IRI.
    let mut domains: HashMap<String, Vec<Term>> = HashMap::new();
    for t in g.match_pattern(None, Some(&Term::iri(rdfs::DOMAIN)), None) {
        if let (Some(p), Some(d)) = (t.subject.as_iri(), t.object.as_iri()) {
            if d != owl::THING {
                domains.entry(p.to_string()).or_default().push(t.object);
            }
        }
    }
    let mut ranges: HashMap<String, Vec<Term>> = HashMap::new();
    for t in g.match_pattern(None, Some(&Term::iri(rdfs::RANGE)), None) {
        if let (Some(p), Some(r)) = (t.subject.as_iri(), t.object.as_iri()) {
            if r != owl::THING {
                ranges.entry(p.to_string()).or_default().push(t.object);
            }
        }
    }

    for triple in g.iter() {
        let Some(pred) = triple.predicate.as_iri() else {
            continue;
        };
        // G004 — a typed subject incompatible with the declared domain.
        if let Some(ds) = domains.get(pred) {
            let types = h.types_of(&triple.subject);
            if !types.is_empty() {
                for d in ds {
                    if !any_type_matches(&h, &types, d) {
                        out.push(
                            Diagnostic::new(
                                LintCode::DomainViolation,
                                triple.subject.clone(),
                                format!("subject of {pred} is not a {d}"),
                            )
                            .with_related(vec![triple.predicate.clone(), d.clone()]),
                        );
                    }
                }
            }
        }
        // G005/G006 — object against the declared range.
        if let Some(rs) = ranges.get(pred) {
            for r in rs {
                let r_iri = r.as_iri().unwrap_or_default();
                match triple.object.as_literal() {
                    Some(lit) if is_datatype(r_iri) => {
                        if !literal_conforms(lit, r_iri) {
                            out.push(
                                Diagnostic::new(
                                    LintCode::DatatypeMismatch,
                                    triple.subject.clone(),
                                    format!(
                                        "value {} of {pred} does not conform to {r_iri}",
                                        triple.object
                                    ),
                                )
                                .with_related(vec![triple.predicate.clone()])
                                .with_suggestion(format!("supply a valid {r_iri} literal")),
                            );
                        }
                    }
                    Some(_) => {
                        out.push(
                            Diagnostic::new(
                                LintCode::RangeViolation,
                                triple.subject.clone(),
                                format!("{pred} expects a {r} resource, found a literal"),
                            )
                            .with_related(vec![triple.predicate.clone(), r.clone()]),
                        );
                    }
                    None if is_datatype(r_iri) => {
                        out.push(
                            Diagnostic::new(
                                LintCode::RangeViolation,
                                triple.subject.clone(),
                                format!("{pred} expects a {r_iri} literal, found a resource"),
                            )
                            .with_related(vec![triple.predicate.clone(), r.clone()]),
                        );
                    }
                    None => {
                        let types = h.types_of(&triple.object);
                        if !types.is_empty() && !any_type_matches(&h, &types, r) {
                            out.push(
                                Diagnostic::new(
                                    LintCode::RangeViolation,
                                    triple.subject.clone(),
                                    format!("object {} of {pred} is not a {r}", triple.object),
                                )
                                .with_related(vec![triple.predicate.clone(), r.clone()]),
                            );
                        }
                    }
                }
            }
        }
    }

    out.extend(unsatisfiable_cardinalities(g));
    out
}

/// Integer payload of a cardinality term.
fn card_value(t: &Term) -> Option<i64> {
    t.as_literal().and_then(Literal::as_integer)
}

/// G010 — cardinality restrictions no individual can satisfy: a class
/// whose restrictions on one property demand a minimum above the maximum,
/// or two different exact cardinalities.
fn unsatisfiable_cardinalities(g: &Graph) -> Vec<Diagnostic> {
    // (class, property) → (max of lower bounds, min of upper bounds,
    // exact values seen).
    #[derive(Default)]
    struct Bounds {
        min: Option<i64>,
        max: Option<i64>,
        exacts: Vec<i64>,
    }
    let ty = Term::iri(rdf::TYPE);
    let mut bounds: BTreeMap<(Term, Term), Bounds> = BTreeMap::new();
    for t in g.match_pattern(None, Some(&ty), Some(&Term::iri(owl::RESTRICTION))) {
        let r = &t.subject;
        let Some(prop) = g.object(r, &Term::iri(owl::ON_PROPERTY)) else {
            continue;
        };
        // Every class that lists this restriction as a superclass.
        for c in g.subjects(&Term::iri(rdfs::SUB_CLASS_OF), r) {
            let b = bounds.entry((c, prop.clone())).or_default();
            if let Some(n) = g
                .object(r, &Term::iri(owl::MIN_CARDINALITY))
                .as_ref()
                .and_then(card_value)
            {
                b.min = Some(b.min.map_or(n, |m| m.max(n)));
            }
            if let Some(n) = g
                .object(r, &Term::iri(owl::MAX_CARDINALITY))
                .as_ref()
                .and_then(card_value)
            {
                b.max = Some(b.max.map_or(n, |m| m.min(n)));
            }
            if let Some(n) = g
                .object(r, &Term::iri(owl::CARDINALITY))
                .as_ref()
                .and_then(card_value)
            {
                b.exacts.push(n);
                b.min = Some(b.min.map_or(n, |m| m.max(n)));
                b.max = Some(b.max.map_or(n, |m| m.min(n)));
            }
        }
    }
    let mut out = Vec::new();
    for ((class, prop), b) in bounds {
        let mut exacts = b.exacts.clone();
        exacts.sort_unstable();
        exacts.dedup();
        if exacts.len() > 1 {
            out.push(
                Diagnostic::new(
                    LintCode::UnsatisfiableCardinality,
                    class.clone(),
                    format!(
                        "conflicting exact cardinalities on {prop}: {} and {}",
                        exacts[0],
                        exacts[exacts.len() - 1]
                    ),
                )
                .with_related(vec![prop.clone()])
                .with_suggestion("keep one owl:cardinality per property"),
            );
            continue;
        }
        if let (Some(min), Some(max)) = (b.min, b.max) {
            if min > max {
                out.push(
                    Diagnostic::new(
                        LintCode::UnsatisfiableCardinality,
                        class,
                        format!("restrictions on {prop}: minimum {min} exceeds maximum {max}"),
                    )
                    .with_related(vec![prop])
                    .with_suggestion(format!("lower owl:minCardinality to at most {max}")),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_owl::model::{OntologyBuilder, RestrictionKind};

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    /// A small ontology: Site with a double-valued measure and a
    /// Site-domained name property.
    fn base() -> Graph {
        let mut b = OntologyBuilder::new("urn:ex#");
        b.class("Site", None);
        b.class("ChemSite", Some("Site"));
        b.class("Stream", None);
        b.datatype_property("measureValue", Some("Site"), Some(xsd::DOUBLE));
        b.object_property("feeds", Some("Stream"), Some("Site"));
        b.into_graph()
    }

    #[test]
    fn list1_measure_type_problem_is_g006() {
        let mut g = base();
        g.add(iri("urn:ex#s1"), iri(rdf::TYPE), iri("urn:ex#ChemSite"));
        g.add(
            iri("urn:ex#s1"),
            iri("urn:ex#measureValue"),
            Term::string("10.5mp"),
        );
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::DatatypeMismatch);
        // A parseable value is fine even when untyped.
        let mut ok = base();
        ok.add(
            iri("urn:ex#s1"),
            iri("urn:ex#measureValue"),
            Term::double(10.5),
        );
        assert!(check(&ok).is_empty());
    }

    #[test]
    fn domain_violation_respects_subclassing() {
        let mut g = base();
        // A ChemSite (⊑ Site) subject satisfies the Site domain.
        g.add(iri("urn:ex#s1"), iri(rdf::TYPE), iri("urn:ex#ChemSite"));
        g.add(
            iri("urn:ex#s1"),
            iri("urn:ex#measureValue"),
            Term::double(1.0),
        );
        assert!(check(&g).is_empty());
        // A Stream subject does not.
        g.add(iri("urn:ex#w"), iri(rdf::TYPE), iri("urn:ex#Stream"));
        g.add(
            iri("urn:ex#w"),
            iri("urn:ex#measureValue"),
            Term::double(2.0),
        );
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::DomainViolation);
        assert_eq!(diags[0].subject, iri("urn:ex#w"));
    }

    #[test]
    fn untyped_subjects_and_objects_are_exempt() {
        let mut g = base();
        g.add(
            iri("urn:ex#mystery"),
            iri("urn:ex#measureValue"),
            Term::double(1.0),
        );
        g.add(
            iri("urn:ex#w"),
            iri("urn:ex#feeds"),
            iri("urn:ex#somewhere"),
        );
        // w untyped, somewhere untyped: open world, no finding.
        assert!(check(&g).is_empty());
    }

    #[test]
    fn range_violations() {
        let mut g = base();
        // Resource where a literal is required.
        g.add(
            iri("urn:ex#s1"),
            iri("urn:ex#measureValue"),
            iri("urn:ex#notALiteral"),
        );
        // Literal where a resource is required.
        g.add(iri("urn:ex#w"), iri("urn:ex#feeds"), Term::string("x"));
        // Wrong class.
        g.add(iri("urn:ex#w2"), iri(rdf::TYPE), iri("urn:ex#Stream"));
        g.add(iri("urn:ex#t"), iri(rdf::TYPE), iri("urn:ex#Stream"));
        g.add(iri("urn:ex#w2"), iri("urn:ex#feeds"), iri("urn:ex#t"));
        let diags = check(&g);
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == LintCode::RangeViolation));
    }

    #[test]
    fn unsatisfiable_cardinality_detected() {
        let mut b = OntologyBuilder::new("urn:ex#");
        b.class("Envelope", None);
        b.object_property("hasCorner", Some("Envelope"), None);
        b.restrict("Envelope", "hasCorner", RestrictionKind::AtLeast(3));
        b.restrict("Envelope", "hasCorner", RestrictionKind::AtMost(2));
        let g = b.into_graph();
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::UnsatisfiableCardinality);
        assert_eq!(diags[0].subject, iri("urn:ex#Envelope"));
        assert!(diags[0].message.contains("minimum 3 exceeds maximum 2"));
    }

    #[test]
    fn satisfiable_cardinality_is_clean() {
        let mut b = OntologyBuilder::new("urn:ex#");
        b.class("Envelope", None);
        b.object_property("hasCorner", Some("Envelope"), None);
        b.restrict("Envelope", "hasCorner", RestrictionKind::Exactly(2));
        assert!(check(&b.into_graph()).is_empty());
    }
}
