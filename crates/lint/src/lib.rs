//! `grdf-lint` — static analysis for GRDF ontologies, security policy
//! sets, and instance graphs.
//!
//! The paper's artifacts are hand-authored RDF (Lists 1–8), and the
//! failure modes it discusses are exactly the ones hand-authored RDF
//! invites: the List 1 `MeasureType` value that is a string where a
//! `xsd:double` is declared, realization links (`grdf:realizedBy`) left
//! dangling after an edit, Fig. 2 topology whose face boundaries stop
//! closing, and — on the security side — the GeoXACML-granularity
//! regression where a class-level grant silently overrides a
//! property-level restriction on a subclass. This crate finds those
//! problems *before* the data is served.
//!
//! Four pass families, all reporting through the typed
//! [`Diagnostic`]/[`LintReport`] framework in `grdf-rdf`:
//!
//! * [`referential`] — G001–G003: undeclared classes/properties,
//!   dangling realization links.
//! * [`schema`] — G004–G010: domain/range conformance, literal datatype
//!   checks, unsatisfiable cardinality restrictions. OWL consistency
//!   (G011–G015) is folded in from `grdf_owl::consistency`.
//! * [`policy`] — S001–S006: structural policy defects and conflicts
//!   (from `grdf_security::conflicts`) plus unknown targets and
//!   over-broad grants, both resolved through the subclass hierarchy.
//! * [`topology`] — T001–T004: Fig. 2 invariants (edge endpoints, face
//!   boundary closure, realization coverage).
//!
//! Entry points: [`lint_graph`] for a graph alone, [`lint_policies`] for
//! a policy set against a graph, [`lint_all`] for both, or a configured
//! [`Linter`] when individual passes need to be switched off.

pub mod policy;
pub mod referential;
pub mod schema;
pub mod topology;

pub use grdf_rdf::diagnostic::{Diagnostic, LintCode, LintReport, Severity};

use grdf_rdf::graph::Graph;
use grdf_security::policy::PolicySet;

/// Whether an IRI belongs to a built-in vocabulary (RDF, RDFS, OWL, XSD)
/// that the referential passes must not demand declarations for.
pub(crate) fn is_builtin(iri: &str) -> bool {
    use grdf_rdf::vocab::{owl, rdf, rdfs, xsd};
    iri.starts_with(rdf::NS)
        || iri.starts_with(rdfs::NS)
        || iri.starts_with(owl::NS)
        || iri.starts_with(xsd::NS)
}

/// A configured analyzer: each pass family can be toggled off (all are on
/// by default). Every run is instrumented with a `lint.<pass>` span per
/// pass and a `lint.findings` counter.
#[derive(Debug, Clone, Copy)]
pub struct Linter {
    /// Referential integrity (G001–G003).
    pub referential: bool,
    /// Schema conformance (G004–G010).
    pub schema: bool,
    /// OWL consistency (G011–G015).
    pub consistency: bool,
    /// Policy analysis (S001–S006); needs a [`PolicySet`].
    pub policy: bool,
    /// Topology invariants (T001–T004).
    pub topology: bool,
}

impl Default for Linter {
    fn default() -> Linter {
        Linter {
            referential: true,
            schema: true,
            consistency: true,
            policy: true,
            topology: true,
        }
    }
}

impl Linter {
    /// An analyzer with every pass enabled.
    pub fn new() -> Linter {
        Linter::default()
    }

    /// Run the enabled passes over `graph` (and `policies`, when given)
    /// and return the normalized report.
    pub fn run(&self, graph: &Graph, policies: Option<&PolicySet>) -> LintReport {
        let mut diags: Vec<Diagnostic> = Vec::new();
        if self.referential {
            let span = grdf_obs::span("lint.referential");
            let found = referential::check(graph);
            drop(span.tag("findings", found.len()));
            diags.extend(found);
        }
        if self.schema {
            let span = grdf_obs::span("lint.schema");
            let found = schema::check(graph);
            drop(span.tag("findings", found.len()));
            diags.extend(found);
        }
        if self.consistency {
            let span = grdf_obs::span("lint.consistency");
            let found = grdf_owl::consistency::lint(graph);
            drop(span.tag("findings", found.len()));
            diags.extend(found);
        }
        if self.topology {
            let span = grdf_obs::span("lint.topology");
            let found = topology::check(graph);
            drop(span.tag("findings", found.len()));
            diags.extend(found);
        }
        if self.policy {
            if let Some(ps) = policies {
                let span = grdf_obs::span("lint.policy");
                let found = policy::check(graph, ps);
                drop(span.tag("findings", found.len()));
                diags.extend(found);
            }
        }
        let report = LintReport::from_diagnostics(diags);
        grdf_obs::add("lint.findings", report.diagnostics.len() as u64);
        report
    }
}

/// Lint a graph with every graph-level pass (referential, schema,
/// consistency, topology).
pub fn lint_graph(graph: &Graph) -> LintReport {
    Linter::new().run(graph, None)
}

/// Lint a policy set against the graph that supplies its class hierarchy
/// and targets.
pub fn lint_policies(graph: &Graph, policies: &PolicySet) -> LintReport {
    let linter = Linter {
        referential: false,
        schema: false,
        consistency: false,
        topology: false,
        policy: true,
    };
    linter.run(graph, Some(policies))
}

/// Lint everything: the graph-level passes plus, when a policy set is
/// given, the policy passes.
pub fn lint_all(graph: &Graph, policies: Option<&PolicySet>) -> LintReport {
    Linter::new().run(graph, policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::term::Term;
    use grdf_rdf::vocab::{owl, rdf};

    #[test]
    fn clean_empty_graph() {
        assert!(lint_graph(&Graph::new()).is_clean());
    }

    #[test]
    fn passes_can_be_disabled() {
        let mut g = Graph::new();
        g.add(
            Term::iri("urn:x"),
            Term::iri(rdf::TYPE),
            Term::iri(owl::NOTHING),
        );
        assert!(lint_graph(&g).has_errors(), "G014 fires");
        let off = Linter {
            consistency: false,
            ..Linter::new()
        };
        assert!(off.run(&g, None).is_clean(), "disabled pass stays silent");
    }

    #[test]
    fn builtin_namespaces_are_exempt() {
        assert!(is_builtin(rdf::TYPE));
        assert!(is_builtin(owl::CLASS));
        assert!(!is_builtin("http://grdf.org/ontology#Node"));
    }
}
