//! Policy analysis (S001–S010): the security policy set against the
//! graph that gives its designators meaning.
//!
//! S001/S003/S004/S005 come from `grdf_security::conflicts`,
//! S007–S010 from the whole-policy-set label-compilation passes of
//! `grdf_security::labels` (this pass re-exports both through the shared
//! diagnostics shape). The two checks added here both need the data
//! graph:
//!
//! * **S002 unknown-policy-target** — a policy whose resource or
//!   condition property never occurs in the graph governs nothing; after
//!   a merge or rename that usually means the policy silently stopped
//!   protecting what it used to.
//! * **S006 over-broad-grant** — the GeoXACML-granularity regression the
//!   paper warns about (§7): a role holds an *unconditional* grant on a
//!   class while another policy gives the same role a *property-limited*
//!   grant on a strict subclass. Through subclass inference the broad
//!   grant reaches every subclass member, so the property restriction is
//!   void — a Building-level grant exposing the exit doors.

use grdf_owl::hierarchy::Hierarchy;
use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_security::policy::{Condition, Decision, PolicySet};

/// Run the policy pass.
pub fn check(data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
    let mut out = grdf_security::conflicts::diagnostics(data, policies);
    out.extend(unknown_targets(data, policies));
    out.extend(over_broad_grants(data, policies));
    out.extend(grdf_security::labels::diagnostics(data, policies));
    out
}

/// Whether a term occurs anywhere in the graph (as subject, predicate,
/// or object).
fn occurs(g: &Graph, t: &Term) -> bool {
    !g.match_pattern(Some(t), None, None).is_empty()
        || !g.match_pattern(None, Some(t), None).is_empty()
        || !g.match_pattern(None, None, Some(t)).is_empty()
}

/// S002 — policies pointing at resources or condition properties that the
/// graph never mentions. Quiet on an empty graph (nothing can occur).
fn unknown_targets(data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if data.is_empty() {
        return out;
    }
    for p in &policies.policies {
        let subject = Term::iri(&p.id);
        if !p.resource.is_empty() {
            let resource = Term::iri(&p.resource);
            if !occurs(data, &resource) {
                out.push(
                    Diagnostic::new(
                        LintCode::UnknownPolicyTarget,
                        subject.clone(),
                        format!("targets {}, which does not occur in the graph", p.resource),
                    )
                    .with_related(vec![resource])
                    .with_suggestion("fix the resource IRI or retire the policy"),
                );
            }
        }
        for c in &p.conditions {
            let Condition::PropertyAccess(props) = c;
            for prop in props {
                let prop_t = Term::iri(prop);
                if !occurs(data, &prop_t) {
                    out.push(
                        Diagnostic::new(
                            LintCode::UnknownPolicyTarget,
                            subject.clone(),
                            format!("condition property {prop} does not occur in the graph"),
                        )
                        .with_related(vec![prop_t])
                        .with_suggestion("fix the property IRI in the condition"),
                    );
                }
            }
        }
    }
    out
}

/// S006 — an unconditional class-level permit that voids a
/// property-conditioned permit on a strict subclass for the same role
/// and action.
fn over_broad_grants(data: &Graph, policies: &PolicySet) -> Vec<Diagnostic> {
    let h = Hierarchy::new(data);
    let mut out = Vec::new();
    for broad in &policies.policies {
        if broad.decision != Decision::Permit || !broad.conditions.is_empty() {
            continue;
        }
        for narrow in &policies.policies {
            if narrow.decision != Decision::Permit
                || narrow.conditions.is_empty()
                || narrow.role != broad.role
                || narrow.action != broad.action
                || narrow.resource == broad.resource
            {
                continue;
            }
            let sub = Term::iri(&narrow.resource);
            let sup = Term::iri(&broad.resource);
            if h.is_subclass_of(&sub, &sup) {
                out.push(
                    Diagnostic::new(
                        LintCode::OverBroadGrant,
                        Term::iri(&broad.id),
                        format!(
                            "role {}: unconditional grant on {} voids the property \
                             restriction of {} on subclass {}",
                            broad.role, broad.resource, narrow.id, narrow.resource
                        ),
                    )
                    .with_related(vec![Term::iri(&narrow.id), Term::iri(&broad.role)])
                    .with_suggestion(format!(
                        "scope {} with property conditions or exclude {}",
                        broad.id, narrow.resource
                    )),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::vocab::{rdf, rdfs};
    use grdf_security::policy::Policy;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    /// Building ⊒ ExitDoor, with one instance of each.
    fn building_graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            iri("urn:ex#ExitDoor"),
            iri(rdfs::SUB_CLASS_OF),
            iri("urn:ex#Building"),
        );
        g.add(iri("urn:ex#b1"), iri(rdf::TYPE), iri("urn:ex#Building"));
        g.add(iri("urn:ex#d1"), iri(rdf::TYPE), iri("urn:ex#ExitDoor"));
        g.add(
            iri("urn:ex#d1"),
            iri("urn:ex#hasLockCode"),
            Term::string("1234"),
        );
        g
    }

    #[test]
    fn over_broad_grant_across_subclass_is_s006() {
        let g = building_graph();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p#broad", "urn:r#Surveyor", "urn:ex#Building"),
            Policy::permit_properties(
                "urn:p#narrow",
                "urn:r#Surveyor",
                "urn:ex#ExitDoor",
                &["urn:ex#hasLockCode"],
            ),
        ]);
        let diags = check(&g, &ps);
        let s006: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::OverBroadGrant)
            .collect();
        assert_eq!(s006.len(), 1, "{diags:?}");
        assert_eq!(s006[0].subject, iri("urn:p#broad"));
        // Different roles do not collide.
        let ps2 = PolicySet::new(vec![
            Policy::permit("urn:p#broad", "urn:r#Chief", "urn:ex#Building"),
            Policy::permit_properties(
                "urn:p#narrow",
                "urn:r#Surveyor",
                "urn:ex#ExitDoor",
                &["urn:ex#hasLockCode"],
            ),
        ]);
        assert!(check(&g, &ps2)
            .iter()
            .all(|d| d.code != LintCode::OverBroadGrant));
    }

    #[test]
    fn unknown_target_is_s002() {
        let g = building_graph();
        let ps = PolicySet::new(vec![Policy::permit(
            "urn:p#stale",
            "urn:r#Surveyor",
            "urn:ex#Bridgee", // typo
        )]);
        let diags = check(&g, &ps);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::UnknownPolicyTarget);
        assert_eq!(diags[0].subject, iri("urn:p#stale"));
        // An empty graph cannot vouch for anything: stay quiet.
        assert!(unknown_targets(&Graph::new(), &ps).is_empty());
    }

    #[test]
    fn unknown_condition_property_is_s002() {
        let g = building_graph();
        let ps = PolicySet::new(vec![Policy::permit_properties(
            "urn:p#c",
            "urn:r#Surveyor",
            "urn:ex#ExitDoor",
            &["urn:ex#hasLockCodez"], // typo
        )]);
        let diags = check(&g, &ps);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::UnknownPolicyTarget);
        assert!(diags[0].message.contains("condition property"));
    }

    #[test]
    fn structural_and_conflict_findings_flow_through() {
        let g = building_graph();
        let ps = PolicySet::new(vec![
            Policy::permit("urn:p#1", "urn:r#A", "urn:ex#Building"),
            Policy::deny("urn:p#2", "urn:r#A", "urn:ex#ExitDoor"),
        ]);
        let diags = check(&g, &ps);
        assert!(
            diags.iter().any(|d| d.code == LintCode::ContradictoryRule),
            "{diags:?}"
        );
    }
}
