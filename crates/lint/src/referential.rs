//! Referential integrity (G001–G003): every IRI a graph leans on must
//! actually be introduced somewhere.
//!
//! The declaration checks are *schema-aware, not schema-mandatory*: a
//! plain instance graph that declares no classes (or no properties) is
//! left alone — demanding `owl:Class` triples from List 1-style instance
//! data would drown real findings in noise. They are also
//! *namespace-scoped*: only names from a namespace that declares at
//! least one class (or property) are held to the declaration standard.
//! `app:` instance vocabulary merged next to the GRDF ontology stays
//! legal, while a typo'd `grdf:Edgee` — a namespace the graph clearly
//! owns — is exactly the kind of thing G001/G002 catch.

use std::collections::BTreeSet;

use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf as ns, owl, rdf, rdfs};

use crate::is_builtin;

/// The namespace part of an IRI: everything up to and including the last
/// `#` or `/`.
fn namespace(iri: &str) -> &str {
    match iri.rfind(['#', '/']) {
        Some(i) => &iri[..=i],
        None => iri,
    }
}

/// IRIs declared as classes: typed `owl:Class` or `rdfs:Class`.
fn declared_classes(g: &Graph) -> BTreeSet<String> {
    let ty = Term::iri(rdf::TYPE);
    let mut out = BTreeSet::new();
    for class_ty in [owl::CLASS, rdfs::CLASS] {
        for t in g.match_pattern(None, Some(&ty), Some(&Term::iri(class_ty))) {
            if let Some(iri) = t.subject.as_iri() {
                out.insert(iri.to_string());
            }
        }
    }
    out
}

/// IRIs declared as properties (object, datatype, plain, or any of the
/// OWL property characteristics).
fn declared_properties(g: &Graph) -> BTreeSet<String> {
    let ty = Term::iri(rdf::TYPE);
    let mut out = BTreeSet::new();
    for prop_ty in [
        owl::OBJECT_PROPERTY,
        owl::DATATYPE_PROPERTY,
        rdf::PROPERTY,
        owl::FUNCTIONAL_PROPERTY,
        owl::INVERSE_FUNCTIONAL_PROPERTY,
        owl::TRANSITIVE_PROPERTY,
        owl::SYMMETRIC_PROPERTY,
    ] {
        for t in g.match_pattern(None, Some(&ty), Some(&Term::iri(prop_ty))) {
            if let Some(iri) = t.subject.as_iri() {
                out.insert(iri.to_string());
            }
        }
    }
    out
}

/// IRIs used in a class position: `rdf:type` objects, `rdfs:subClassOf`
/// endpoints, `rdfs:domain`/`rdfs:range` targets, and the class-valued
/// OWL constructors. Blank nodes (anonymous restrictions) are exempt.
fn used_as_class(g: &Graph) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut note = |t: &Term| {
        if let Some(iri) = t.as_iri() {
            if !is_builtin(iri) {
                out.insert(iri.to_string());
            }
        }
    };
    for t in g.match_pattern(None, Some(&Term::iri(rdf::TYPE)), None) {
        note(&t.object);
    }
    for t in g.match_pattern(None, Some(&Term::iri(rdfs::SUB_CLASS_OF)), None) {
        note(&t.subject);
        note(&t.object);
    }
    for pred in [
        rdfs::DOMAIN,
        rdfs::RANGE,
        owl::DISJOINT_WITH,
        owl::EQUIVALENT_CLASS,
        owl::SOME_VALUES_FROM,
        owl::ALL_VALUES_FROM,
    ] {
        for t in g.match_pattern(None, Some(&Term::iri(pred)), None) {
            note(&t.object);
            if pred == owl::DISJOINT_WITH || pred == owl::EQUIVALENT_CLASS {
                note(&t.subject);
            }
        }
    }
    out
}

/// Run the referential pass.
pub fn check(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // G001 — used as a class, never declared. Only in graphs that declare
    // classes, and only for names in a namespace that does the declaring.
    let classes = declared_classes(g);
    if !classes.is_empty() {
        let owned: BTreeSet<&str> = classes.iter().map(|c| namespace(c)).collect();
        for iri in used_as_class(g) {
            if !classes.contains(&iri) && owned.contains(namespace(&iri)) {
                out.push(
                    Diagnostic::new(
                        LintCode::DanglingIri,
                        Term::iri(&iri),
                        "used as a class but never declared",
                    )
                    .with_suggestion("declare it with rdf:type owl:Class"),
                );
            }
        }
    }

    // G002 — used as a predicate, never declared; same namespace scoping
    // as G001.
    let properties = declared_properties(g);
    if !properties.is_empty() {
        let owned: BTreeSet<&str> = properties.iter().map(|p| namespace(p)).collect();
        let mut used = BTreeSet::new();
        for t in g.iter() {
            if let Some(iri) = t.predicate.as_iri() {
                if !is_builtin(iri) {
                    used.insert(iri.to_string());
                }
            }
        }
        for iri in used {
            if !properties.contains(&iri) && owned.contains(namespace(&iri)) {
                out.push(
                    Diagnostic::new(
                        LintCode::UndeclaredProperty,
                        Term::iri(&iri),
                        "used as a predicate but never declared",
                    )
                    .with_suggestion(
                        "declare it with rdf:type owl:ObjectProperty or owl:DatatypeProperty",
                    ),
                );
            }
        }
    }

    // G003 — realization links whose target has no description at all.
    for pred in [ns::iri("realizedBy"), ns::iri("realizes")] {
        let p = Term::iri(&pred);
        for t in g.match_pattern(None, Some(&p), None) {
            if g.match_pattern(Some(&t.object), None, None).is_empty() {
                out.push(
                    Diagnostic::new(
                        LintCode::DanglingRealization,
                        t.subject.clone(),
                        format!("{pred} points at {}, which has no description", t.object),
                    )
                    .with_related(vec![t.object.clone()])
                    .with_suggestion("add the realization target or drop the link"),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    #[test]
    fn undeclared_class_fires_only_when_classes_are_declared() {
        let mut g = Graph::new();
        g.add(iri("urn:ex#i"), iri(rdf::TYPE), iri("urn:ex#Undeclared"));
        assert!(check(&g).is_empty(), "instance-only graph is exempt");
        g.add(iri("urn:ex#Declared"), iri(rdf::TYPE), iri(owl::CLASS));
        let diags = check(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::DanglingIri);
        assert_eq!(diags[0].subject, iri("urn:ex#Undeclared"));
    }

    #[test]
    fn foreign_namespaces_are_not_held_to_declarations() {
        let mut g = Graph::new();
        g.add(iri("urn:ex#Declared"), iri(rdf::TYPE), iri(owl::CLASS));
        // An instance typed with external vocabulary the graph never
        // claims to define: legal.
        g.add(iri("urn:other#i"), iri(rdf::TYPE), iri("urn:other#Thing"));
        assert!(check(&g).is_empty());
    }

    #[test]
    fn undeclared_property_fires_only_when_properties_are_declared() {
        let mut g = Graph::new();
        g.add(iri("urn:ex#a"), iri("urn:ex#p"), iri("urn:ex#b"));
        assert!(check(&g).is_empty());
        g.add(iri("urn:ex#q"), iri(rdf::TYPE), iri(owl::OBJECT_PROPERTY));
        let diags = check(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::UndeclaredProperty);
        assert_eq!(diags[0].subject, iri("urn:ex#p"));
    }

    #[test]
    fn dangling_realization_detected() {
        let mut g = Graph::new();
        let edge = iri("urn:ex#e1");
        let curve = iri("urn:ex#c1");
        g.add(edge.clone(), iri(&ns::iri("realizedBy")), curve.clone());
        let diags = check(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::DanglingRealization);
        assert_eq!(diags[0].subject, edge);
        // Describing the target silences it.
        g.add(curve, iri(rdf::TYPE), iri(&ns::iri("Curve")));
        assert!(check(&g).is_empty());
    }

    #[test]
    fn anonymous_restrictions_are_not_dangling() {
        let mut g = Graph::new();
        g.add(iri("urn:ex#C"), iri(rdf::TYPE), iri(owl::CLASS));
        g.add(iri("urn:ex#C"), iri(rdfs::SUB_CLASS_OF), Term::blank("r1"));
        assert!(check(&g).is_empty(), "blank superclass nodes are exempt");
    }
}
