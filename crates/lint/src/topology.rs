//! Topology invariants (T001–T004): the Fig. 2 combinatorial model.
//!
//! Fig. 2's primitives only mean something when their incidence structure
//! holds together: an `grdf:Edge` is *defined by* its start and end
//! nodes, a `grdf:Face` by a closed ring of boundary edges. A decoder
//! (see `grdf_topology::rdf_codec`) simply refuses broken input; this
//! pass instead says *what* is broken and *where*, so the graph can be
//! fixed rather than discarded.
//!
//! Boundary closure is checked by parity: in a closed boundary every
//! node is entered as often as it is left, so each node incident to the
//! face's edges must have even degree. An odd-degree node is an open end.

use std::collections::BTreeMap;

use grdf_rdf::diagnostic::{Diagnostic, LintCode};
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::{grdf as ns, rdf};

/// Subjects typed as the given topology primitive.
fn primitives(g: &Graph, kind: &str) -> Vec<Term> {
    let mut out = g.subjects(&Term::iri(rdf::TYPE), &Term::iri(&ns::iri(kind)));
    out.sort();
    out.dedup();
    out
}

/// Run the topology pass.
pub fn check(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ty = Term::iri(rdf::TYPE);
    let node_class = Term::iri(&ns::iri("Node"));
    let start_p = Term::iri(&ns::iri("startNode"));
    let end_p = Term::iri(&ns::iri("endNode"));
    let has_edge_p = Term::iri(&ns::iri("hasEdge"));
    let realized_by = Term::iri(&ns::iri("realizedBy"));

    // T002 — edge endpoints must exist and be typed grdf:Node.
    let edges = primitives(g, "Edge");
    for edge in &edges {
        for (p, name) in [(&start_p, "grdf:startNode"), (&end_p, "grdf:endNode")] {
            match g.object(edge, p) {
                None => out.push(
                    Diagnostic::new(
                        LintCode::MissingEndpoint,
                        edge.clone(),
                        format!("edge has no {name}"),
                    )
                    .with_suggestion(format!("add a {name} link to a grdf:Node")),
                ),
                Some(n) => {
                    if !g.has(&n, &ty, &node_class) {
                        out.push(
                            Diagnostic::new(
                                LintCode::MissingEndpoint,
                                edge.clone(),
                                format!("{name} {n} is not typed grdf:Node"),
                            )
                            .with_related(vec![n]),
                        );
                    }
                }
            }
        }
    }

    // T003/T004 — face boundaries: non-empty and closed.
    for face in primitives(g, "Face") {
        let boundary = g.objects(&face, &has_edge_p);
        if boundary.is_empty() {
            out.push(
                Diagnostic::new(
                    LintCode::EmptyFaceBoundary,
                    face.clone(),
                    "face has no boundary edges (List 5 requires at least one)",
                )
                .with_suggestion("link the face to its boundary with grdf:hasEdge"),
            );
            continue;
        }
        // Parity check over the endpoints of the boundary edges. Edges
        // with missing endpoints were already reported by T002 and are
        // skipped here so one defect yields one finding.
        let mut degree: BTreeMap<Term, usize> = BTreeMap::new();
        let mut usable = 0usize;
        for edge in &boundary {
            let (Some(s), Some(e)) = (g.object(edge, &start_p), g.object(edge, &end_p)) else {
                continue;
            };
            usable += 1;
            *degree.entry(s).or_default() += 1;
            *degree.entry(e).or_default() += 1;
        }
        let odd: Vec<Term> = degree
            .into_iter()
            .filter(|(_, d)| d % 2 == 1)
            .map(|(n, _)| n)
            .collect();
        if usable > 0 && !odd.is_empty() {
            out.push(
                Diagnostic::new(
                    LintCode::OpenFaceBoundary,
                    face.clone(),
                    format!("boundary does not close: {} odd-degree node(s)", odd.len()),
                )
                .with_related(odd)
                .with_suggestion("add the edges that close the boundary ring"),
            );
        }
    }

    // T001 — realization coverage: within one primitive kind, if anything
    // is realized, everything should be.
    for kind in ["Node", "Edge", "Face", "TopoSolid"] {
        let prims = primitives(g, kind);
        let (realized, unrealized): (Vec<&Term>, Vec<&Term>) = prims
            .iter()
            .partition(|p| g.object(p, &realized_by).is_some());
        if realized.is_empty() {
            continue;
        }
        for p in unrealized {
            out.push(
                Diagnostic::new(
                    LintCode::UnrealizedTopology,
                    p.clone(),
                    format!(
                        "grdf:{kind} has no grdf:realizedBy while {} other(s) are realized",
                        realized.len()
                    ),
                )
                .with_suggestion("link it to its geometric realization with grdf:realizedBy"),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn node(g: &mut Graph, name: &str) -> Term {
        let n = iri(name);
        g.add(n.clone(), iri(rdf::TYPE), iri(&ns::iri("Node")));
        n
    }

    fn edge(g: &mut Graph, name: &str, s: &Term, e: &Term) -> Term {
        let t = iri(name);
        g.add(t.clone(), iri(rdf::TYPE), iri(&ns::iri("Edge")));
        g.add(t.clone(), iri(&ns::iri("startNode")), s.clone());
        g.add(t.clone(), iri(&ns::iri("endNode")), e.clone());
        t
    }

    /// A triangle face: closed, well-formed.
    fn triangle() -> (Graph, Term) {
        let mut g = Graph::new();
        let a = node(&mut g, "urn:t#a");
        let b = node(&mut g, "urn:t#b");
        let c = node(&mut g, "urn:t#c");
        let e1 = edge(&mut g, "urn:t#e1", &a, &b);
        let e2 = edge(&mut g, "urn:t#e2", &b, &c);
        let e3 = edge(&mut g, "urn:t#e3", &c, &a);
        let f = iri("urn:t#f");
        g.add(f.clone(), iri(rdf::TYPE), iri(&ns::iri("Face")));
        for e in [e1, e2, e3] {
            g.add(f.clone(), iri(&ns::iri("hasEdge")), e);
        }
        (g, f)
    }

    #[test]
    fn closed_triangle_is_clean() {
        let (g, _) = triangle();
        assert!(check(&g).is_empty());
    }

    #[test]
    fn missing_endpoint_detected() {
        let mut g = Graph::new();
        let a = node(&mut g, "urn:t#a");
        let e = iri("urn:t#e1");
        g.add(e.clone(), iri(rdf::TYPE), iri(&ns::iri("Edge")));
        g.add(e.clone(), iri(&ns::iri("startNode")), a);
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::MissingEndpoint);
        assert!(diags[0].message.contains("endNode"));
    }

    #[test]
    fn untyped_endpoint_detected() {
        let mut g = Graph::new();
        let a = node(&mut g, "urn:t#a");
        let ghost = iri("urn:t#ghost");
        edge(&mut g, "urn:t#e1", &a, &ghost);
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::MissingEndpoint);
        assert_eq!(diags[0].related, vec![ghost]);
    }

    #[test]
    fn open_boundary_detected() {
        let (mut g, f) = triangle();
        // Drop one boundary edge: a and c become odd-degree.
        let e3 = iri("urn:t#e3");
        assert!(g.remove(&grdf_rdf::term::Triple::new(
            f.clone(),
            iri(&ns::iri("hasEdge")),
            e3,
        )));
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::OpenFaceBoundary);
        assert_eq!(diags[0].subject, f);
        assert_eq!(diags[0].related.len(), 2);
    }

    #[test]
    fn empty_boundary_detected() {
        let mut g = Graph::new();
        let f = iri("urn:t#f");
        g.add(f.clone(), iri(rdf::TYPE), iri(&ns::iri("Face")));
        let diags = check(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::EmptyFaceBoundary);
    }

    #[test]
    fn partial_realization_is_flagged_per_kind() {
        let mut g = Graph::new();
        let a = node(&mut g, "urn:t#a");
        let b = node(&mut g, "urn:t#b");
        let e1 = edge(&mut g, "urn:t#e1", &a, &b);
        let e2 = edge(&mut g, "urn:t#e2", &b, &a);
        // Only e1 is realized; the target is described.
        let curve = iri("urn:t#c1");
        g.add(e1, iri(&ns::iri("realizedBy")), curve.clone());
        g.add(curve, iri(rdf::TYPE), iri(&ns::iri("Curve")));
        let diags = check(&g);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, LintCode::UnrealizedTopology);
        assert_eq!(diags[0].subject, e2);
        // Unrealized *nodes* are fine: no node is realized at all.
    }
}
