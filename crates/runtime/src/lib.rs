//! Service-runtime primitives shared by the query engine, the reasoner,
//! and the G-SACS service layer: an injectable [`Clock`] and a
//! cooperative per-request [`Deadline`].
//!
//! Both the query evaluator's join loops and the reasoner's fixpoint loop
//! are unbounded in the worst case; a [`Deadline`] armed from a request
//! [`Budget`] lets them cancel cooperatively instead of hanging a
//! request forever. The clock is a trait so resilience tests can drive
//! time manually ([`ManualClock`]) — breaker cooldowns and deadline
//! expiries are exercised without wall-clock sleeps.

pub mod faults;
pub mod pool;
pub mod quota;

pub use faults::{splitmix64, SeedTree, SeededDecider};
pub use pool::{split_shards, ShardPool};
pub use quota::TokenBucket;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic time source. `now` is measured from the clock's own epoch;
/// only differences are meaningful.
pub trait Clock: Send + Sync {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;

    /// Block (or simulate blocking) for `d`.
    fn sleep(&self, d: Duration);

    /// Interruptible wait: like [`Clock::sleep`], but an implementation
    /// may return early when the waiting thread is woken (e.g.
    /// [`std::thread::Thread::unpark`]). Poll loops idle on `park`
    /// instead of `sleep` so a shutdown (or a simulated world) can wake
    /// them immediately rather than waiting out the interval. The
    /// default delegates to `sleep`; [`SystemClock`] parks the thread.
    fn park(&self, d: Duration) {
        self.sleep(d);
    }
}

/// The real wall clock, anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn park(&self, d: Duration) {
        // Wakeable (and tolerant of spurious wakeups — callers loop):
        // `unpark` on the waiting thread ends the wait immediately, so an
        // idle poll loop neither spins nor outlives a shutdown request.
        std::thread::park_timeout(d);
    }
}

/// A process-wide shared [`SystemClock`], for callers that don't inject
/// their own.
pub fn system_clock() -> Arc<dyn Clock> {
    static SHARED: OnceLock<Arc<SystemClock>> = OnceLock::new();
    SHARED
        .get_or_init(|| Arc::new(SystemClock::default()))
        .clone()
}

/// A hand-driven clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] is called. `sleep` advances the clock by the
/// requested amount, so injected latency consumes deadline budget without
/// any real waiting.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        *self
            .now
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += d;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self
            .now
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// The resource envelope granted to one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-time allowance; `None` means unbounded.
    pub time: Option<Duration>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget { time: None };

    /// A wall-time budget.
    pub fn with_time(time: Duration) -> Budget {
        Budget { time: Some(time) }
    }

    /// The stricter of two budgets: a caller-supplied deadline can only
    /// tighten a service-wide one, never loosen it.
    #[must_use]
    pub fn tighter(self, other: Budget) -> Budget {
        Budget {
            time: match (self.time, other.time) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (t, None) | (None, t) => t,
            },
        }
    }
}

/// The request's deadline was reached; the operation was cancelled
/// cooperatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// An armed, shareable deadline. Long-running loops call
/// [`Deadline::check`] each iteration and unwind with [`DeadlineExceeded`]
/// once the budget is spent. Expiry latches: once exceeded, every later
/// check fails even if a manual clock is rewound.
pub struct Deadline {
    clock: Arc<dyn Clock>,
    expires_at: Option<Duration>,
    expired: AtomicBool,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn never() -> Deadline {
        Deadline {
            clock: system_clock(),
            expires_at: None,
            expired: AtomicBool::new(false),
        }
    }

    /// Arm a deadline `budget.time` from now on `clock` (never expires for
    /// an unlimited budget).
    pub fn armed(clock: Arc<dyn Clock>, budget: Budget) -> Deadline {
        let expires_at = budget.time.map(|t| clock.now() + t);
        Deadline {
            clock,
            expires_at,
            expired: AtomicBool::new(false),
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        let Some(at) = self.expires_at else {
            return false;
        };
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if self.clock.now() >= at {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Cooperative cancellation point.
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Budget left, `None` when unbounded (saturates at zero).
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|at| at.saturating_sub(self.clock.now()))
    }

    /// The clock this deadline reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("expires_at", &self.expires_at)
            .field("expired", &self.expired.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_deadline_never_expires() {
        let d = Deadline::never();
        assert!(!d.expired());
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn manual_clock_drives_expiry() {
        let clock = Arc::new(ManualClock::new());
        let d = Deadline::armed(clock.clone(), Budget::with_time(Duration::from_millis(10)));
        assert!(d.check().is_ok());
        clock.advance(Duration::from_millis(9));
        assert!(d.check().is_ok());
        assert_eq!(d.remaining(), Some(Duration::from_millis(1)));
        clock.advance(Duration::from_millis(1));
        assert_eq!(d.check(), Err(DeadlineExceeded));
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn expiry_latches() {
        let clock = Arc::new(ManualClock::new());
        clock.advance(Duration::from_secs(5));
        let d = Deadline::armed(clock.clone(), Budget::with_time(Duration::from_secs(1)));
        clock.advance(Duration::from_secs(2));
        assert!(d.expired());
        // A rewound clock must not resurrect the request.
        *clock.now.lock().unwrap() = Duration::ZERO;
        assert!(d.expired());
    }

    #[test]
    fn manual_sleep_advances() {
        let clock = ManualClock::new();
        clock.sleep(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
    }

    #[test]
    fn tighter_takes_the_stricter_bound() {
        let short = Budget::with_time(Duration::from_millis(10));
        let long = Budget::with_time(Duration::from_secs(10));
        assert_eq!(short.tighter(long), short);
        assert_eq!(long.tighter(short), short);
        assert_eq!(Budget::UNLIMITED.tighter(short), short);
        assert_eq!(short.tighter(Budget::UNLIMITED), short);
        assert_eq!(
            Budget::UNLIMITED.tighter(Budget::UNLIMITED),
            Budget::UNLIMITED
        );
    }

    #[test]
    fn unlimited_budget_never_arms() {
        let clock = Arc::new(ManualClock::new());
        let d = Deadline::armed(clock.clone(), Budget::UNLIMITED);
        clock.advance(Duration::from_hours(1));
        assert!(d.check().is_ok());
    }
}
