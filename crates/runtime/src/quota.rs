//! Token-bucket admission quotas on the injectable [`Clock`].
//!
//! The network layer admits each tenant's requests through a
//! [`TokenBucket`]: a bucket holds at most `burst` tokens, refills at
//! `rate_per_sec`, and each admitted request spends one token. An empty
//! bucket rejects the request with the time until the next token — the
//! caller turns that into a `Retry-After` backpressure hint instead of
//! queueing the request without bound.
//!
//! All time flows through [`Clock`], so quota behavior is exercised with a
//! [`ManualClock`](crate::ManualClock) — no wall-clock sleeps in tests.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::Clock;

#[derive(Debug)]
struct BucketState {
    /// Fractional tokens currently available.
    tokens: f64,
    /// Clock reading of the last refill.
    last: Duration,
}

/// A clock-driven token bucket. `rate_per_sec <= 0` disables limiting
/// (every acquire succeeds) — the unlimited default for embedded use.
pub struct TokenBucket {
    clock: Arc<dyn Clock>,
    rate_per_sec: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with capacity `burst`
    /// (clamped to at least one token so a positive rate can ever admit).
    pub fn new(clock: Arc<dyn Clock>, rate_per_sec: f64, burst: f64) -> TokenBucket {
        let burst = if rate_per_sec > 0.0 {
            burst.max(1.0)
        } else {
            burst
        };
        let last = clock.now();
        TokenBucket {
            clock,
            rate_per_sec,
            burst,
            state: Mutex::new(BucketState {
                tokens: burst,
                last,
            }),
        }
    }

    /// Spend one token. On an empty bucket, returns the duration until a
    /// full token will have refilled — the caller's backoff hint.
    pub fn try_acquire(&self) -> Result<(), Duration> {
        if self.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let now = self.clock.now();
        let mut s = self.state.lock();
        let elapsed = now.saturating_sub(s.last);
        s.tokens = (s.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        s.last = now;
        if s.tokens >= 1.0 {
            s.tokens -= 1.0;
            Ok(())
        } else {
            let need = (1.0 - s.tokens) / self.rate_per_sec;
            Err(Duration::from_secs_f64(need))
        }
    }

    /// Tokens currently available (refilled to now).
    pub fn available(&self) -> f64 {
        if self.rate_per_sec <= 0.0 {
            return f64::INFINITY;
        }
        let now = self.clock.now();
        let mut s = self.state.lock();
        let elapsed = now.saturating_sub(s.last);
        s.tokens = (s.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        s.last = now;
        s.tokens
    }

    /// The refill rate in tokens per second.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The bucket capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }
}

impl std::fmt::Debug for TokenBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenBucket")
            .field("rate_per_sec", &self.rate_per_sec)
            .field("burst", &self.burst)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    #[test]
    fn burst_then_starve_then_refill() {
        let clock = Arc::new(ManualClock::new());
        let b = TokenBucket::new(clock.clone(), 10.0, 3.0);
        // The full burst is admitted immediately.
        for _ in 0..3 {
            assert!(b.try_acquire().is_ok());
        }
        // Empty: the hint says when the next token lands (1/10 s).
        let wait = b.try_acquire().unwrap_err();
        assert_eq!(wait, Duration::from_millis(100));
        // Refill honors elapsed manual time.
        clock.advance(Duration::from_millis(100));
        assert!(b.try_acquire().is_ok());
        assert!(b.try_acquire().is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let clock = Arc::new(ManualClock::new());
        let b = TokenBucket::new(clock.clone(), 100.0, 2.0);
        clock.advance(Duration::from_mins(1));
        assert!(
            (b.available() - 2.0).abs() < 1e-9,
            "no banking beyond burst"
        );
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let clock = Arc::new(ManualClock::new());
        let b = TokenBucket::new(clock, 0.0, 0.0);
        for _ in 0..1000 {
            assert!(b.try_acquire().is_ok());
        }
        assert_eq!(b.available(), f64::INFINITY);
    }

    #[test]
    fn partial_tokens_round_up_the_wait() {
        let clock = Arc::new(ManualClock::new());
        let b = TokenBucket::new(clock.clone(), 2.0, 1.0);
        assert!(b.try_acquire().is_ok());
        clock.advance(Duration::from_millis(250)); // half a token refilled
        let wait = b.try_acquire().unwrap_err();
        assert_eq!(wait, Duration::from_millis(250));
    }
}
