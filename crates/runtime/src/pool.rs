//! A minimal scoped-thread shard executor.
//!
//! The semi-naive reasoner shards its delta and evaluates rule batches on
//! each shard independently; [`ShardPool::map_shards`] runs one worker per
//! shard with [`std::thread::scope`] (no detached threads, no channels) and
//! returns the per-shard outputs **in shard order**, so a caller that
//! concatenates them gets a deterministic merge — bit-identical to running
//! the shards sequentially. Workers publish into index-addressed slots
//! behind a [`parking_lot::Mutex`], so a panicking worker cannot poison the
//! results of its siblings.
//!
//! Cancellation stays cooperative: the shard closure receives its shard
//! index and slice and is expected to poll the request
//! [`Deadline`](crate::Deadline) itself, returning `Err` to abandon the
//! shard. Errors are surfaced in shard order too (the first failing shard
//! wins), keeping failure reporting deterministic.

use parking_lot::Mutex;

/// Split `items` into at most `shards` contiguous, near-equal chunks.
/// Never yields an empty chunk; an empty input yields no chunks.
pub fn split_shards<T>(items: &[T], shards: usize) -> Vec<&[T]> {
    let shards = shards.max(1).min(items.len());
    if shards == 0 {
        return Vec::new();
    }
    let base = items.len() / shards;
    let extra = items.len() % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    out
}

/// A fixed-width shard executor. Holds no threads between calls; each
/// [`map_shards`](ShardPool::map_shards) spins up scoped workers and joins
/// them before returning.
#[derive(Debug, Clone, Copy)]
pub struct ShardPool {
    workers: usize,
}

impl Default for ShardPool {
    fn default() -> ShardPool {
        ShardPool::single()
    }
}

impl ShardPool {
    /// A pool with `workers` shards (clamped to at least one).
    pub fn new(workers: usize) -> ShardPool {
        ShardPool {
            workers: workers.max(1),
        }
    }

    /// A sequential pool: everything runs inline on the caller's thread.
    pub fn single() -> ShardPool {
        ShardPool::new(1)
    }

    /// The shard width this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Split `items` into up to [`workers`](ShardPool::workers) contiguous
    /// shards and apply `f(shard_index, shard)` to each, in parallel when
    /// more than one shard results. Outputs (and the first error) are
    /// returned in shard order regardless of thread scheduling.
    pub fn map_shards<T, O, E, F>(&self, items: &[T], f: F) -> Result<Vec<O>, E>
    where
        T: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &[T]) -> Result<O, E> + Sync,
    {
        let chunks = split_shards(items, self.workers);
        if chunks.len() <= 1 {
            // One shard (or none): skip thread setup entirely.
            return chunks
                .into_iter()
                .enumerate()
                .map(|(i, chunk)| f(i, chunk))
                .collect();
        }
        let slots: Mutex<Vec<Option<Result<O, E>>>> =
            Mutex::new(chunks.iter().map(|_| None).collect());
        std::thread::scope(|scope| {
            for (i, chunk) in chunks.iter().enumerate() {
                let slots = &slots;
                let f = &f;
                scope.spawn(move || {
                    let result = f(i, chunk);
                    slots.lock()[i] = Some(result);
                });
            }
        });
        let mut out = Vec::with_capacity(chunks.len());
        for slot in slots.into_inner() {
            out.push(slot.expect("scoped worker fills its slot before joining")?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, Deadline, DeadlineExceeded, ManualClock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn split_is_contiguous_and_balanced() {
        let items: Vec<u32> = (0..10).collect();
        let chunks = split_shards(&items, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        let rejoined: Vec<u32> = chunks.concat();
        assert_eq!(rejoined, items);
        // More shards than items degrades to one item per shard.
        assert_eq!(split_shards(&items[..2], 8).len(), 2);
        assert!(split_shards::<u32>(&[], 8).is_empty());
    }

    #[test]
    fn merge_order_is_shard_order() {
        let items: Vec<u32> = (0..100).collect();
        let pool = ShardPool::new(7);
        let merged: Vec<u32> = pool
            .map_shards(&items, |_, chunk| Ok::<_, DeadlineExceeded>(chunk.to_vec()))
            .unwrap()
            .concat();
        assert_eq!(
            merged, items,
            "concatenating shard outputs preserves input order"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u32> = (0..57).collect();
        let work = |i: usize, chunk: &[u32]| {
            Ok::<_, DeadlineExceeded>(chunk.iter().map(|x| x * 2 + i as u32).sum::<u32>())
        };
        let seq = ShardPool::single().map_shards(&items, work).unwrap();
        let par = ShardPool::new(4).map_shards(&items, work).unwrap();
        assert_eq!(seq.iter().sum::<u32>(), 57 * 56); // sanity: single shard, i = 0
        assert_eq!(par.len(), 4);
        // Same total work, just sharded; the outputs line up deterministically.
        let par2 = ShardPool::new(4).map_shards(&items, work).unwrap();
        assert_eq!(par, par2);
    }

    #[test]
    fn first_error_in_shard_order_wins() {
        let items: Vec<u32> = (0..8).collect();
        let err = ShardPool::new(4)
            .map_shards(&items, |i, _| if i >= 1 { Err(i) } else { Ok(()) })
            .unwrap_err();
        assert_eq!(err, 1, "lowest failing shard index is reported");
    }

    #[test]
    fn workers_poll_the_deadline() {
        let clock = Arc::new(ManualClock::new());
        let deadline = Deadline::armed(clock.clone(), Budget::with_time(Duration::from_millis(5)));
        clock.advance(Duration::from_millis(6));
        let items: Vec<u32> = (0..16).collect();
        let out: Result<Vec<()>, DeadlineExceeded> =
            ShardPool::new(4).map_shards(&items, |_, _| deadline.check());
        assert_eq!(out, Err(DeadlineExceeded));
    }
}
