//! Deterministic, seeded fault decisions.
//!
//! The G-SACS resilience layer (engine faults) and the durable store
//! (I/O faults: short writes, fsync failures, bit-flips) both need the same
//! property: the decision for the `n`-th event at a named stage must be a
//! **pure function of `(seed, stage, n)`**, so a failing property-test case
//! replays identically from its printed seed. This module is the shared
//! primitive; each harness layers its own fault kinds on top.

use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 — a tiny, high-quality 64-bit mixer. Used as the hash behind
/// every seeded fault draw in the workspace.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over a stage name; folds a string stage id into the seed lane.
pub(crate) fn stage_hash(stage: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in stage.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hierarchical seed derivation: one master `u64` fans out into a named
/// tree of independent seed lanes, so every randomized surface in the
/// workspace — engine fault plans, storage fault injection, quota jitter,
/// breaker half-open jitter, chaos clients, the simulation's own schedule
/// — derives from the *same* master seed and a whole-system run replays
/// bit-identically from a single number.
///
/// Derivation is pure: `child(label)` mixes the parent seed with the
/// FNV-1a hash of `label` through SplitMix64, so sibling lanes are
/// statistically independent and reordering unrelated `child` calls
/// cannot perturb each other. A `SeedTree` is `Copy` — hand lanes out
/// freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    master: u64,
    seed: u64,
}

impl SeedTree {
    /// The root of a derivation tree for `master`.
    pub fn new(master: u64) -> SeedTree {
        SeedTree {
            master,
            seed: splitmix64(master ^ 0x5EED_12EE_C0FF_EE01),
        }
    }

    /// The master seed this tree (and every lane under it) derives from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// This lane's derived seed — what a leaf consumer plugs into its
    /// own RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The named child lane.
    #[must_use]
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            master: self.master,
            seed: splitmix64(self.seed ^ stage_hash(label)),
        }
    }

    /// The `n`-th child of the named lane (per-step / per-instance fans).
    #[must_use]
    pub fn child_n(&self, label: &str, n: u64) -> SeedTree {
        SeedTree {
            master: self.master,
            seed: splitmix64(self.seed ^ stage_hash(label) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// A [`SeededDecider`] over this lane's seed.
    pub fn decider(&self) -> SeededDecider {
        SeededDecider::new(self.seed)
    }

    /// A tree rooted at the master seed named in env var `var` (decimal,
    /// or hex with an `0x` prefix), falling back to `default` when the
    /// variable is unset or unparseable. This is how the chaos/property
    /// suites accept a `--master-seed`-style override:
    /// `GRDF_MASTER_SEED=12345 cargo test`.
    pub fn from_env(var: &str, default: u64) -> SeedTree {
        let master = std::env::var(var)
            .ok()
            .and_then(|v| {
                let v = v.trim();
                match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => v.parse().ok(),
                }
            })
            .unwrap_or(default);
        SeedTree::new(master)
    }
}

/// A seeded decider: stateless draws plus an optional per-instance event
/// counter for callers that want "the next event" semantics.
#[derive(Debug)]
pub struct SeededDecider {
    seed: u64,
    next: AtomicU64,
}

impl SeededDecider {
    /// A decider for `seed`.
    pub fn new(seed: u64) -> SeededDecider {
        SeededDecider {
            seed,
            next: AtomicU64::new(0),
        }
    }

    /// The seed this decider replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw 64-bit draw for event `n` at `stage` — pure in
    /// `(seed, stage, n)`.
    pub fn draw(&self, stage: &str, n: u64) -> u64 {
        splitmix64(self.seed ^ stage_hash(stage) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// True with probability `rate` for event `n` at `stage`.
    pub fn fires(&self, stage: &str, n: u64, rate: f64) -> bool {
        let unit = (self.draw(stage, n) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate.clamp(0.0, 1.0)
    }

    /// A value in `0..bound` for event `n` at `stage` (`0` when `bound`
    /// is `0`).
    pub fn pick(&self, stage: &str, n: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.draw(stage, n) % bound
    }

    /// Consume and return this instance's next event number (a shared
    /// sequence across stages; callers wanting per-stage sequences keep
    /// their own counters).
    pub fn next_event(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_and_stage_separated() {
        let a = SeededDecider::new(42);
        let b = SeededDecider::new(42);
        assert_eq!(a.draw("wal", 7), b.draw("wal", 7));
        assert_ne!(a.draw("wal", 7), a.draw("fsync", 7));
        assert_ne!(a.draw("wal", 7), a.draw("wal", 8));
        assert_ne!(
            SeededDecider::new(1).draw("wal", 7),
            SeededDecider::new(2).draw("wal", 7)
        );
    }

    #[test]
    fn fires_respects_rate_extremes() {
        let d = SeededDecider::new(9);
        for n in 0..100 {
            assert!(!d.fires("s", n, 0.0));
            assert!(d.fires("s", n, 1.0));
        }
        // A middling rate should fire sometimes but not always.
        let hits = (0..1000).filter(|&n| d.fires("s", n, 0.3)).count();
        assert!(hits > 150 && hits < 450, "hits = {hits}");
    }

    #[test]
    fn pick_stays_in_bounds() {
        let d = SeededDecider::new(3);
        assert_eq!(d.pick("s", 0, 0), 0);
        for n in 0..50 {
            assert!(d.pick("s", n, 7) < 7);
        }
    }

    #[test]
    fn seed_tree_is_pure_and_lane_separated() {
        let a = SeedTree::new(42);
        let b = SeedTree::new(42);
        assert_eq!(a, b);
        assert_eq!(a.child("engine"), b.child("engine"));
        assert_ne!(a.child("engine"), a.child("storage"));
        assert_ne!(a.child("engine").seed(), a.seed());
        assert_ne!(a.child_n("step", 0), a.child_n("step", 1));
        assert_eq!(a.child("engine").master(), 42);
        assert_ne!(SeedTree::new(1).child("x"), SeedTree::new(2).child("x"));
        // Nested lanes are order-stable: deriving "a" then "b" equals
        // deriving them independently.
        assert_eq!(a.child("a").child("b"), a.child("a").child("b"));
        assert_ne!(a.child("a").child("b"), a.child("b").child("a"));
    }

    #[test]
    fn seed_tree_decider_matches_raw_seed() {
        let lane = SeedTree::new(7).child("wal");
        assert_eq!(
            lane.decider().draw("s", 3),
            SeededDecider::new(lane.seed()).draw("s", 3)
        );
    }

    #[test]
    fn seed_tree_env_parses_decimal_and_hex() {
        // Unset → default.
        std::env::remove_var("GRDF_SEEDTREE_TEST_VAR");
        assert_eq!(SeedTree::from_env("GRDF_SEEDTREE_TEST_VAR", 9).master(), 9);
        std::env::set_var("GRDF_SEEDTREE_TEST_VAR", "123");
        assert_eq!(
            SeedTree::from_env("GRDF_SEEDTREE_TEST_VAR", 9).master(),
            123
        );
        std::env::set_var("GRDF_SEEDTREE_TEST_VAR", "0xff");
        assert_eq!(
            SeedTree::from_env("GRDF_SEEDTREE_TEST_VAR", 9).master(),
            255
        );
        std::env::set_var("GRDF_SEEDTREE_TEST_VAR", "nope");
        assert_eq!(SeedTree::from_env("GRDF_SEEDTREE_TEST_VAR", 9).master(), 9);
        std::env::remove_var("GRDF_SEEDTREE_TEST_VAR");
    }

    #[test]
    fn event_counter_is_monotonic() {
        let d = SeededDecider::new(0);
        assert_eq!(d.next_event(), 0);
        assert_eq!(d.next_event(), 1);
        assert_eq!(d.next_event(), 2);
    }
}
