//! Completed-trace storage and export.
//!
//! A [`TraceSink`] is a bounded ring buffer of [`TraceRecord`]s (one per
//! root scope). A sink built with capacity 0 is *disabled*: scopes still
//! mint `TraceId`s and metrics still record, but no span is materialized —
//! the instrumented hot paths reduce to a thread-local flag check.
//!
//! Two export formats:
//!
//! * [`TraceSink::json_lines`] — one JSON object per span, for tooling;
//! * [`TraceSink::collapsed`] — `path;to;span self_µs` lines, the
//!   flamegraph collapsed-stack format (feed to `flamegraph.pl`).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::escape_json;
use crate::TraceId;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (`component.stage`).
    pub name: &'static str,
    /// Semicolon-joined ancestor names ending in `name` (collapsed-stack
    /// path).
    pub path: String,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// Start offset from the trace root, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Free-form key/value annotations.
    pub tags: Vec<(String, String)>,
}

impl SpanRecord {
    /// The value of tag `key`, if set.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One completed trace: every span recorded under a root scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The request-scoped trace id all spans share.
    pub id: TraceId,
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Spans named `name`.
    pub fn spans_named(&self, name: &str) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// The root span (depth 0), if the trace completed normally.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.depth == 0)
    }
}

/// Bounded ring buffer of completed traces.
#[derive(Debug, Default)]
pub struct TraceSink {
    capacity: usize,
    records: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A disabled sink: spans are not materialized at all.
    pub fn disabled() -> TraceSink {
        TraceSink::bounded(0)
    }

    /// A sink retaining the most recent `capacity` traces.
    pub fn bounded(capacity: usize) -> TraceSink {
        TraceSink {
            capacity,
            records: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether spans should be materialized.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Store a completed trace, evicting the oldest at capacity.
    pub fn push(&self, record: TraceRecord) {
        if !self.enabled() {
            return;
        }
        let mut records = self.records.lock().expect("sink lock");
        if records.len() >= self.capacity {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(record);
    }

    /// Retained traces, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records
            .lock()
            .expect("sink lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Retained trace count.
    pub fn len(&self) -> usize {
        self.records.lock().expect("sink lock").len()
    }

    /// Whether no trace is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// One JSON object per span, one span per line.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for rec in self.records.lock().expect("sink lock").iter() {
            for s in &rec.spans {
                let _ = write!(
                    out,
                    "{{\"trace\":\"{}\",\"span\":\"{}\",\"path\":\"{}\",\"depth\":{},\"start_ns\":{},\"dur_ns\":{}",
                    rec.id,
                    escape_json(s.name),
                    escape_json(&s.path),
                    s.depth,
                    s.start_ns,
                    s.dur_ns
                );
                if !s.tags.is_empty() {
                    out.push_str(",\"tags\":{");
                    for (i, (k, v)) in s.tags.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
                    }
                    out.push('}');
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// Collapsed-stack text: `root;child;leaf self_time_µs`, aggregated
    /// over every retained trace (flamegraph-compatible).
    pub fn collapsed(&self) -> String {
        let mut weights: BTreeMap<String, u64> = BTreeMap::new();
        for rec in self.records.lock().expect("sink lock").iter() {
            for s in &rec.spans {
                // Self time: own duration minus direct children's.
                let child_prefix = format!("{};", s.path);
                let children_ns: u64 = rec
                    .spans
                    .iter()
                    .filter(|c| c.depth == s.depth + 1 && c.path.starts_with(&child_prefix))
                    .map(|c| c.dur_ns)
                    .sum();
                let self_us = s.dur_ns.saturating_sub(children_ns) / 1_000;
                *weights.entry(s.path.clone()).or_insert(0) += self_us;
            }
        }
        let mut out = String::new();
        for (path, us) in weights {
            let _ = writeln!(out, "{path} {us}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, path: &str, depth: usize, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name,
            path: path.to_string(),
            depth,
            start_ns: start,
            dur_ns: dur,
            tags: Vec::new(),
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let sink = TraceSink::bounded(2);
        for i in 0..3u64 {
            sink.push(TraceRecord {
                id: TraceId(i + 1),
                spans: vec![],
            });
        }
        let recs = sink.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, TraceId(2));
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn disabled_sink_stores_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.push(TraceRecord {
            id: TraceId(1),
            spans: vec![],
        });
        assert!(sink.is_empty());
    }

    #[test]
    fn collapsed_stacks_use_self_time() {
        let sink = TraceSink::bounded(4);
        sink.push(TraceRecord {
            id: TraceId(9),
            spans: vec![
                span("child", "root;child", 1, 0, 40_000),
                span("root", "root", 0, 0, 100_000),
            ],
        });
        let text = sink.collapsed();
        assert!(text.contains("root;child 40"));
        assert!(
            text.contains("root 60"),
            "root self-time excludes child: {text}"
        );
    }

    #[test]
    fn json_lines_one_object_per_span() {
        let sink = TraceSink::bounded(4);
        let mut s = span("a", "a", 0, 5, 10);
        s.tags.push(("k".to_string(), "v\"q".to_string()));
        sink.push(TraceRecord {
            id: TraceId(0xabc),
            spans: vec![s],
        });
        let lines = sink.json_lines();
        assert_eq!(lines.lines().count(), 1);
        assert!(lines.contains("\"span\":\"a\""));
        assert!(lines.contains("\\\"q"));
        assert!(lines.contains("0000000000000abc"));
    }
}
