//! Lock-free metrics: named counters, gauges, and log₂ histograms.
//!
//! A [`MetricsRegistry`] maps names to metric cells. Registration (the
//! first use of a name) takes a write lock; every *recording* operation is
//! plain atomics on an `Arc`-shared cell, so hot paths pre-resolve their
//! handles once and never touch the lock again.
//!
//! Naming convention (see DESIGN.md §Observability): dot-separated
//! `component.noun[.verb]`, e.g. `gsacs.cache.hit`,
//! `reasoner.rule.subclass_transitivity`, `breaker.opened`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of log₂ buckets; bucket `i` counts values in `[2^i, 2^(i+1))`
/// (bucket 0 also absorbs 0), the last bucket absorbs everything larger.
pub const BUCKETS: usize = 64;

/// Interpolated quantile over a log₂ bucket array: linear within the
/// bucket holding the target rank, clamped to `max`; zero when empty.
/// Shared by [`LogHistogram`] and the windowed rings
/// ([`crate::window::WindowedSummary`]).
pub(crate) fn log_bucket_quantile(buckets: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if seen + n >= target {
            let lower = if i == 0 { 0 } else { 1u64 << i };
            let upper = if i + 1 >= 64 {
                u64::MAX
            } else {
                1u64 << (i + 1)
            };
            // The target rank's position among this bucket's samples,
            // assuming they spread uniformly across the bucket.
            let frac = (target - seen) as f64 / n as f64;
            let est = lower + ((upper - lower) as f64 * frac).round() as u64;
            return est.min(max);
        }
        seen += n;
    }
    max
}

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time gauge handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Fixed log₂-bucket histogram with lock-free recording, generalized out
/// of the PR 1 `LatencyHistogram` (which now wraps it with `Duration`
/// units).
///
/// Quantiles are *interpolated within the bucket* holding the target
/// rank — assuming a uniform spread of samples across the bucket — and
/// clamped to the largest recorded value, instead of reporting the bucket
/// upper bound (which overstated p50/p99 by up to 2×).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        let idx = (v | 1).ilog2() as usize;
        self.buckets[idx.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`0.0..=1.0`), linearly interpolated within
    /// the bucket holding the target rank and clamped to [`Self::max`];
    /// zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        log_bucket_quantile(&self.bucket_counts(), self.count(), self.max(), q)
    }

    /// Raw per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))`); the
    /// Prometheus exposition reads these to render cumulative
    /// `_bucket{le=…}` samples.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Last-seen exemplar per log₂ bucket: the most recent `(value,
/// trace id)` recorded into the bucket while a traced scope was active.
/// The two cells are not updated atomically as a pair — a racing pair of
/// records can interleave them — but both halves always belong to the
/// same bucket, so an exposed exemplar is always a valid witness for its
/// bucket.
#[derive(Debug)]
struct Exemplars {
    ids: [AtomicU64; BUCKETS],
    values: [AtomicU64; BUCKETS],
}

impl Default for Exemplars {
    fn default() -> Exemplars {
        Exemplars {
            ids: std::array::from_fn(|_| AtomicU64::new(0)),
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A shared histogram handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<LogHistogram>,
    exemplars: Arc<Exemplars>,
}

impl Histogram {
    /// Record one value. When a traced scope is active on this thread,
    /// the value and its trace id are kept as the bucket's exemplar,
    /// linking `/metrics` histogram buckets back to spans in the sink.
    pub fn record(&self, v: u64) {
        self.core.record(v);
        if let Some(id) = crate::current_trace_id() {
            let idx = ((v | 1).ilog2() as usize).min(BUCKETS - 1);
            self.exemplars.values[idx].store(v, Ordering::Relaxed);
            self.exemplars.ids[idx].store(id.0, Ordering::Relaxed);
        }
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.core
            .record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count()
    }

    /// Interpolated quantile (see [`LogHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.core.quantile(q)
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.core.max()
    }

    /// Raw per-bucket counts (see [`LogHistogram::bucket_counts`]).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        self.core.bucket_counts()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum()
    }

    /// The exemplar witnessed for bucket `idx`, if any request ever
    /// recorded into it under a traced scope.
    pub fn exemplar(&self, idx: usize) -> Option<(crate::TraceId, u64)> {
        let id = self.exemplars.ids.get(idx)?.load(Ordering::Relaxed);
        (id != 0).then(|| {
            (
                crate::TraceId(id),
                self.exemplars.values[idx].load(Ordering::Relaxed),
            )
        })
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Interpolated median.
    pub p50: u64,
    /// Interpolated 99th percentile.
    pub p99: u64,
    /// Largest recorded value.
    pub max: u64,
}

/// Name → metric cells. Recording never takes the registry locks; only
/// first-time registration and snapshots do.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return c.clone();
        }
        let mut map = self.counters.write().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("registry lock").get(name) {
            return g.clone();
        }
        let mut map = self.gauges.write().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().expect("registry lock").get(name) {
            return h.clone();
        }
        let mut map = self.histograms.write().expect("registry lock");
        map.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.core.count(),
                        sum: v.core.sum(),
                        p50: v.core.quantile(0.5),
                        p99: v.core.quantile(0.99),
                        max: v.core.max(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            run_id: None,
            counters,
            gauges,
            histograms,
        }
    }

    /// Multi-line human-readable rendering of the current state.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// Every registered histogram with its live handle — the Prometheus
    /// exposition walks these for raw buckets and exemplars, which the
    /// [`HistogramSummary`] snapshot deliberately omits.
    pub fn histogram_handles(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// An immutable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The process-lifetime run id the snapshot was taken under (the
    /// durable store's boot counter), when known. Counters reset to zero
    /// on restart, so a delta between snapshots from different runs is
    /// meaningless — [`MetricsSnapshot::try_delta`] refuses to compute
    /// one.
    pub run_id: Option<u64>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Refusal from [`MetricsSnapshot::try_delta`]: the snapshots were taken
/// under different run ids, so counter subtraction would mix unrelated
/// process lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunIdMismatch {
    /// The baseline snapshot's run id.
    pub baseline: Option<u64>,
    /// The later snapshot's run id.
    pub current: Option<u64>,
}

impl std::fmt::Display for RunIdMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn show(id: Option<u64>) -> String {
            id.map_or_else(|| "unknown".to_string(), |v| v.to_string())
        }
        write!(
            f,
            "refusing to delta metrics across runs (baseline run id {}, current run id {}): \
             counters reset on restart, the difference would be meaningless",
            show(self.baseline),
            show(self.current)
        )
    }
}

impl std::error::Error for RunIdMismatch {}

impl MetricsSnapshot {
    /// Stamp the snapshot with the run id it was taken under (the durable
    /// store's boot counter).
    #[must_use]
    pub fn with_run_id(mut self, run_id: u64) -> MetricsSnapshot {
        self.run_id = Some(run_id);
        self
    }

    /// Like [`MetricsSnapshot::delta`], but refuses when the snapshots
    /// carry different run ids (two unstamped snapshots are assumed to be
    /// same-run for compatibility with pre-run-id files).
    pub fn try_delta(&self, baseline: &MetricsSnapshot) -> Result<MetricsSnapshot, RunIdMismatch> {
        if self.run_id != baseline.run_id {
            return Err(RunIdMismatch {
                baseline: baseline.run_id,
                current: self.run_id,
            });
        }
        Ok(self.delta(baseline))
    }
    /// The change from `baseline` to `self`: counters and histogram counts
    /// subtract (saturating), gauges and quantiles report the later state.
    #[must_use]
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    v.saturating_sub(baseline.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let before = baseline.histograms.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.count.saturating_sub(before.count),
                        sum: v.sum.saturating_sub(before.sum),
                        ..*v
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            run_id: self.run_id,
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Aligned text rendering (used by `grdf-cli health`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k:<44} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "{k:<44} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{k:<44} n={} p50={} p99={} max={}",
                h.count, h.p50, h.p99, h.max
            );
        }
        out
    }

    /// Parse a snapshot previously written by [`MetricsSnapshot::to_json`].
    ///
    /// Not a general JSON parser: it understands exactly the line-oriented
    /// shape `to_json` emits (one entry per line, stable key order), which
    /// is what CI snapshot artifacts contain. Files without a `run_id`
    /// key (pre-run-id artifacts) parse with `run_id: None`.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Counters,
            Gauges,
            Histograms,
        }
        fn unquote(s: &str) -> Result<&str, String> {
            s.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("expected quoted key, got {s}"))
        }
        fn hist_field(body: &str, name: &str) -> Result<u64, String> {
            let key = format!("\"{name}\": ");
            let start = body
                .find(&key)
                .ok_or_else(|| format!("histogram entry missing {name}: {body}"))?
                + key.len();
            let rest = &body[start..];
            let end = rest
                .find([',', '}'])
                .ok_or_else(|| format!("unterminated histogram field {name}: {body}"))?;
            rest[..end]
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("bad {name} in {body}: {e}"))
        }
        let mut snap = MetricsSnapshot::default();
        let mut section = Section::None;
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            match line {
                "" | "{" | "}" => {}
                "\"counters\": {" => section = Section::Counters,
                "\"gauges\": {" => section = Section::Gauges,
                "\"histograms\": {" => section = Section::Histograms,
                _ => {
                    let Some((key, value)) = line.split_once(": ") else {
                        return Err(format!("unrecognized line: {line}"));
                    };
                    let value = value.trim();
                    if section == Section::None && key == "\"run_id\"" {
                        snap.run_id = match value {
                            "null" => None,
                            v => Some(
                                v.parse::<u64>()
                                    .map_err(|e| format!("bad run_id {v}: {e}"))?,
                            ),
                        };
                        continue;
                    }
                    let name = unquote(key)?.to_string();
                    match section {
                        Section::Counters => {
                            let v = value
                                .parse::<u64>()
                                .map_err(|e| format!("bad counter {name}: {e}"))?;
                            snap.counters.insert(name, v);
                        }
                        Section::Gauges => {
                            let v = value
                                .parse::<i64>()
                                .map_err(|e| format!("bad gauge {name}: {e}"))?;
                            snap.gauges.insert(name, v);
                        }
                        Section::Histograms => {
                            let summary = HistogramSummary {
                                count: hist_field(value, "count")?,
                                sum: hist_field(value, "sum")?,
                                p50: hist_field(value, "p50")?,
                                p99: hist_field(value, "p99")?,
                                max: hist_field(value, "max")?,
                            };
                            snap.histograms.insert(name, summary);
                        }
                        Section::None => {
                            return Err(format!("entry outside any section: {line}"));
                        }
                    }
                }
            }
        }
        Ok(snap)
    }

    /// JSON object rendering (`BENCH_*.json`-style, stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        match self.run_id {
            Some(id) => {
                let _ = writeln!(out, "  \"run_id\": {id},");
            }
            None => out.push_str("  \"run_id\": null,\n"),
        }
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(k));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(k));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                escape_json(k),
                h.count,
                h.sum,
                h.p50,
                h.p99,
                h.max
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("g").get(), 3);
    }

    /// The satellite-1 pin: quantiles interpolate within the bucket
    /// instead of reporting its upper bound.
    #[test]
    fn quantiles_interpolate_within_bucket() {
        let h = LogHistogram::default();
        // Four identical samples land in bucket [512, 1024).
        for _ in 0..4 {
            h.record(1000);
        }
        // rank 2 of 4 → halfway through the bucket: 512 + 0.5·512.
        assert_eq!(h.quantile(0.5), 768);
        // rank 4 of 4 → bucket upper bound, clamped to the recorded max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 640); // rank 1 of 4 → 512 + 0.25·512
    }

    #[test]
    fn quantiles_pin_known_distribution() {
        let h = LogHistogram::default();
        for v in 1..=8u64 {
            h.record(v);
        }
        // Buckets: [1]=1, [2,3]=2, [4..8)=4, [8..16)=1. Median rank 4 is
        // the first of four samples in [4, 8): 4 + (1/4)·4 = 5.
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 8);
        assert!(h.quantile(0.99) <= h.max());
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 36);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let h = LogHistogram::default();
        for v in [3u64, 17, 99, 1024, 40_000] {
            h.record(v);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantiles must be monotone");
            assert!(v <= h.max());
            last = v;
        }
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(5);
        reg.histogram("h").record(10);
        let before = reg.snapshot();
        reg.counter("a").add(7);
        reg.counter("b").inc();
        reg.histogram("h").record(20);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counters["a"], 7);
        assert_eq!(delta.counters["b"], 1);
        assert_eq!(delta.histograms["h"].count, 1);
    }

    #[test]
    fn try_delta_refuses_cross_run_snapshots() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(5);
        let before = reg.snapshot().with_run_id(3);
        reg.counter("a").add(2);
        let after = reg.snapshot().with_run_id(4);
        let err = after.try_delta(&before).unwrap_err();
        assert_eq!(err.baseline, Some(3));
        assert_eq!(err.current, Some(4));
        assert!(err.to_string().contains("refusing to delta"));
        // Same run id: works and carries the id forward.
        let after = reg.snapshot().with_run_id(3);
        let delta = after.try_delta(&before).unwrap();
        assert_eq!(delta.counters["a"], 2);
        assert_eq!(delta.run_id, Some(3));
        // Stamped vs unstamped is also a mismatch.
        assert!(reg.snapshot().try_delta(&before).is_err());
        // Two legacy (unstamped) snapshots still delta.
        assert!(reg.snapshot().try_delta(&reg.snapshot()).is_ok());
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let reg = MetricsRegistry::new();
        reg.counter("gsacs.requests").add(12);
        reg.counter("store.wal.append").inc();
        reg.gauge("pool.size").set(-3);
        reg.histogram("latency").record(100);
        reg.histogram("latency").record(5000);
        let snap = reg.snapshot().with_run_id(9);
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        // Empty registry round-trips too, as does a missing run_id key.
        let empty = MetricsRegistry::new().snapshot();
        assert_eq!(MetricsSnapshot::from_json(&empty.to_json()).unwrap(), empty);
        let legacy = "{\n  \"counters\": {\n    \"a\": 1\n  },\n  \"gauges\": {\n  },\n  \"histograms\": {\n  }\n}\n";
        let parsed = MetricsSnapshot::from_json(legacy).unwrap();
        assert_eq!(parsed.run_id, None);
        assert_eq!(parsed.counters["a"], 1);
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn run_id_lands_in_json() {
        let reg = MetricsRegistry::new();
        assert!(reg.snapshot().to_json().contains("\"run_id\": null"));
        assert!(reg
            .snapshot()
            .with_run_id(7)
            .to_json()
            .contains("\"run_id\": 7"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.gauge("g").set(-4);
        reg.histogram("h").record(2);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a.b\": 1"));
        assert!(json.contains("\"g\": -4"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
