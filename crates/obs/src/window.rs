//! Windowed (time-bucketed) metrics: a lock-free ring of fixed-interval
//! buckets behind every counter/histogram, so the registry's lifetime
//! totals gain a time axis — `rate(name, window)` and windowed quantiles
//! over the recent past instead of since-boot aggregates.
//!
//! ## Ring model
//!
//! Each series owns **two** rings sharing one geometry knob
//! ([`WindowConfig`]): a *fast* ring of `slots` buckets `width` wide
//! (default 30 × 10 s = 5 min of fine-grained history) and a *slow* ring
//! of `slots` buckets `width × slow_factor` wide (default 30 × 120 s =
//! 1 h of coarse history). Queries pick the ring by the requested window:
//! windows within the fast span read fine buckets, longer windows fall
//! back to the coarse ring. The two-tier layout is what makes
//! multi-window burn-rate alerting (fast 5 m + slow 1 h) affordable:
//! retention spans an hour without an hour of 10-second histogram slots.
//!
//! Time comes from an injected [`grdf_runtime::Clock`], never
//! `Instant::now()` directly, so tests drive the rings with a
//! `ManualClock` and assert *exact* rates and quantiles.
//!
//! ## Concurrency
//!
//! A slot is `(stamp, cells…)` where `stamp = epoch + 1` (0 = never
//! written). Recording computes the current epoch, claims the slot by
//! swapping the stamp, and the claim winner zeroes the cells. A racing
//! record between the claim and the reset can be lost — a bounded,
//! boundary-only undercount under heavy contention that we accept in
//! exchange for recording being a handful of relaxed atomics with no
//! lock. Single-threaded (and clock-driven test) recording is exact.
//!
//! ## Cardinality
//!
//! Series are keyed by `(name, optional tenant label)`. Tenant labels
//! must come from a [`TenantDim`] — a bounded, LRU-capped label space
//! with an `other` overflow bucket — so adversarial tenant ids can never
//! grow the store past `cap + 1` labels per name (see DESIGN.md §12).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use grdf_runtime::Clock;

use crate::metrics::{log_bucket_quantile, BUCKETS};

/// Separator between metric name and tenant label in a series key.
/// Unit-separator is unreachable from metric names and sanitized tenant
/// ids, so the split is unambiguous.
const TENANT_SEP: char = '\u{1f}';

/// Ring geometry for a [`WindowStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Fast-ring bucket width.
    pub width: Duration,
    /// Buckets per ring (fast and slow rings both hold this many).
    pub slots: usize,
    /// Slow-ring buckets are `width × slow_factor` wide.
    pub slow_factor: u32,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            width: Duration::from_secs(10),
            slots: 30,
            slow_factor: 12,
        }
    }
}

impl WindowConfig {
    /// Span of the fast ring (`width × slots`).
    pub fn fast_span(&self) -> Duration {
        self.width * u32::try_from(self.slots).unwrap_or(u32::MAX)
    }

    /// Span of the slow ring (`width × slow_factor × slots`).
    pub fn slow_span(&self) -> Duration {
        self.fast_span() * self.slow_factor
    }

    fn slow_width(&self) -> Duration {
        self.width * self.slow_factor
    }
}

fn epoch_of(now: Duration, width: Duration) -> u64 {
    let w = width.as_nanos().max(1);
    u64::try_from(now.as_nanos() / w).unwrap_or(u64::MAX)
}

/// Epochs covered by `window` at bucket width `width`, including the
/// current partial bucket, clamped to the ring length.
fn window_epochs(window: Duration, width: Duration, slots: usize) -> u64 {
    let w = width.as_nanos().max(1);
    let n = window.as_nanos().div_ceil(w);
    u64::try_from(n).unwrap_or(u64::MAX).clamp(1, slots as u64)
}

// ---------------------------------------------------------------------------
// Counter rings
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct CounterSlot {
    stamp: AtomicU64,
    value: AtomicU64,
}

#[derive(Debug)]
struct CounterRing {
    slots: Box<[CounterSlot]>,
}

impl CounterRing {
    fn new(slots: usize) -> CounterRing {
        CounterRing {
            slots: (0..slots.max(1))
                .map(|_| CounterSlot {
                    stamp: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn add(&self, epoch: u64, n: u64) {
        let slot = &self.slots[usize::try_from(epoch).unwrap_or(usize::MAX) % self.slots.len()];
        let stamp = epoch + 1;
        if slot.stamp.load(Ordering::Acquire) != stamp {
            let prev = slot.stamp.swap(stamp, Ordering::AcqRel);
            if prev != stamp {
                // Claim winner resets the recycled slot (see module docs
                // for the benign boundary race).
                slot.value.store(0, Ordering::Release);
            }
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self, now_epoch: u64, epochs: u64) -> u64 {
        let lo = now_epoch.saturating_sub(epochs - 1) + 1;
        let hi = now_epoch + 1;
        self.slots
            .iter()
            .filter_map(|s| {
                let stamp = s.stamp.load(Ordering::Acquire);
                (stamp >= lo && stamp <= hi).then(|| s.value.load(Ordering::Relaxed))
            })
            .sum()
    }
}

#[derive(Debug)]
struct WindowedCounter {
    fast: CounterRing,
    slow: CounterRing,
}

// ---------------------------------------------------------------------------
// Histogram rings
// ---------------------------------------------------------------------------

struct HistSlot {
    stamp: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

struct HistRing {
    slots: Box<[HistSlot]>,
}

impl HistRing {
    fn new(slots: usize) -> HistRing {
        HistRing {
            slots: (0..slots.max(1))
                .map(|_| HistSlot {
                    stamp: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    max: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    fn record(&self, epoch: u64, v: u64) {
        let slot = &self.slots[usize::try_from(epoch).unwrap_or(usize::MAX) % self.slots.len()];
        let stamp = epoch + 1;
        if slot.stamp.load(Ordering::Acquire) != stamp {
            let prev = slot.stamp.swap(stamp, Ordering::AcqRel);
            if prev != stamp {
                slot.count.store(0, Ordering::Relaxed);
                slot.sum.store(0, Ordering::Relaxed);
                slot.max.store(0, Ordering::Relaxed);
                for b in &slot.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
        let idx = ((v | 1).ilog2() as usize).min(BUCKETS - 1);
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
        slot.max.fetch_max(v, Ordering::Relaxed);
    }

    fn merge(&self, now_epoch: u64, epochs: u64) -> WindowedSummary {
        let lo = now_epoch.saturating_sub(epochs - 1) + 1;
        let hi = now_epoch + 1;
        let mut out = WindowedSummary::default();
        for s in &*self.slots {
            let stamp = s.stamp.load(Ordering::Acquire);
            if stamp < lo || stamp > hi {
                continue;
            }
            out.count += s.count.load(Ordering::Relaxed);
            out.sum += s.sum.load(Ordering::Relaxed);
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
            for (acc, b) in out.buckets.iter_mut().zip(&s.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

struct WindowedHistogram {
    fast: HistRing,
    slow: HistRing,
}

/// Merged view of one histogram series over a window.
#[derive(Clone, Copy)]
pub struct WindowedSummary {
    /// Samples inside the window.
    pub count: u64,
    /// Sum of sample values inside the window.
    pub sum: u64,
    /// Largest sample inside the window.
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for WindowedSummary {
    fn default() -> WindowedSummary {
        WindowedSummary {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl std::fmt::Debug for WindowedSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedSummary")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl WindowedSummary {
    /// Interpolated quantile over the window (see
    /// [`LogHistogram::quantile`](crate::LogHistogram::quantile)); zero
    /// when the window holds no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        log_bucket_quantile(&self.buckets, self.count, self.max, q)
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Name → windowed series, with time injected through a
/// [`grdf_runtime::Clock`]. Recording takes a read lock on first resolve
/// plus relaxed atomics; registration (first use of a key) takes the
/// write lock once.
pub struct WindowStore {
    clock: Arc<dyn Clock>,
    cfg: WindowConfig,
    counters: RwLock<BTreeMap<String, Arc<WindowedCounter>>>,
    histograms: RwLock<BTreeMap<String, Arc<WindowedHistogram>>>,
}

impl std::fmt::Debug for WindowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowStore")
            .field("cfg", &self.cfg)
            .field("series", &self.series_count())
            .finish_non_exhaustive()
    }
}

fn series_key(name: &str, tenant: Option<&str>) -> String {
    match tenant {
        None => name.to_string(),
        Some(t) => format!("{name}{TENANT_SEP}{t}"),
    }
}

/// Split a series key back into `(name, tenant)`.
pub fn split_series(key: &str) -> (&str, Option<&str>) {
    match key.split_once(TENANT_SEP) {
        None => (key, None),
        Some((name, tenant)) => (name, Some(tenant)),
    }
}

impl WindowStore {
    /// An empty store reading `clock`.
    pub fn new(cfg: WindowConfig, clock: Arc<dyn Clock>) -> WindowStore {
        WindowStore {
            clock,
            cfg,
            counters: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The ring geometry.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    fn counter_series(&self, key: &str) -> Arc<WindowedCounter> {
        if let Some(c) = self.counters.read().expect("window lock").get(key) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().expect("window lock");
        Arc::clone(map.entry(key.to_string()).or_insert_with(|| {
            Arc::new(WindowedCounter {
                fast: CounterRing::new(self.cfg.slots),
                slow: CounterRing::new(self.cfg.slots),
            })
        }))
    }

    fn hist_series(&self, key: &str) -> Arc<WindowedHistogram> {
        if let Some(h) = self.histograms.read().expect("window lock").get(key) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("window lock");
        Arc::clone(map.entry(key.to_string()).or_insert_with(|| {
            Arc::new(WindowedHistogram {
                fast: HistRing::new(self.cfg.slots),
                slow: HistRing::new(self.cfg.slots),
            })
        }))
    }

    /// Add `n` to the windowed counter `name` (global series when
    /// `tenant` is `None`, plus callers tee a tenant series separately).
    pub fn add(&self, name: &str, tenant: Option<&str>, n: u64) {
        let now = self.clock.now();
        let series = self.counter_series(&series_key(name, tenant));
        series.fast.add(epoch_of(now, self.cfg.width), n);
        series.slow.add(epoch_of(now, self.cfg.slow_width()), n);
    }

    /// Record `v` into the windowed histogram `name`.
    pub fn observe(&self, name: &str, tenant: Option<&str>, v: u64) {
        let now = self.clock.now();
        let series = self.hist_series(&series_key(name, tenant));
        series.fast.record(epoch_of(now, self.cfg.width), v);
        series.slow.record(epoch_of(now, self.cfg.slow_width()), v);
    }

    /// Sum of counter increments inside the trailing `window` (including
    /// the current partial bucket). Zero for an unknown series.
    pub fn window_sum(&self, name: &str, tenant: Option<&str>, window: Duration) -> u64 {
        let key = series_key(name, tenant);
        let Some(series) = self
            .counters
            .read()
            .expect("window lock")
            .get(&key)
            .cloned()
        else {
            return 0;
        };
        let now = self.clock.now();
        let (ring, width) = if window <= self.cfg.fast_span() {
            (&series.fast, self.cfg.width)
        } else {
            (&series.slow, self.cfg.slow_width())
        };
        ring.sum(
            epoch_of(now, width),
            window_epochs(window, width, self.cfg.slots),
        )
    }

    /// Events per second over the trailing `window`:
    /// `window_sum / window.as_secs`.
    pub fn rate(&self, name: &str, tenant: Option<&str>, window: Duration) -> f64 {
        let secs = window.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.window_sum(name, tenant, window) as f64 / secs
    }

    /// Merged histogram view over the trailing `window`; `None` for an
    /// unknown series.
    pub fn summary(
        &self,
        name: &str,
        tenant: Option<&str>,
        window: Duration,
    ) -> Option<WindowedSummary> {
        let key = series_key(name, tenant);
        let series = self
            .histograms
            .read()
            .expect("window lock")
            .get(&key)
            .cloned()?;
        let now = self.clock.now();
        let (ring, width) = if window <= self.cfg.fast_span() {
            (&series.fast, self.cfg.width)
        } else {
            (&series.slow, self.cfg.slow_width())
        };
        Some(ring.merge(
            epoch_of(now, width),
            window_epochs(window, width, self.cfg.slots),
        ))
    }

    /// Interpolated quantile over the trailing `window`; `None` for an
    /// unknown series.
    pub fn quantile(
        &self,
        name: &str,
        tenant: Option<&str>,
        window: Duration,
        q: f64,
    ) -> Option<u64> {
        self.summary(name, tenant, window).map(|s| s.quantile(q))
    }

    /// Distinct tenant labels across all series (sorted, deduplicated).
    pub fn tenant_labels(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        for key in self
            .counters
            .read()
            .expect("window lock")
            .keys()
            .chain(self.histograms.read().expect("window lock").keys())
        {
            if let (_, Some(t)) = split_series(key) {
                out.insert(t.to_string());
            }
        }
        out.into_iter().collect()
    }

    /// Metric names carrying a series for `tenant` (histograms and
    /// counters merged, sorted).
    pub fn names_for_tenant(&self, tenant: Option<&str>) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        for key in self
            .counters
            .read()
            .expect("window lock")
            .keys()
            .chain(self.histograms.read().expect("window lock").keys())
        {
            let (name, t) = split_series(key);
            if t == tenant {
                out.insert(name.to_string());
            }
        }
        out.into_iter().collect()
    }

    /// Total registered series (counter + histogram, all tenants) — the
    /// quantity the cardinality cap bounds.
    pub fn series_count(&self) -> usize {
        self.counters.read().expect("window lock").len()
            + self.histograms.read().expect("window lock").len()
    }

    /// Drop every series attributed to `tenant` (called when a
    /// [`TenantDim`] slot is evicted, so a recycled label starts clean).
    pub fn drop_tenant(&self, tenant: &str) {
        let matches = |key: &String| split_series(key).1 == Some(tenant);
        self.counters
            .write()
            .expect("window lock")
            .retain(|k, _| !matches(k));
        self.histograms
            .write()
            .expect("window lock")
            .retain(|k, _| !matches(k));
    }
}

// ---------------------------------------------------------------------------
// Bounded tenant label dimension
// ---------------------------------------------------------------------------

/// Result of resolving a raw tenant id against the bounded label space.
#[derive(Debug, Clone)]
pub struct TenantResolution {
    /// The label to attribute this request to (the id itself, or
    /// [`TenantDim::OVERFLOW`]).
    pub label: Arc<str>,
    /// A label whose slot was recycled to admit this id; the caller must
    /// drop its windowed series ([`WindowStore::drop_tenant`]).
    pub evicted: Option<Arc<str>>,
}

/// A bounded-cardinality tenant label space: at most `cap` distinct ids
/// hold slots; everyone else is attributed to the shared `other` bucket.
///
/// Slots are LRU-recycled, but only once idle for `min_idle` — so a
/// burst of 10k fresh tenant ids cannot evict the tenants actually
/// carrying traffic (they all collapse into `other`), while a tenant
/// that genuinely went away eventually frees its slot.
#[derive(Debug)]
pub struct TenantDim {
    cap: usize,
    min_idle: Duration,
    overflow: Arc<str>,
    slots: Mutex<Vec<(Arc<str>, Duration)>>,
}

impl TenantDim {
    /// The shared overflow label.
    pub const OVERFLOW: &'static str = "other";

    /// A dimension admitting at most `cap` distinct labels, recycling
    /// slots idle for at least `min_idle`.
    pub fn new(cap: usize, min_idle: Duration) -> TenantDim {
        TenantDim {
            cap: cap.max(1),
            min_idle,
            overflow: Arc::from(TenantDim::OVERFLOW),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Maximum distinct labels (excluding `other`).
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Map a raw (sanitized) tenant id onto a bounded label.
    pub fn resolve(&self, raw: &str, now: Duration) -> TenantResolution {
        if raw == TenantDim::OVERFLOW {
            return TenantResolution {
                label: Arc::clone(&self.overflow),
                evicted: None,
            };
        }
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(slot) = slots.iter_mut().find(|(label, _)| &**label == raw) {
            slot.1 = now;
            return TenantResolution {
                label: Arc::clone(&slot.0),
                evicted: None,
            };
        }
        let label: Arc<str> = Arc::from(raw);
        if slots.len() < self.cap {
            slots.push((Arc::clone(&label), now));
            return TenantResolution {
                label,
                evicted: None,
            };
        }
        // Full: recycle the LRU slot only if it has gone genuinely idle;
        // otherwise this id overflows into `other`.
        let lru = slots
            .iter_mut()
            .min_by_key(|(_, last)| *last)
            .expect("cap >= 1");
        if now.saturating_sub(lru.1) >= self.min_idle {
            let evicted = std::mem::replace(&mut lru.0, Arc::clone(&label));
            lru.1 = now;
            return TenantResolution {
                label,
                evicted: Some(evicted),
            };
        }
        TenantResolution {
            label: Arc::clone(&self.overflow),
            evicted: None,
        }
    }

    /// Currently bound labels (no particular order; excludes `other`).
    pub fn labels(&self) -> Vec<Arc<str>> {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(l, _)| Arc::clone(l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_runtime::ManualClock;

    fn store(width_secs: u64, slots: usize) -> (Arc<ManualClock>, WindowStore) {
        let clock = Arc::new(ManualClock::new());
        let cfg = WindowConfig {
            width: Duration::from_secs(width_secs),
            slots,
            slow_factor: 12,
        };
        (
            Arc::clone(&clock),
            WindowStore::new(cfg, clock as Arc<dyn Clock>),
        )
    }

    #[test]
    fn rate_is_exact_under_a_manual_clock() {
        let (clock, ws) = store(10, 30);
        for _ in 0..50 {
            ws.add("req", None, 1);
        }
        clock.advance(Duration::from_secs(10));
        for _ in 0..10 {
            ws.add("req", None, 1);
        }
        // 60 events across the trailing minute.
        assert_eq!(ws.window_sum("req", None, Duration::from_mins(1)), 60);
        assert!((ws.rate("req", None, Duration::from_mins(1)) - 1.0).abs() < 1e-9);
        // Only the current 10 s bucket holds the last 10 events.
        assert_eq!(ws.window_sum("req", None, Duration::from_secs(10)), 10);
    }

    #[test]
    fn old_buckets_age_out_of_the_window() {
        let (clock, ws) = store(1, 10);
        ws.add("x", None, 7);
        clock.advance(Duration::from_secs(5));
        assert_eq!(ws.window_sum("x", None, Duration::from_secs(10)), 7);
        clock.advance(Duration::from_secs(6));
        assert_eq!(ws.window_sum("x", None, Duration::from_secs(10)), 0);
        // Lifetime view is the registry's job; the window forgot it.
    }

    #[test]
    fn ring_wraparound_recycles_slots() {
        let (clock, ws) = store(1, 4);
        for i in 0..10u64 {
            ws.add("x", None, i + 1);
            clock.advance(Duration::from_secs(1));
        }
        // Clock sits at epoch 10; a 4 s window covers epochs 7..=10, and
        // the writes landing there carried values 8, 9, 10.
        assert_eq!(ws.window_sum("x", None, Duration::from_secs(4)), 27);
    }

    #[test]
    fn windowed_quantiles_are_windowed() {
        let (clock, ws) = store(10, 30);
        for _ in 0..100 {
            ws.observe("lat", None, 1000);
        }
        clock.advance(Duration::from_secs(10));
        for _ in 0..100 {
            ws.observe("lat", None, 100_000);
        }
        // Whole minute: a mix; p50 in the low bucket, p99 in the high one.
        let s = ws.summary("lat", None, Duration::from_mins(1)).unwrap();
        assert_eq!(s.count, 200);
        assert!(s.quantile(0.99) >= 65_536);
        // Last 10 s only: everything is slow.
        let s = ws.summary("lat", None, Duration::from_secs(10)).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100_000);
        assert!(s.quantile(0.5) >= 65_536);
        // After the fast span passes, the fast window is empty again.
        clock.advance(Duration::from_mins(5));
        let s = ws.summary("lat", None, Duration::from_mins(1)).unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
    }

    #[test]
    fn long_windows_read_the_slow_ring() {
        let (clock, ws) = store(10, 30);
        ws.observe("lat", None, 4000);
        ws.add("req", None, 5);
        // 20 minutes later: outside the 5 m fast span, inside the 1 h
        // slow span.
        clock.advance(Duration::from_mins(20));
        assert_eq!(
            ws.summary("lat", None, Duration::from_mins(1))
                .unwrap()
                .count,
            0
        );
        let hour = Duration::from_hours(1);
        assert_eq!(ws.summary("lat", None, hour).unwrap().count, 1);
        assert_eq!(ws.window_sum("req", None, hour), 5);
    }

    #[test]
    fn tenant_series_are_independent() {
        let (_clock, ws) = store(10, 30);
        ws.observe("lat", Some("acme"), 100);
        ws.observe("lat", Some("umbra"), 10_000);
        ws.observe("lat", None, 55);
        let w = Duration::from_mins(1);
        assert_eq!(ws.summary("lat", Some("acme"), w).unwrap().max, 100);
        assert_eq!(ws.summary("lat", Some("umbra"), w).unwrap().max, 10_000);
        assert_eq!(ws.summary("lat", None, w).unwrap().count, 1);
        assert_eq!(ws.tenant_labels(), vec!["acme", "umbra"]);
        ws.drop_tenant("acme");
        assert!(ws.summary("lat", Some("acme"), w).is_none());
        assert_eq!(ws.tenant_labels(), vec!["umbra"]);
    }

    #[test]
    fn tenant_dim_caps_cardinality_under_adversarial_ids() {
        let dim = TenantDim::new(4, Duration::from_mins(5));
        let now = Duration::from_secs(1);
        for known in ["a", "b", "c", "d"] {
            assert_eq!(&*dim.resolve(known, now).label, known);
        }
        // 10k fresh ids in a hot burst: all collapse into `other`, no
        // active tenant loses its slot.
        for i in 0..10_000 {
            let r = dim.resolve(&format!("attacker-{i}"), now);
            assert_eq!(&*r.label, TenantDim::OVERFLOW);
            assert!(r.evicted.is_none());
        }
        assert_eq!(dim.labels().len(), 4);
    }

    #[test]
    fn tenant_dim_recycles_idle_slots() {
        let dim = TenantDim::new(2, Duration::from_mins(1));
        dim.resolve("a", Duration::from_secs(0));
        dim.resolve("b", Duration::from_secs(50));
        // "a" has been idle 60 s; a new tenant takes its slot.
        let r = dim.resolve("c", Duration::from_mins(1));
        assert_eq!(&*r.label, "c");
        assert_eq!(r.evicted.as_deref(), Some("a"));
        // "b" (idle 10 s) is protected.
        let r = dim.resolve("d", Duration::from_mins(1));
        assert_eq!(&*r.label, TenantDim::OVERFLOW);
    }

    #[test]
    fn overflow_label_never_binds_a_slot() {
        let dim = TenantDim::new(2, Duration::ZERO);
        let r = dim.resolve("other", Duration::ZERO);
        assert_eq!(&*r.label, TenantDim::OVERFLOW);
        assert!(dim.labels().is_empty());
    }

    #[test]
    fn store_cardinality_stays_bounded_with_a_dim() {
        let (clock, ws) = store(10, 30);
        let dim = TenantDim::new(8, Duration::from_mins(10));
        for i in 0..10_000 {
            let label = dim.resolve(&format!("t{i}"), clock.now()).label;
            ws.observe("server.latency", Some(&label), 100);
            ws.add("server.requests", Some(&label), 1);
        }
        // 8 slots + `other`, two families each.
        assert_eq!(ws.series_count(), 2 * 9);
    }
}
