//! # grdf-obs — observability layer for the GRDF workspace
//!
//! Three pieces, all std-only and dependency-free:
//!
//! * [`MetricsRegistry`] — named counters / gauges / log₂ histograms with
//!   lock-free recording (registration pre-resolves an `Arc` handle).
//! * Spans — [`span`] opens a timed, taggable span inside the current
//!   request scope; spans nest into a tree and share the scope's
//!   [`TraceId`].
//! * [`TraceSink`] — a bounded ring buffer of completed traces, exported
//!   as JSON-lines or flamegraph collapsed stacks.
//!
//! ## Propagation model
//!
//! An [`Obs`] handle (registry + sink) is owned by the service (G-SACS, the
//! CLI, a bench harness). Entering a request calls [`Obs::scope`], which
//! installs a **thread-local context**; the instrumented crates below the
//! service (`grdf-query`, `grdf-owl`, `grdf-security`) call the free
//! functions [`span`], [`incr`], [`add`], [`observe`] — which resolve
//! through that context and are no-ops when none is installed. This keeps
//! the deep call graphs free of threading an observability parameter
//! through every signature.
//!
//! Scopes nest: if a scope is already active on the thread (e.g. the CLI
//! wraps service construction *and* a request in one trace), an inner
//! [`Obs::scope`] joins the ambient trace instead of starting a new one,
//! so every span shares one `TraceId`.
//!
//! ## Cost model
//!
//! With the sink disabled (capacity 0) a span is one thread-local borrow
//! and a branch — no clock read, no allocation — so instrumentation can
//! stay on permanently (the ≤ 5 % bench budget). Metrics always record;
//! hot paths should cache [`Counter`] handles instead of calling
//! [`MetricsRegistry::counter`] per event.

pub mod metrics;
pub mod sink;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, LogHistogram, MetricsRegistry, MetricsSnapshot,
    RunIdMismatch,
};
pub use sink::{SpanRecord, TraceRecord, TraceSink};

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// A request-scoped correlation id shared by every span, the audit-log
/// entry, and the decision trace of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id (no scope was active).
    pub const NONE: TraceId = TraceId(0);

    /// Mint a fresh process-unique id.
    pub fn fresh() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n);
        TraceId(if id == 0 { n } else { id })
    }

    /// Whether this is [`TraceId::NONE`].
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Parse the 16-hex-digit wire form produced by [`Display`](fmt::Display)
    /// (shorter strings are accepted; leading zeros implied). Returns `None`
    /// for non-hex input, overlong input, or the null id.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        (v != 0).then_some(TraceId(v))
    }
}

impl Default for TraceId {
    fn default() -> TraceId {
        TraceId::NONE
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

/// A cheaply cloneable bundle of one metrics registry and one trace sink.
#[derive(Debug, Clone)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    sink: Arc<TraceSink>,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// Metrics only; the trace sink is disabled.
    pub fn new() -> Obs {
        Obs {
            registry: Arc::new(MetricsRegistry::new()),
            sink: Arc::new(TraceSink::disabled()),
        }
    }

    /// Metrics plus a sink retaining the most recent `capacity` traces.
    pub fn with_tracing(capacity: usize) -> Obs {
        Obs {
            registry: Arc::new(MetricsRegistry::new()),
            sink: Arc::new(TraceSink::bounded(capacity)),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace sink.
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Whether completed traces are being retained.
    pub fn tracing_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Enter a request scope named `root` on this thread.
    ///
    /// If no scope is active, installs this `Obs` as the thread's context,
    /// mints a fresh [`TraceId`], and (when the sink is enabled) opens the
    /// root span; the completed trace is flushed to the sink when the
    /// returned guard drops. If a scope is already active, the guard joins
    /// it: it opens `root` as a child span and reports the ambient id.
    pub fn scope(&self, root: &'static str) -> Scope {
        self.scope_inner(root, None)
    }

    /// Like [`Obs::scope`], but when this call installs a fresh context it
    /// adopts `id` instead of minting one — the hook for propagating a
    /// caller-supplied trace id (e.g. an `X-Trace-Id` request header)
    /// through the whole request. A null `id` falls back to a fresh one,
    /// and joining an already-active scope keeps the ambient id.
    pub fn scope_with_id(&self, root: &'static str, id: TraceId) -> Scope {
        let id = (!id.is_none()).then_some(id);
        self.scope_inner(root, id)
    }

    fn scope_inner(&self, root: &'static str, wanted: Option<TraceId>) -> Scope {
        let installed = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.is_some() {
                return false;
            }
            let id = wanted.unwrap_or_else(TraceId::fresh);
            *ctx = Some(ActiveCtx {
                id,
                registry: Arc::clone(&self.registry),
                trace: self.sink.enabled().then(|| ActiveTrace {
                    started: Instant::now(),
                    done: Vec::new(),
                    open: Vec::new(),
                }),
            });
            true
        });
        let root_span = span(root);
        let id = current_trace_id().unwrap_or(TraceId::NONE);
        Scope {
            installed,
            id,
            sink: Arc::clone(&self.sink),
            root: Some(root_span),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

struct OpenSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    tags: Vec<(String, String)>,
}

struct ActiveTrace {
    started: Instant,
    done: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
}

struct ActiveCtx {
    id: TraceId,
    registry: Arc<MetricsRegistry>,
    trace: Option<ActiveTrace>,
}

thread_local! {
    static CTX: RefCell<Option<ActiveCtx>> = const { RefCell::new(None) };
}

/// RAII guard for a request scope (see [`Obs::scope`]).
pub struct Scope {
    installed: bool,
    id: TraceId,
    sink: Arc<TraceSink>,
    root: Option<Span>,
}

impl Scope {
    /// The trace id every span and audit entry of this scope shares.
    pub fn trace_id(&self) -> TraceId {
        self.id
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        // Close the root span before tearing the context down.
        self.root.take();
        if !self.installed {
            return;
        }
        let finished = CTX.with(|ctx| ctx.borrow_mut().take());
        if let Some(ActiveCtx {
            id,
            trace: Some(trace),
            ..
        }) = finished
        {
            if !trace.done.is_empty() {
                self.sink.push(TraceRecord {
                    id,
                    spans: trace.done,
                });
            }
        }
    }
}

/// The trace id of the active scope on this thread, if any.
pub fn current_trace_id() -> Option<TraceId> {
    CTX.with(|ctx| ctx.borrow().as_ref().map(|c| c.id))
}

/// Whether spans are being materialized on this thread right now.
pub fn tracing_active() -> bool {
    CTX.with(|ctx| ctx.borrow().as_ref().is_some_and(|c| c.trace.is_some()))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one timed span; records on drop.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    active: bool,
}

impl Span {
    /// Annotate the span (builder form).
    pub fn tag(self, key: &str, value: impl fmt::Display) -> Span {
        if self.active {
            tag_current(key, value);
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let Some(c) = ctx.as_mut() else { return };
            let Some(trace) = c.trace.as_mut() else {
                return;
            };
            let Some(open) = trace.open.pop() else { return };
            let path = trace
                .open
                .iter()
                .map(|s| s.name)
                .chain(std::iter::once(open.name))
                .collect::<Vec<_>>()
                .join(";");
            trace.done.push(SpanRecord {
                name: open.name,
                path,
                depth: trace.open.len(),
                start_ns: open.start_ns,
                dur_ns: open.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                tags: open.tags,
            });
        });
    }
}

/// Open a span named `name` in the active trace; a cheap no-op when no
/// scope is active or the sink is disabled.
pub fn span(name: &'static str) -> Span {
    let active = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let Some(c) = ctx.as_mut() else { return false };
        let Some(trace) = c.trace.as_mut() else {
            return false;
        };
        let now = Instant::now();
        trace.open.push(OpenSpan {
            name,
            start: now,
            start_ns: now
                .duration_since(trace.started)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
            tags: Vec::new(),
        });
        true
    });
    Span { active }
}

/// Annotate the innermost open span, if any.
pub fn tag_current(key: &str, value: impl fmt::Display) {
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some(open) = ctx
            .as_mut()
            .and_then(|c| c.trace.as_mut())
            .and_then(|t| t.open.last_mut())
        {
            open.tags.push((key.to_string(), value.to_string()));
        }
    });
}

// ---------------------------------------------------------------------------
// Context-routed metrics
// ---------------------------------------------------------------------------

fn with_registry(f: impl FnOnce(&MetricsRegistry)) {
    CTX.with(|ctx| {
        if let Some(c) = ctx.borrow().as_ref() {
            f(&c.registry);
        }
    });
}

/// Add 1 to the scoped counter `name` (no-op outside a scope).
pub fn incr(name: &str) {
    add(name, 1);
}

/// Add `n` to the scoped counter `name` (no-op outside a scope).
pub fn add(name: &str, n: u64) {
    if n > 0 {
        with_registry(|r| r.counter(name).add(n));
    }
}

/// Record `v` into the scoped histogram `name` (no-op outside a scope).
pub fn observe(name: &str, v: u64) {
    with_registry(|r| r.histogram(name).record(v));
}

/// Set the scoped gauge `name` (no-op outside a scope).
pub fn gauge_set(name: &str, v: i64) {
    with_registry(|r| r.gauge(name).set(v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a, b);
        assert!(!a.is_none());
        assert_eq!(format!("{}", TraceId(0xab)).len(), 16);
    }

    #[test]
    fn parse_hex_round_trips_the_wire_form() {
        let id = TraceId::fresh();
        assert_eq!(TraceId::parse_hex(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse_hex("ab"), Some(TraceId(0xab)));
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("0000000000000000"), None);
        assert_eq!(TraceId::parse_hex("00000000000000001"), None);
        assert_eq!(TraceId::parse_hex("not-hex"), None);
    }

    #[test]
    fn scope_with_id_adopts_the_caller_id() {
        let obs = Obs::with_tracing(8);
        let wanted = TraceId(0xdead_beef);
        {
            let scope = obs.scope_with_id("server.request", wanted);
            assert_eq!(scope.trace_id(), wanted);
        }
        let recs = obs.sink().records();
        assert_eq!(recs[0].id, wanted);
        // Null id falls back to a fresh one.
        let scope = obs.scope_with_id("server.request", TraceId::NONE);
        assert!(!scope.trace_id().is_none());
        drop(scope);
        // Joining an active scope keeps the ambient id, ignoring `wanted`.
        let outer = obs.scope("outer");
        let inner = obs.scope_with_id("inner", wanted);
        assert_eq!(inner.trace_id(), outer.trace_id());
    }

    #[test]
    fn spans_nest_into_a_tree_with_one_trace_id() {
        let obs = Obs::with_tracing(8);
        let id;
        {
            let scope = obs.scope("root");
            id = scope.trace_id();
            {
                let _a = span("alpha");
                let _b = span("beta").tag("k", 1);
            }
            let _c = span("gamma");
        }
        let recs = obs.sink().records();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.id, id);
        assert_eq!(rec.spans.len(), 4);
        let beta = &rec.spans_named("beta")[0];
        assert_eq!(beta.path, "root;alpha;beta");
        assert_eq!(beta.depth, 2);
        assert_eq!(beta.tag("k"), Some("1"));
        assert_eq!(rec.root().unwrap().name, "root");
    }

    #[test]
    fn nested_scopes_join_the_ambient_trace() {
        let obs = Obs::with_tracing(8);
        let outer_id;
        {
            let outer = obs.scope("cli");
            outer_id = outer.trace_id();
            let inner = obs.scope("request");
            assert_eq!(inner.trace_id(), outer_id);
            drop(inner);
        }
        let recs = obs.sink().records();
        assert_eq!(recs.len(), 1, "one merged trace, not two");
        assert_eq!(recs[0].id, outer_id);
        assert!(recs[0].spans_named("request")[0].path.starts_with("cli;"));
    }

    #[test]
    fn disabled_sink_skips_spans_but_not_metrics() {
        let obs = Obs::new();
        {
            let _scope = obs.scope("root");
            assert!(!tracing_active());
            let _s = span("x");
            incr("hits");
            add("rows", 41);
            observe("lat", 7);
            gauge_set("depth", -2);
        }
        assert!(obs.sink().is_empty());
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["hits"], 1);
        assert_eq!(snap.counters["rows"], 41);
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.gauges["depth"], -2);
    }

    #[test]
    fn metrics_are_noops_outside_a_scope() {
        let obs = Obs::new();
        incr("orphan");
        assert!(obs.registry().snapshot().counters.is_empty());
        assert_eq!(current_trace_id(), None);
        let _s = span("orphan"); // must not panic
    }

    #[test]
    fn scope_ids_differ_across_requests() {
        let obs = Obs::with_tracing(4);
        let a = {
            let s = obs.scope("r");
            s.trace_id()
        };
        let b = {
            let s = obs.scope("r");
            s.trace_id()
        };
        assert_ne!(a, b);
        assert_eq!(obs.sink().len(), 2);
    }
}
