//! # grdf-obs — observability layer for the GRDF workspace
//!
//! Std-only (plus the injectable `grdf-runtime::Clock`):
//!
//! * [`MetricsRegistry`] — named counters / gauges / log₂ histograms with
//!   lock-free recording (registration pre-resolves an `Arc` handle).
//! * [`WindowStore`] — time-bucketed rings behind every counter and
//!   histogram recorded through the free functions: `rate(name, window)`
//!   and windowed quantiles, optionally attributed to a
//!   bounded-cardinality tenant label ([`TenantDim`], [`set_tenant`]).
//! * Spans — [`span`] opens a timed, taggable span inside the current
//!   request scope; spans nest into a tree and share the scope's
//!   [`TraceId`].
//! * [`TraceSink`] — a bounded ring buffer of completed traces, exported
//!   as JSON-lines or flamegraph collapsed stacks.
//! * [`SloEngine`] — declarative objectives over the windowed store with
//!   multi-window burn-rate alerting ([`slo`]).
//! * [`Profiler`] — a signal-free sampling wall-clock profiler fed by
//!   span events ([`profile`]); Prometheus exposition lives in [`expo`].
//!
//! ## Propagation model
//!
//! An [`Obs`] handle (registry + sink) is owned by the service (G-SACS, the
//! CLI, a bench harness). Entering a request calls [`Obs::scope`], which
//! installs a **thread-local context**; the instrumented crates below the
//! service (`grdf-query`, `grdf-owl`, `grdf-security`) call the free
//! functions [`span`], [`incr`], [`add`], [`observe`] — which resolve
//! through that context and are no-ops when none is installed. This keeps
//! the deep call graphs free of threading an observability parameter
//! through every signature.
//!
//! Scopes nest: if a scope is already active on the thread (e.g. the CLI
//! wraps service construction *and* a request in one trace), an inner
//! [`Obs::scope`] joins the ambient trace instead of starting a new one,
//! so every span shares one `TraceId`.
//!
//! ## Cost model
//!
//! With the sink disabled (capacity 0) a span is one thread-local borrow
//! and a branch — no clock read, no allocation — so instrumentation can
//! stay on permanently (the ≤ 5 % bench budget). Metrics always record;
//! hot paths should cache [`Counter`] handles instead of calling
//! [`MetricsRegistry::counter`] per event.

pub mod expo;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod slo;
pub mod window;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, LogHistogram, MetricsRegistry, MetricsSnapshot,
    RunIdMismatch,
};
pub use profile::Profiler;
pub use sink::{SpanRecord, TraceRecord, TraceSink};
pub use slo::{statuses_json, Objective, SloEngine, SloState, SloStatus};
pub use window::{TenantDim, TenantResolution, WindowConfig, WindowStore, WindowedSummary};

use grdf_runtime::Clock;
use std::time::Duration;

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// A request-scoped correlation id shared by every span, the audit-log
/// entry, and the decision trace of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id (no scope was active).
    pub const NONE: TraceId = TraceId(0);

    /// Mint a fresh process-unique id.
    pub fn fresh() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n);
        TraceId(if id == 0 { n } else { id })
    }

    /// Whether this is [`TraceId::NONE`].
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }

    /// Parse the 16-hex-digit wire form produced by [`Display`](fmt::Display)
    /// (shorter strings are accepted; leading zeros implied). Returns `None`
    /// for non-hex input, overlong input, or the null id.
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        let v = u64::from_str_radix(s, 16).ok()?;
        (v != 0).then_some(TraceId(v))
    }
}

impl Default for TraceId {
    fn default() -> TraceId {
        TraceId::NONE
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

/// A cheaply cloneable bundle of one metrics registry, one trace sink,
/// and (optionally) a windowed-metric store and sampling profiler.
#[derive(Debug, Clone)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    sink: Arc<TraceSink>,
    windows: Option<Arc<WindowStore>>,
    profiler: Option<Arc<Profiler>>,
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl Obs {
    /// Metrics only; the trace sink is disabled.
    pub fn new() -> Obs {
        Obs {
            registry: Arc::new(MetricsRegistry::new()),
            sink: Arc::new(TraceSink::disabled()),
            windows: None,
            profiler: None,
        }
    }

    /// Metrics plus a sink retaining the most recent `capacity` traces.
    pub fn with_tracing(capacity: usize) -> Obs {
        Obs {
            sink: Arc::new(TraceSink::bounded(capacity)),
            ..Obs::new()
        }
    }

    /// Attach a windowed-metric store reading `clock`: every counter and
    /// histogram recorded through the free functions gains a time axis
    /// (plus a per-tenant series while [`set_tenant`] is in effect).
    #[must_use]
    pub fn with_windows(mut self, cfg: WindowConfig, clock: Arc<dyn Clock>) -> Obs {
        self.windows = Some(Arc::new(WindowStore::new(cfg, clock)));
        self
    }

    /// Attach a continuously running sampling profiler (see
    /// [`profile`]).
    #[must_use]
    pub fn with_profiler(mut self, interval: Duration, clock: Arc<dyn Clock>) -> Obs {
        self.profiler = Some(Arc::new(Profiler::new(clock, interval)));
        self
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace sink.
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// The windowed-metric store, when attached.
    pub fn windows(&self) -> Option<&Arc<WindowStore>> {
        self.windows.as_ref()
    }

    /// The sampling profiler, when attached.
    pub fn profiler(&self) -> Option<&Arc<Profiler>> {
        self.profiler.as_ref()
    }

    /// Whether completed traces are being retained.
    pub fn tracing_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Enter a request scope named `root` on this thread.
    ///
    /// If no scope is active, installs this `Obs` as the thread's context,
    /// mints a fresh [`TraceId`], and (when the sink is enabled) opens the
    /// root span; the completed trace is flushed to the sink when the
    /// returned guard drops. If a scope is already active, the guard joins
    /// it: it opens `root` as a child span and reports the ambient id.
    pub fn scope(&self, root: &'static str) -> Scope {
        self.scope_inner(root, None)
    }

    /// Like [`Obs::scope`], but when this call installs a fresh context it
    /// adopts `id` instead of minting one — the hook for propagating a
    /// caller-supplied trace id (e.g. an `X-Trace-Id` request header)
    /// through the whole request. A null `id` falls back to a fresh one,
    /// and joining an already-active scope keeps the ambient id.
    pub fn scope_with_id(&self, root: &'static str, id: TraceId) -> Scope {
        let id = (!id.is_none()).then_some(id);
        self.scope_inner(root, id)
    }

    fn scope_inner(&self, root: &'static str, wanted: Option<TraceId>) -> Scope {
        let installed = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.is_some() {
                return false;
            }
            let id = wanted.unwrap_or_else(TraceId::fresh);
            // The span stack is maintained for the sink *or* the
            // profiler (which samples it); completed SpanRecords are
            // only materialized when the sink will keep them.
            let record_done = self.sink.enabled();
            *ctx = Some(ActiveCtx {
                id,
                registry: Arc::clone(&self.registry),
                windows: self.windows.clone(),
                profiler: self.profiler.clone(),
                tenant: None,
                trace: (record_done || self.profiler.is_some()).then(|| ActiveTrace {
                    started: Instant::now(),
                    record_done,
                    done: Vec::new(),
                    open: Vec::new(),
                }),
            });
            true
        });
        let root_span = span(root);
        let id = current_trace_id().unwrap_or(TraceId::NONE);
        Scope {
            installed,
            id,
            sink: Arc::clone(&self.sink),
            root: Some(root_span),
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

struct OpenSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    tags: Vec<(String, String)>,
}

struct ActiveTrace {
    started: Instant,
    /// Whether closed spans become [`SpanRecord`]s for the sink (false
    /// when the stack is kept only for the profiler).
    record_done: bool,
    done: Vec<SpanRecord>,
    open: Vec<OpenSpan>,
}

struct ActiveCtx {
    id: TraceId,
    registry: Arc<MetricsRegistry>,
    windows: Option<Arc<WindowStore>>,
    profiler: Option<Arc<Profiler>>,
    /// Bounded tenant label this request's metrics are attributed to
    /// (installed by the server via [`set_tenant`]).
    tenant: Option<Arc<str>>,
    trace: Option<ActiveTrace>,
}

thread_local! {
    static CTX: RefCell<Option<ActiveCtx>> = const { RefCell::new(None) };
}

/// RAII guard for a request scope (see [`Obs::scope`]).
pub struct Scope {
    installed: bool,
    id: TraceId,
    sink: Arc<TraceSink>,
    root: Option<Span>,
}

impl Scope {
    /// The trace id every span and audit entry of this scope shares.
    pub fn trace_id(&self) -> TraceId {
        self.id
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        // Close the root span before tearing the context down.
        self.root.take();
        if !self.installed {
            return;
        }
        let finished = CTX.with(|ctx| ctx.borrow_mut().take());
        if let Some(ActiveCtx {
            id,
            trace: Some(trace),
            ..
        }) = finished
        {
            if !trace.done.is_empty() {
                self.sink.push(TraceRecord {
                    id,
                    spans: trace.done,
                });
            }
        }
    }
}

/// The trace id of the active scope on this thread, if any.
pub fn current_trace_id() -> Option<TraceId> {
    CTX.with(|ctx| ctx.borrow().as_ref().map(|c| c.id))
}

/// Whether spans are being materialized on this thread right now.
pub fn tracing_active() -> bool {
    CTX.with(|ctx| ctx.borrow().as_ref().is_some_and(|c| c.trace.is_some()))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one timed span; records on drop.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    active: bool,
}

impl Span {
    /// Annotate the span (builder form).
    pub fn tag(self, key: &str, value: impl fmt::Display) -> Span {
        if self.active {
            tag_current(key, value);
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let Some(c) = ctx.as_mut() else { return };
            let Some(trace) = c.trace.as_mut() else {
                return;
            };
            let Some(open) = trace.open.pop() else { return };
            if trace.record_done {
                let path = trace
                    .open
                    .iter()
                    .map(|s| s.name)
                    .chain(std::iter::once(open.name))
                    .collect::<Vec<_>>()
                    .join(";");
                trace.done.push(SpanRecord {
                    name: open.name,
                    path,
                    depth: trace.open.len(),
                    start_ns: open.start_ns,
                    dur_ns: open.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    tags: open.tags,
                });
            }
            sample_profiler(c);
        });
    }
}

/// Give the profiler (if any) a chance to sample the thread's current
/// open-span stack. Called on every span boundary; cheap no-op unless a
/// new sampling tick began (see [`profile`]).
fn sample_profiler(c: &ActiveCtx) {
    let (Some(profiler), Some(trace)) = (&c.profiler, &c.trace) else {
        return;
    };
    if trace.open.is_empty() {
        return;
    }
    let stack: Vec<&'static str> = trace.open.iter().map(|s| s.name).collect();
    profiler.on_span_event(&stack);
}

/// Open a span named `name` in the active trace; a cheap no-op when no
/// scope is active or both the sink and profiler are disabled.
pub fn span(name: &'static str) -> Span {
    let active = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let Some(c) = ctx.as_mut() else { return false };
        let Some(trace) = c.trace.as_mut() else {
            return false;
        };
        let now = Instant::now();
        trace.open.push(OpenSpan {
            name,
            start: now,
            start_ns: now
                .duration_since(trace.started)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
            tags: Vec::new(),
        });
        sample_profiler(c);
        true
    });
    Span { active }
}

/// Annotate the innermost open span, if any.
pub fn tag_current(key: &str, value: impl fmt::Display) {
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if let Some(open) = ctx
            .as_mut()
            .and_then(|c| c.trace.as_mut())
            .and_then(|t| t.open.last_mut())
        {
            open.tags.push((key.to_string(), value.to_string()));
        }
    });
}

// ---------------------------------------------------------------------------
// Context-routed metrics
// ---------------------------------------------------------------------------

fn with_ctx(f: impl FnOnce(&ActiveCtx)) {
    CTX.with(|ctx| {
        if let Some(c) = ctx.borrow().as_ref() {
            f(c);
        }
    });
}

/// Attribute the rest of this scope's metrics to a bounded tenant label
/// (resolve raw ids through a [`TenantDim`] first — never pass raw
/// client input). No-op outside a scope; cleared when the scope drops.
pub fn set_tenant(label: Arc<str>) {
    CTX.with(|ctx| {
        if let Some(c) = ctx.borrow_mut().as_mut() {
            c.tenant = Some(label);
        }
    });
}

/// The tenant label installed on the active scope, if any.
pub fn current_tenant() -> Option<Arc<str>> {
    CTX.with(|ctx| ctx.borrow().as_ref().and_then(|c| c.tenant.clone()))
}

/// Add 1 to the scoped counter `name` (no-op outside a scope).
pub fn incr(name: &str) {
    add(name, 1);
}

/// Add `n` to the scoped counter `name` (no-op outside a scope). Also
/// tees into the windowed store (global + tenant series) when one is
/// attached.
pub fn add(name: &str, n: u64) {
    if n > 0 {
        with_ctx(|c| {
            c.registry.counter(name).add(n);
            win_add_in(c, name, n);
        });
    }
}

/// Record `v` into the scoped histogram `name` (no-op outside a scope),
/// teeing into the windowed store like [`add`].
pub fn observe(name: &str, v: u64) {
    with_ctx(|c| {
        c.registry.histogram(name).record(v);
        win_observe_in(c, name, v);
    });
}

/// Set the scoped gauge `name` (no-op outside a scope). Gauges are
/// point-in-time readings and are not windowed.
pub fn gauge_set(name: &str, v: i64) {
    with_ctx(|c| c.registry.gauge(name).set(v));
}

/// Windowed-store-only counter tee, for hot paths that already hold a
/// pre-resolved registry [`Counter`] handle (e.g. G-SACS `HotCounters`)
/// and would otherwise double-count through [`add`].
pub fn win_add(name: &str, n: u64) {
    if n > 0 {
        with_ctx(|c| win_add_in(c, name, n));
    }
}

/// Windowed-store-only histogram tee (see [`win_add`]).
pub fn win_observe(name: &str, v: u64) {
    with_ctx(|c| win_observe_in(c, name, v));
}

fn win_add_in(c: &ActiveCtx, name: &str, n: u64) {
    if let Some(ws) = &c.windows {
        ws.add(name, None, n);
        if let Some(t) = &c.tenant {
            ws.add(name, Some(t), n);
        }
    }
}

fn win_observe_in(c: &ActiveCtx, name: &str, v: u64) {
    if let Some(ws) = &c.windows {
        ws.observe(name, None, v);
        if let Some(t) = &c.tenant {
            ws.observe(name, Some(t), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a, b);
        assert!(!a.is_none());
        assert_eq!(format!("{}", TraceId(0xab)).len(), 16);
    }

    #[test]
    fn parse_hex_round_trips_the_wire_form() {
        let id = TraceId::fresh();
        assert_eq!(TraceId::parse_hex(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse_hex("ab"), Some(TraceId(0xab)));
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("0000000000000000"), None);
        assert_eq!(TraceId::parse_hex("00000000000000001"), None);
        assert_eq!(TraceId::parse_hex("not-hex"), None);
    }

    #[test]
    fn scope_with_id_adopts_the_caller_id() {
        let obs = Obs::with_tracing(8);
        let wanted = TraceId(0xdead_beef);
        {
            let scope = obs.scope_with_id("server.request", wanted);
            assert_eq!(scope.trace_id(), wanted);
        }
        let recs = obs.sink().records();
        assert_eq!(recs[0].id, wanted);
        // Null id falls back to a fresh one.
        let scope = obs.scope_with_id("server.request", TraceId::NONE);
        assert!(!scope.trace_id().is_none());
        drop(scope);
        // Joining an active scope keeps the ambient id, ignoring `wanted`.
        let outer = obs.scope("outer");
        let inner = obs.scope_with_id("inner", wanted);
        assert_eq!(inner.trace_id(), outer.trace_id());
    }

    #[test]
    fn spans_nest_into_a_tree_with_one_trace_id() {
        let obs = Obs::with_tracing(8);
        let id;
        {
            let scope = obs.scope("root");
            id = scope.trace_id();
            {
                let _a = span("alpha");
                let _b = span("beta").tag("k", 1);
            }
            let _c = span("gamma");
        }
        let recs = obs.sink().records();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.id, id);
        assert_eq!(rec.spans.len(), 4);
        let beta = &rec.spans_named("beta")[0];
        assert_eq!(beta.path, "root;alpha;beta");
        assert_eq!(beta.depth, 2);
        assert_eq!(beta.tag("k"), Some("1"));
        assert_eq!(rec.root().unwrap().name, "root");
    }

    #[test]
    fn nested_scopes_join_the_ambient_trace() {
        let obs = Obs::with_tracing(8);
        let outer_id;
        {
            let outer = obs.scope("cli");
            outer_id = outer.trace_id();
            let inner = obs.scope("request");
            assert_eq!(inner.trace_id(), outer_id);
            drop(inner);
        }
        let recs = obs.sink().records();
        assert_eq!(recs.len(), 1, "one merged trace, not two");
        assert_eq!(recs[0].id, outer_id);
        assert!(recs[0].spans_named("request")[0].path.starts_with("cli;"));
    }

    #[test]
    fn disabled_sink_skips_spans_but_not_metrics() {
        let obs = Obs::new();
        {
            let _scope = obs.scope("root");
            assert!(!tracing_active());
            let _s = span("x");
            incr("hits");
            add("rows", 41);
            observe("lat", 7);
            gauge_set("depth", -2);
        }
        assert!(obs.sink().is_empty());
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["hits"], 1);
        assert_eq!(snap.counters["rows"], 41);
        assert_eq!(snap.histograms["lat"].count, 1);
        assert_eq!(snap.gauges["depth"], -2);
    }

    #[test]
    fn metrics_are_noops_outside_a_scope() {
        let obs = Obs::new();
        incr("orphan");
        assert!(obs.registry().snapshot().counters.is_empty());
        assert_eq!(current_trace_id(), None);
        let _s = span("orphan"); // must not panic
    }

    #[test]
    fn windows_tee_with_tenant_attribution() {
        use grdf_runtime::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new().with_windows(WindowConfig::default(), clock as Arc<dyn Clock>);
        {
            let _scope = obs.scope("req");
            incr("hits"); // before attribution: global series only
            set_tenant(Arc::from("acme"));
            assert_eq!(current_tenant().as_deref(), Some("acme"));
            incr("hits");
            observe("lat", 500);
        }
        assert_eq!(current_tenant(), None, "tenant dies with the scope");
        let ws = obs.windows().unwrap();
        let w = Duration::from_mins(1);
        assert_eq!(ws.window_sum("hits", None, w), 2);
        assert_eq!(ws.window_sum("hits", Some("acme"), w), 1);
        assert_eq!(ws.summary("lat", Some("acme"), w).unwrap().count, 1);
        // The lifetime registry saw everything exactly once.
        assert_eq!(obs.registry().snapshot().counters["hits"], 2);
    }

    #[test]
    fn win_tee_skips_the_registry() {
        use grdf_runtime::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new().with_windows(WindowConfig::default(), clock as Arc<dyn Clock>);
        {
            let _scope = obs.scope("req");
            win_add("hot.counter", 3);
            win_observe("hot.lat", 42);
        }
        let ws = obs.windows().unwrap();
        let w = Duration::from_mins(1);
        assert_eq!(ws.window_sum("hot.counter", None, w), 3);
        assert_eq!(ws.summary("hot.lat", None, w).unwrap().count, 1);
        assert!(obs.registry().snapshot().counters.is_empty());
    }

    /// Satellite pin (PR 7): window state never leaks into
    /// [`MetricsSnapshot`] — `metrics-snapshot --diff` diffs lifetime
    /// aggregates only, so two same-run snapshots whose window rings
    /// differ still delta cleanly (no spurious families, no cross-run
    /// shape mismatch), and the JSON round-trip is unaffected.
    #[test]
    fn snapshot_diffing_ignores_window_state() {
        use grdf_runtime::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new().with_windows(WindowConfig::default(), Arc::clone(&clock) as _);
        {
            let _scope = obs.scope("req");
            set_tenant(Arc::from("acme"));
            incr("server.requests");
            observe("server.latency", 777);
        }
        let before = obs.registry().snapshot().with_run_id(1);
        // Mutate ONLY window state: time passes, per-tenant series roll
        // over, one window-only tee fires.
        clock.advance(Duration::from_hours(1));
        {
            let _scope = obs.scope("req");
            set_tenant(Arc::from("umbra"));
            win_add("server.requests", 50);
            win_observe("server.latency", 9999);
        }
        let after = obs.registry().snapshot().with_run_id(1);
        // No snapshot key mentions a tenant or a window series.
        for key in after.counters.keys().chain(after.histograms.keys()) {
            assert!(!key.contains('\u{1f}'), "window key leaked: {key}");
            assert!(!key.contains("acme") && !key.contains("umbra"));
        }
        let delta = after.try_delta(&before).unwrap();
        assert!(delta.counters.values().all(|&v| v == 0), "{delta:?}");
        assert!(delta.histograms.values().all(|h| h.count == 0));
        // And the line-oriented JSON round-trip still holds exactly.
        assert_eq!(MetricsSnapshot::from_json(&after.to_json()).unwrap(), after);
    }

    #[test]
    fn profiler_samples_without_a_sink() {
        use grdf_runtime::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new().with_profiler(
            Duration::from_millis(10),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        {
            let _scope = obs.scope("root"); // tick 0: never sampled
            clock.advance(Duration::from_millis(10));
            let _child = span("child"); // tick 1: samples root;child
        }
        let p = obs.profiler().unwrap();
        assert_eq!(p.samples(), 1);
        assert!(p.collapsed().contains("root;child 10000"));
        // No sink: the span stack fed the profiler but no trace records
        // were materialized.
        assert!(obs.sink().is_empty());
    }

    #[test]
    fn scope_ids_differ_across_requests() {
        let obs = Obs::with_tracing(4);
        let a = {
            let s = obs.scope("r");
            s.trace_id()
        };
        let b = {
            let s = obs.scope("r");
            s.trace_id()
        };
        assert_ne!(a, b);
        assert_eq!(obs.sink().len(), 2);
    }
}
