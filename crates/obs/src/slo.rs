//! Declarative service-level objectives evaluated on the windowed
//! metric store, with multi-window burn-rate alerting.
//!
//! An [`Objective`] is parsed from a compact spec string:
//!
//! ```text
//! p99(server.latency) < 10ms over 5m
//! errors: rate(server.errors) / rate(server.requests) < 0.1% over 5m
//! ```
//!
//! The window named in the spec is the **fast** window; each objective is
//! also evaluated over a **slow** window `SLOW_FACTOR` (12×) longer —
//! the Google SRE multi-window pattern: the alert fires only when *both*
//! windows exceed the target (burn rate > 1), so a brief blip cannot
//! page, and it clears as soon as the fast window recovers, so a
//! long-resolved incident does not keep paging for the rest of the slow
//! window. "Burn rate" is measured/target: 1.0 means exactly consuming
//! the budget, 2.0 means twice as fast as allowed.
//!
//! Both windows are clamped to the store's slow-ring retention
//! ([`WindowConfig::slow_span`](crate::window::WindowConfig::slow_span)):
//! an objective declared `over 1h` against a store retaining one hour
//! gets a 1 h slow window, not a nominal 12 h one the rings could not
//! answer. The effective slow window is reported in
//! [`SloStatus::window_slow`].
//!
//! Evaluation is read-only over [`WindowStore`] rings (a few hundred
//! relaxed loads per objective), cheap enough to run on every `/health`
//! hit and on the server's degraded-admission check.

use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::escape_json;
use crate::window::WindowStore;

/// Fast→slow window multiplier (5 m → 1 h with the default config).
pub const SLOW_FACTOR: u32 = 12;

/// What an objective measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// `pXX(metric) < threshold` — a windowed quantile of a histogram
    /// series, thresholds in the histogram's units (µs for latencies).
    Quantile {
        /// Histogram series name.
        metric: String,
        /// Quantile in `(0, 1)`.
        q: f64,
        /// Threshold in the series' units.
        threshold: u64,
    },
    /// `rate(num) / rate(den) < threshold` — a ratio of windowed counter
    /// rates (e.g. error rate), threshold as a fraction.
    Ratio {
        /// Numerator counter series.
        numerator: String,
        /// Denominator counter series.
        denominator: String,
        /// Threshold fraction in `(0, 1]`.
        threshold: f64,
    },
}

/// One declared objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Short name (from a `name:` prefix, or derived from the spec).
    pub name: String,
    /// What is measured and the target.
    pub kind: SloKind,
    /// The fast evaluation window.
    pub window: Duration,
    /// The original spec text (kept verbatim for display).
    pub spec: String,
}

/// Alert state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// The fast window holds no samples; nothing to judge.
    NoData,
    /// Within budget on at least one window.
    Ok,
    /// Burn rate exceeds 1 on both the fast and slow windows.
    Burning,
}

impl SloState {
    /// Stable lowercase wire form (`/health` JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::NoData => "no_data",
            SloState::Ok => "ok",
            SloState::Burning => "burning",
        }
    }
}

impl std::fmt::Display for SloState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Point-in-time evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// The spec text.
    pub objective: String,
    /// The fast window.
    pub window: Duration,
    /// The effective slow window: `window × SLOW_FACTOR`, clamped to the
    /// store's slow-ring retention ([`WindowConfig::slow_span`]) — the
    /// rings cannot answer for more history than they retain, so
    /// `burn_slow` is honest about the span it was measured over.
    ///
    /// [`WindowConfig::slow_span`]: crate::window::WindowConfig::slow_span
    pub window_slow: Duration,
    /// Measured value on the fast window (µs for quantile objectives,
    /// fraction for ratio objectives); 0 when no data.
    pub current: f64,
    /// measured/target on the fast window.
    pub burn_fast: f64,
    /// measured/target on the slow window.
    pub burn_slow: f64,
    /// Multi-window alert state.
    pub state: SloState,
}

impl SloStatus {
    /// One stable-order JSON object (embedded in `/health`'s `slo`
    /// array).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"objective\": \"{}\", \"window_secs\": {}, \
             \"window_slow_secs\": {}, \
             \"current\": {:.6}, \"burn_fast\": {:.4}, \"burn_slow\": {:.4}, \
             \"state\": \"{}\"}}",
            escape_json(&self.name),
            escape_json(&self.objective),
            self.window.as_secs(),
            self.window_slow.as_secs(),
            self.current,
            self.burn_fast,
            self.burn_slow,
            self.state
        )
    }

    /// One aligned human-readable line (for `health` text output).
    pub fn render_line(&self) -> String {
        format!(
            "{:<12} {:<44} burn {:.2}/{:.2} [{}]",
            self.name, self.objective, self.burn_fast, self.burn_slow, self.state
        )
    }
}

/// Render a status list as a JSON array (the `/health` `slo` section).
pub fn statuses_json(statuses: &[SloStatus]) -> String {
    let mut out = String::from("[");
    for (i, s) in statuses.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

impl Objective {
    /// Parse a spec: `[name:] p99(metric) < 10ms over 5m` or
    /// `[name:] rate(a) / rate(b) < 0.1% over 5m`. Durations accept
    /// `us`/`ms`/`s`; windows accept `s`/`m`/`h`.
    pub fn parse(spec: &str) -> Result<Objective, String> {
        let spec = spec.trim();
        let (name, body) = match spec.split_once(':') {
            Some((n, rest)) if !n.contains('(') && !n.trim().is_empty() => {
                (Some(n.trim().to_string()), rest.trim())
            }
            _ => (None, spec),
        };
        let (cond, window) = body
            .rsplit_once(" over ")
            .ok_or_else(|| format!("missing ' over <window>' in SLO spec: {spec}"))?;
        let window = parse_window(window.trim())?;
        let (lhs, rhs) = cond
            .split_once('<')
            .ok_or_else(|| format!("missing '<' in SLO spec: {spec}"))?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        let kind = if let Some(rest) = lhs.strip_prefix("rate(") {
            let (num, den_part) = rest
                .split_once(')')
                .ok_or_else(|| format!("unclosed rate() in SLO spec: {spec}"))?;
            let den = den_part
                .trim()
                .strip_prefix('/')
                .map(str::trim)
                .and_then(|d| d.strip_prefix("rate("))
                .and_then(|d| d.strip_suffix(')'))
                .ok_or_else(|| format!("expected rate(a) / rate(b) in SLO spec: {spec}"))?;
            SloKind::Ratio {
                numerator: num.trim().to_string(),
                denominator: den.trim().to_string(),
                threshold: parse_fraction(rhs)?,
            }
        } else if let Some(rest) = lhs.strip_prefix('p') {
            let (digits, metric) = rest
                .split_once('(')
                .ok_or_else(|| format!("expected pNN(metric) in SLO spec: {spec}"))?;
            let metric = metric
                .strip_suffix(')')
                .ok_or_else(|| format!("unclosed pNN() in SLO spec: {spec}"))?;
            let raw: u32 = digits
                .parse()
                .map_err(|_| format!("bad quantile p{digits} in SLO spec: {spec}"))?;
            // The digits are read as a decimal fraction (p99 → 0.99,
            // p999 → 0.999). A trailing zero silently shifts meaning —
            // p100 would parse as 0.1 and p990 as 0.99 — so such specs
            // are rejected rather than reinterpreted.
            if digits.ends_with('0') {
                return Err(format!(
                    "ambiguous quantile p{digits} in SLO spec (trailing zero: \
                     write p5 for the median, p99/p999 for tail quantiles): {spec}"
                ));
            }
            let q = f64::from(raw) / 10f64.powi(digits.len() as i32);
            if !(0.0..1.0).contains(&q) || raw == 0 {
                return Err(format!(
                    "quantile p{digits} out of range in SLO spec: {spec}"
                ));
            }
            SloKind::Quantile {
                metric: metric.trim().to_string(),
                q,
                threshold: parse_value_us(rhs)?,
            }
        } else {
            return Err(format!(
                "expected pNN(metric) or rate(a)/rate(b) in SLO spec: {spec}"
            ));
        };
        let name = name.unwrap_or_else(|| match &kind {
            SloKind::Quantile { metric, .. } => metric.clone(),
            SloKind::Ratio { numerator, .. } => numerator.clone(),
        });
        Ok(Objective {
            name,
            kind,
            window,
            spec: body.to_string(),
        })
    }
}

/// `5m`, `1h`, `30s` → a window duration.
fn parse_window(s: &str) -> Result<Duration, String> {
    let (num, unit) = split_unit(s);
    let n: f64 = num
        .parse()
        .map_err(|_| format!("bad window duration: {s}"))?;
    let secs = match unit {
        "s" => n,
        "m" => n * 60.0,
        "h" => n * 3600.0,
        _ => return Err(format!("bad window unit (want s/m/h): {s}")),
    };
    if secs <= 0.0 {
        return Err(format!("window must be positive: {s}"));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// `10ms`, `250us`, `1s`, or a bare number (already in series units) →
/// integer µs-scale threshold.
fn parse_value_us(s: &str) -> Result<u64, String> {
    let (num, unit) = split_unit(s);
    let n: f64 = num.parse().map_err(|_| format!("bad threshold: {s}"))?;
    let v = match unit {
        "us" | "µs" | "" => n,
        "ms" => n * 1_000.0,
        "s" => n * 1_000_000.0,
        _ => return Err(format!("bad threshold unit (want us/ms/s): {s}")),
    };
    if v <= 0.0 {
        return Err(format!("threshold must be positive: {s}"));
    }
    Ok(v.round() as u64)
}

/// `0.1%` or `0.001` → a fraction.
fn parse_fraction(s: &str) -> Result<f64, String> {
    let (raw, pct) = match s.strip_suffix('%') {
        Some(r) => (r, true),
        None => (s, false),
    };
    let n: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("bad ratio threshold: {s}"))?;
    let v = if pct { n / 100.0 } else { n };
    if v <= 0.0 || v > 1.0 {
        return Err(format!("ratio threshold out of (0, 1]: {s}"));
    }
    Ok(v)
}

fn split_unit(s: &str) -> (&str, &str) {
    let cut = s
        .find(|c: char| c.is_alphabetic() || c == 'µ')
        .unwrap_or(s.len());
    (s[..cut].trim(), s[cut..].trim())
}

/// Evaluates a set of objectives against a [`WindowStore`].
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    objectives: Vec<Objective>,
}

impl SloEngine {
    /// An engine over `objectives`.
    pub fn new(objectives: Vec<Objective>) -> SloEngine {
        SloEngine { objectives }
    }

    /// The declared objectives.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Measured value for `kind` over `window`; `None` when the window
    /// holds no samples (quantile) or the denominator never ticked
    /// (ratio).
    fn measure(kind: &SloKind, windows: &WindowStore, window: Duration) -> Option<f64> {
        match kind {
            SloKind::Quantile { metric, q, .. } => {
                let s = windows.summary(metric, None, window)?;
                (s.count > 0).then(|| s.quantile(*q) as f64)
            }
            SloKind::Ratio {
                numerator,
                denominator,
                ..
            } => {
                let den = windows.window_sum(denominator, None, window);
                (den > 0).then(|| windows.window_sum(numerator, None, window) as f64 / den as f64)
            }
        }
    }

    fn target(kind: &SloKind) -> f64 {
        match kind {
            SloKind::Quantile { threshold, .. } => *threshold as f64,
            SloKind::Ratio { threshold, .. } => *threshold,
        }
    }

    /// Evaluate every objective now (reads the store's clock through the
    /// windowed queries).
    pub fn evaluate(&self, windows: &WindowStore) -> Vec<SloStatus> {
        // The rings retain at most `slow_span` of history; a nominal
        // window beyond that would silently evaluate over whatever the
        // ring still holds, so clamp explicitly and surface the
        // effective slow window in the status.
        let retention = windows.config().slow_span();
        self.objectives
            .iter()
            .map(|o| {
                let target = SloEngine::target(&o.kind);
                let slow_window = (o.window * SLOW_FACTOR).min(retention);
                let fast = SloEngine::measure(&o.kind, windows, o.window.min(retention));
                let slow = SloEngine::measure(&o.kind, windows, slow_window);
                let burn_fast = fast.map_or(0.0, |v| v / target);
                let burn_slow = slow.map_or(0.0, |v| v / target);
                let state = match fast {
                    None => SloState::NoData,
                    Some(_) if burn_fast > 1.0 && burn_slow > 1.0 => SloState::Burning,
                    Some(_) => SloState::Ok,
                };
                SloStatus {
                    name: o.name.clone(),
                    objective: o.spec.clone(),
                    window: o.window,
                    window_slow: slow_window,
                    current: fast.unwrap_or(0.0),
                    burn_fast,
                    burn_slow,
                    state,
                }
            })
            .collect()
    }

    /// Whether any objective is currently burning.
    pub fn any_burning(&self, windows: &WindowStore) -> bool {
        self.evaluate(windows)
            .iter()
            .any(|s| s.state == SloState::Burning)
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self, windows: &WindowStore) -> String {
        let mut out = String::new();
        for s in self.evaluate(windows) {
            let _ = writeln!(out, "{}", s.render_line());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowConfig;
    use grdf_runtime::{Clock, ManualClock};
    use std::sync::Arc;

    fn setup() -> (Arc<ManualClock>, WindowStore) {
        let clock = Arc::new(ManualClock::new());
        let cfg = WindowConfig {
            width: Duration::from_secs(10),
            slots: 30,
            slow_factor: 12,
        };
        (
            Arc::clone(&clock),
            WindowStore::new(cfg, clock as Arc<dyn Clock>),
        )
    }

    #[test]
    fn parses_quantile_objectives() {
        let o = Objective::parse("p99(server.latency) < 10ms over 5m").unwrap();
        assert_eq!(o.name, "server.latency");
        assert_eq!(o.window, Duration::from_mins(5));
        assert_eq!(
            o.kind,
            SloKind::Quantile {
                metric: "server.latency".to_string(),
                q: 0.99,
                threshold: 10_000,
            }
        );
        let o = Objective::parse("lat: p75(x) < 250us over 30s").unwrap();
        assert_eq!(o.name, "lat");
        assert_eq!(
            o.kind,
            SloKind::Quantile {
                metric: "x".to_string(),
                q: 0.75,
                threshold: 250,
            }
        );
    }

    #[test]
    fn parses_ratio_objectives() {
        let o =
            Objective::parse("errors: rate(server.errors) / rate(server.requests) < 0.1% over 5m")
                .unwrap();
        assert_eq!(o.name, "errors");
        assert_eq!(
            o.kind,
            SloKind::Ratio {
                numerator: "server.errors".to_string(),
                denominator: "server.requests".to_string(),
                threshold: 0.001,
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "p99(x) < 10ms",                  // no window
            "p99(x < 10ms over 5m",           // unclosed
            "p0(x) < 10ms over 5m",           // zero quantile
            "p100(x) < 10ms over 5m",         // would silently mean p1
            "p990(x) < 10ms over 5m",         // trailing zero (write p99)
            "p50(x) < 10ms over 5m",          // trailing zero (write p5)
            "rate(a) < 1% over 5m",           // missing denominator
            "p99(x) < -3ms over 5m",          // negative threshold
            "p99(x) < 10ms over 5d",          // bad window unit
            "rate(a)/rate(b) < 150% over 5m", // ratio > 1
            "latency over 5m",                // no comparison
        ] {
            assert!(Objective::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn burn_fires_on_both_windows_and_clears_on_fast_recovery() {
        let (clock, ws) = setup();
        let eng = SloEngine::new(vec![Objective::parse(
            "lat: p99(server.latency) < 10ms over 1m",
        )
        .unwrap()]);
        // Healthy traffic: p99 ≈ 4 ms, no burn.
        for _ in 0..100 {
            ws.observe("server.latency", None, 4_000);
        }
        let s = &eng.evaluate(&ws)[0];
        assert_eq!(s.state, SloState::Ok);
        assert!(s.burn_fast < 1.0);
        // Incident: sustained 80 ms requests dominate both windows.
        clock.advance(Duration::from_secs(10));
        for _ in 0..400 {
            ws.observe("server.latency", None, 80_000);
        }
        let s = &eng.evaluate(&ws)[0];
        assert_eq!(s.state, SloState::Burning, "status: {s:?}");
        assert!(s.burn_fast > 1.0 && s.burn_slow > 1.0);
        // Recovery: the fast window rolls past the incident and fills
        // with healthy samples; the alert clears even though the slow
        // window still remembers the incident.
        clock.advance(Duration::from_secs(70));
        for _ in 0..500 {
            ws.observe("server.latency", None, 3_000);
        }
        let s = &eng.evaluate(&ws)[0];
        assert_eq!(s.state, SloState::Ok, "status: {s:?}");
        assert!(s.burn_fast < 1.0);
        assert!(s.burn_slow > 1.0, "slow window still remembers: {s:?}");
    }

    #[test]
    fn ratio_objective_tracks_error_budget() {
        let (_clock, ws) = setup();
        let eng = SloEngine::new(vec![Objective::parse(
            "errors: rate(server.errors) / rate(server.requests) < 1% over 1m",
        )
        .unwrap()]);
        // No traffic at all: nothing to judge.
        assert_eq!(eng.evaluate(&ws)[0].state, SloState::NoData);
        ws.add("server.requests", None, 1000);
        ws.add("server.errors", None, 5);
        let s = &eng.evaluate(&ws)[0];
        assert_eq!(s.state, SloState::Ok);
        assert!((s.current - 0.005).abs() < 1e-9);
        ws.add("server.errors", None, 45); // 50/1000 = 5% > 1%
        let s = &eng.evaluate(&ws)[0];
        assert_eq!(s.state, SloState::Burning);
        assert!((s.burn_fast - 5.0).abs() < 1e-9);
        assert!(eng.any_burning(&ws));
    }

    #[test]
    fn slow_window_clamps_to_ring_retention() {
        let (_clock, ws) = setup(); // slow ring retains 10s × 30 × 12 = 1h
        let eng = SloEngine::new(vec![
            Objective::parse("lat: p99(server.latency) < 10ms over 1m").unwrap(),
            Objective::parse("wide: p99(server.latency) < 10ms over 1h").unwrap(),
        ]);
        ws.observe("server.latency", None, 4_000);
        let statuses = eng.evaluate(&ws);
        // Within retention the slow window is the nominal 12×.
        assert_eq!(statuses[0].window_slow, Duration::from_mins(12));
        // A 1 h objective's nominal 12 h slow window exceeds what the
        // rings retain; the status reports the honest, clamped span.
        assert_eq!(statuses[1].window_slow, Duration::from_hours(1));
        assert_eq!(statuses[1].state, SloState::Ok);
    }

    #[test]
    fn status_json_is_stable() {
        let s = SloStatus {
            name: "lat".to_string(),
            objective: "p99(server.latency) < 10ms over 5m".to_string(),
            window: Duration::from_mins(5),
            window_slow: Duration::from_hours(1),
            current: 12_000.0,
            burn_fast: 1.2,
            burn_slow: 1.1,
            state: SloState::Burning,
        };
        let json = s.to_json();
        assert!(json.contains("\"name\": \"lat\""));
        assert!(json.contains("\"window_secs\": 300"));
        assert!(json.contains("\"window_slow_secs\": 3600"));
        assert!(json.contains("\"burn_fast\": 1.2000"));
        assert!(json.contains("\"state\": \"burning\""));
        assert!(statuses_json(&[s.clone(), s]).starts_with('['));
    }
}
