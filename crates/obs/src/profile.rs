//! Signal-free sampling wall-clock profiler.
//!
//! Classic sampling profilers interrupt threads with `SIGPROF`; that is
//! unavailable here (std-only, portable) and unsafe to mix with FFI.
//! Instead, worker threads **self-report**: every span open/close already
//! passes through [`crate::span`]'s thread-local bookkeeping, and on each
//! such event the thread checks whether a new sampling tick (driven by
//! the injected [`grdf_runtime::Clock`]) has begun. The first thread to
//! observe a tick wins a CAS and records its *current open-span stack*
//! into a collapsed-stack weight map, crediting one sampling interval.
//!
//! ## Sampling guarantees (documented in DESIGN.md §12)
//!
//! * At most one sample is recorded per tick, process-wide — the output
//!   weight of a stack approximates the wall time the service spent with
//!   that stack active.
//! * Samples are taken at span *boundaries* only: a thread blocked
//!   inside one long span contributes no additional samples while
//!   blocked. The interval it eventually credits is attributed to the
//!   stack active at the boundary, and ticks nobody observed (an idle
//!   service) are dropped, never back-filled.
//! * Overhead per span event is one atomic load and a compare on the hot
//!   path; the weight-map mutex is touched only by tick winners (at most
//!   once per interval).
//!
//! Output is the flamegraph "collapsed" format (`path;to;frame µs`),
//! matching [`crate::TraceSink::collapsed`], exposed over the server's
//! `/profile` endpoint and runnable continuously under `grdf-cli serve`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use grdf_runtime::Clock;

/// A continuously running sampling profiler (see module docs).
pub struct Profiler {
    clock: Arc<dyn Clock>,
    interval: Duration,
    last_tick: AtomicU64,
    samples: AtomicU64,
    stacks: Mutex<BTreeMap<String, u64>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("interval", &self.interval)
            .field("samples", &self.samples())
            .finish_non_exhaustive()
    }
}

impl Profiler {
    /// A profiler sampling once per `interval` on `clock`.
    pub fn new(clock: Arc<dyn Clock>, interval: Duration) -> Profiler {
        Profiler {
            clock,
            interval: interval.max(Duration::from_micros(100)),
            last_tick: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            stacks: Mutex::new(BTreeMap::new()),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Called by [`crate::span`] open/close with the thread's current
    /// open-span name stack. Cheap no-op unless a new tick began.
    pub(crate) fn on_span_event(&self, stack: &[&'static str]) {
        if stack.is_empty() {
            return;
        }
        let tick = {
            let iv = self.interval.as_nanos().max(1);
            u64::try_from(self.clock.now().as_nanos() / iv).unwrap_or(u64::MAX)
        };
        let last = self.last_tick.load(Ordering::Relaxed);
        if tick <= last {
            return;
        }
        if self
            .last_tick
            .compare_exchange(last, tick, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return; // another thread claimed this tick
        }
        let path = stack.join(";");
        let weight = u64::try_from(self.interval.as_micros()).unwrap_or(u64::MAX);
        self.samples.fetch_add(1, Ordering::Relaxed);
        let mut stacks = self
            .stacks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *stacks.entry(path).or_insert(0) += weight;
    }

    /// Flamegraph collapsed-stack rendering: one `path µs` line per
    /// distinct sampled stack, sorted by path.
    pub fn collapsed(&self) -> String {
        let stacks = self
            .stacks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (path, weight) in stacks.iter() {
            let _ = writeln!(out, "{path} {weight}");
        }
        out
    }

    /// Drop all accumulated samples (used between bench phases).
    pub fn reset(&self) {
        self.stacks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.samples.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_runtime::ManualClock;

    #[test]
    fn ticks_sample_the_reported_stack_once() {
        let clock = Arc::new(ManualClock::new());
        let p = Profiler::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Duration::from_millis(10),
        );
        // Tick 0 is never sampled (last_tick starts there); advance into
        // tick 1.
        clock.advance(Duration::from_millis(10));
        p.on_span_event(&["server.request", "gsacs.request"]);
        p.on_span_event(&["server.request", "gsacs.request"]); // same tick: dropped
        assert_eq!(p.samples(), 1);
        clock.advance(Duration::from_millis(10));
        p.on_span_event(&["server.request"]);
        assert_eq!(p.samples(), 2);
        let collapsed = p.collapsed();
        assert!(collapsed.contains("server.request;gsacs.request 10000"));
        assert!(collapsed.contains("server.request 10000"));
        p.reset();
        assert_eq!(p.samples(), 0);
        assert!(p.collapsed().is_empty());
    }

    #[test]
    fn empty_stacks_and_unelapsed_ticks_record_nothing() {
        let clock = Arc::new(ManualClock::new());
        let p = Profiler::new(
            Arc::clone(&clock) as Arc<dyn Clock>,
            Duration::from_millis(10),
        );
        clock.advance(Duration::from_millis(25));
        p.on_span_event(&[]);
        assert_eq!(p.samples(), 0);
        p.on_span_event(&["a"]);
        assert_eq!(p.samples(), 1);
        // No clock movement: the tick is spent.
        p.on_span_event(&["b"]);
        assert_eq!(p.samples(), 1);
    }
}
