//! Prometheus text-format exposition (and a conformance parser).
//!
//! [`render`] turns the live registry + windowed store + SLO statuses
//! into the Prometheus text format (version 0.0.4 with OpenMetrics-style
//! exemplars):
//!
//! * counters → `grdf_<name>_total`
//! * gauges → `grdf_<name>`
//! * histograms → cumulative `grdf_<name>_bucket{le="2^k"}` series plus
//!   `_sum`/`_count`; buckets carry `# {trace_id="…"} value` exemplars
//!   linking them to spans retrievable from the [`TraceSink`]
//!   (`/trace`) by that id.
//! * per-tenant windowed series → `grdf_w1m_<name>{tenant="…"}` gauges:
//!   the trailing-minute sum for counters, `_p99`/`_count` for
//!   histograms. These are what `grdf-cli top` tabulates.
//! * SLOs → `grdf_slo_current|burn_fast|burn_slow|burning{objective="…"}`.
//!
//! Metric names are sanitized (`.` → `_`); label values are escaped per
//! the spec. [`parse`] is the inverse used by the CI format-conformance
//! gate and `grdf-cli top`: it checks name/label lexical validity, that
//! every sample belongs to a `# TYPE`-declared family, and that
//! histogram bucket series are cumulative and capped by `+Inf == count`.
//!
//! [`TraceSink`]: crate::TraceSink

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::{MetricsRegistry, BUCKETS};
use crate::slo::SloStatus;
use crate::window::WindowStore;

/// The window behind the `grdf_w1m_*` per-tenant gauges.
pub const TENANT_WINDOW: Duration = Duration::from_mins(1);

/// Sanitize a dotted metric name into `[a-zA-Z_:][a-zA-Z0-9_:]*` with the
/// `grdf_` namespace prefix.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("grdf_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Render the full exposition (see module docs).
pub fn render(
    registry: &MetricsRegistry,
    windows: Option<&WindowStore>,
    slo: &[SloStatus],
) -> String {
    let mut out = String::new();
    let snap = registry.snapshot();
    for (name, v) in &snap.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n}_total counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for (name, v) in &snap.gauges {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, hist) in registry.histogram_handles() {
        let n = metric_name(&name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let buckets = hist.bucket_counts();
        let count = hist.count();
        let top = buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &b) in buckets.iter().enumerate().take((top + 1).min(BUCKETS - 1)) {
            cum += b;
            let le = 1u128 << (i + 1);
            let _ = write!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
            match hist.exemplar(i) {
                Some((id, v)) => {
                    let _ = writeln!(out, " # {{trace_id=\"{id}\"}} {v}");
                }
                None => out.push('\n'),
            }
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{n}_sum {}", hist.sum());
        let _ = writeln!(out, "{n}_count {count}");
    }
    if let Some(ws) = windows {
        let mut lines: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for tenant in ws.tenant_labels() {
            for name in ws.names_for_tenant(Some(&tenant)) {
                let label = escape_label(&tenant);
                if let Some(s) = ws.summary(&name, Some(&tenant), TENANT_WINDOW) {
                    let base = metric_name(&format!("w1m.{name}"));
                    lines
                        .entry(format!("{base}_p99"))
                        .or_default()
                        .push(format!(
                            "{base}_p99{{tenant=\"{label}\"}} {}",
                            s.quantile(0.99)
                        ));
                    lines
                        .entry(format!("{base}_count"))
                        .or_default()
                        .push(format!("{base}_count{{tenant=\"{label}\"}} {}", s.count));
                } else {
                    let sum = ws.window_sum(&name, Some(&tenant), TENANT_WINDOW);
                    let base = metric_name(&format!("w1m.{name}"));
                    lines
                        .entry(base.clone())
                        .or_default()
                        .push(format!("{base}{{tenant=\"{label}\"}} {sum}"));
                }
            }
        }
        for (family, samples) in lines {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for s in samples {
                let _ = writeln!(out, "{s}");
            }
        }
    }
    if !slo.is_empty() {
        for (family, pick) in [
            ("grdf_slo_current", 0usize),
            ("grdf_slo_burn_fast", 1),
            ("grdf_slo_burn_slow", 2),
            ("grdf_slo_burning", 3),
        ] {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for s in slo {
                let v = match pick {
                    0 => s.current,
                    1 => s.burn_fast,
                    2 => s.burn_slow,
                    _ => f64::from(u8::from(s.state == crate::slo::SloState::Burning)),
                };
                let _ = writeln!(
                    out,
                    "{family}{{objective=\"{}\"}} {}",
                    escape_label(&s.name),
                    fmt_f64(v)
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Conformance parser
// ---------------------------------------------------------------------------

/// Declared family type from a `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyType {
    /// Monotonic counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (including `_bucket`/`_sum`/… suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// OpenMetrics exemplar: `(trace id hex, exemplar value)`.
    pub exemplar: Option<(String, f64)>,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed (and validated) exposition.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations by family name.
    pub families: BTreeMap<String, FamilyType>,
    /// Every sample, in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Samples named exactly `name`.
    pub fn named(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The single value of `name` with `label == value`, if present.
    pub fn value_with(&self, name: &str, label: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(label) == Some(value))
            .map(|s| s.value)
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn base_family(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count", "_total"] {
        if let Some(b) = name.strip_suffix(suffix) {
            return b;
        }
    }
    name
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',').trim_start();
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name: {key}"));
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value after {key}"))?;
        let mut value = String::new();
        let mut chars = after.char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated label value for {key}"))?;
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    other => return Err(format!("bad escape in label {key}: {other:?}")),
                },
                '"' => break i,
                c => value.push(c),
            }
        };
        labels.push((key.to_string(), value));
        rest = &after[close + 1..];
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s.parse().map_err(|e| format!("bad value {s}: {e}")),
    }
}

/// Parse and validate a text exposition (see module docs for the rules).
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut out = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err("TYPE without name".into()))?;
                let kind = match parts.next() {
                    Some("counter") => FamilyType::Counter,
                    Some("gauge") => FamilyType::Gauge,
                    Some("histogram") => FamilyType::Histogram,
                    other => return Err(err(format!("unknown TYPE kind {other:?}"))),
                };
                if !valid_name(name) {
                    return Err(err(format!("invalid family name: {name}")));
                }
                if out.families.insert(name.to_string(), kind).is_some() {
                    return Err(err(format!("duplicate TYPE for {name}")));
                }
            }
            // HELP and other comments pass through unvalidated.
            continue;
        }
        // Sample line: name[{labels}] value [# {trace_id="…"} exemplar]
        let (sample_part, exemplar) = match line.split_once(" # ") {
            None => (line, None),
            Some((s, ex)) => {
                let ex = ex.trim();
                let inner = ex
                    .strip_prefix('{')
                    .and_then(|e| e.split_once('}'))
                    .ok_or_else(|| err(format!("malformed exemplar: {ex}")))?;
                let labels = parse_labels(inner.0).map_err(&err)?;
                let id = labels
                    .iter()
                    .find(|(k, _)| k == "trace_id")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| err("exemplar without trace_id".into()))?;
                let v = parse_value(inner.1.trim()).map_err(&err)?;
                (s, Some((id, v)))
            }
        };
        let (name_part, value_part) = if let Some(open) = sample_part.find('{') {
            let close = sample_part
                .rfind('}')
                .ok_or_else(|| err("unterminated label block".into()))?;
            let labels = &sample_part[open + 1..close];
            let value = sample_part[close + 1..].trim();
            ((&sample_part[..open], labels), value)
        } else {
            let (n, v) = sample_part
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(format!("sample without value: {sample_part}")))?;
            ((n, ""), v.trim())
        };
        let (name, labels_raw) = name_part;
        if !valid_name(name) {
            return Err(err(format!("invalid metric name: {name}")));
        }
        let family = base_family(name);
        if !out.families.contains_key(family) && !out.families.contains_key(name) {
            return Err(err(format!("sample {name} has no # TYPE declaration")));
        }
        out.samples.push(Sample {
            name: name.to_string(),
            labels: parse_labels(labels_raw).map_err(&err)?,
            value: parse_value(value_part).map_err(&err)?,
            exemplar,
        });
    }
    validate_histograms(&out)?;
    Ok(out)
}

/// Histogram invariants: buckets cumulative (non-decreasing by `le`),
/// `+Inf` bucket present and equal to `_count`.
fn validate_histograms(expo: &Exposition) -> Result<(), String> {
    for (family, kind) in &expo.families {
        if *kind != FamilyType::Histogram {
            continue;
        }
        // Group buckets by their full label set minus `le`.
        let group_key = |s: &Sample| -> String {
            s.labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v};"))
                .collect()
        };
        let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for s in expo.named(&format!("{family}_bucket")) {
            let le = s
                .label("le")
                .ok_or_else(|| format!("{family}_bucket sample without le"))?;
            let le = parse_value(le)?;
            groups.entry(group_key(s)).or_default().push((le, s.value));
        }
        for (key, mut buckets) in groups {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut prev = -1.0;
            for &(_, v) in &buckets {
                if v < prev {
                    return Err(format!(
                        "{family}_bucket{{{key}}} buckets are not cumulative"
                    ));
                }
                prev = v;
            }
            let last = buckets
                .last()
                .filter(|(le, _)| le.is_infinite())
                .ok_or_else(|| format!("{family}_bucket{{{key}}} missing le=\"+Inf\""))?;
            // The `_count` for this group is the one carrying the same
            // label set (minus `le`) — with labeled histograms, each
            // group must be capped by its own count, not the first one.
            let count = expo
                .samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && group_key(s) == key)
                .map(|s| s.value);
            if let Some(count) = count {
                if (last.1 - count).abs() > f64::EPSILON {
                    return Err(format!(
                        "{family}{{{key}}}: +Inf bucket {} != count {count}",
                        last.1
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{SloState, SloStatus};
    use crate::window::WindowConfig;
    use crate::Obs;
    use grdf_runtime::{Clock, ManualClock};
    use std::sync::Arc;

    fn slo_status(state: SloState) -> SloStatus {
        SloStatus {
            name: "lat".to_string(),
            objective: "p99(server.latency) < 10ms over 5m".to_string(),
            window: Duration::from_mins(5),
            window_slow: Duration::from_hours(1),
            current: 1234.0,
            burn_fast: 0.5,
            burn_slow: 0.25,
            state,
        }
    }

    #[test]
    fn renders_and_round_trips_through_the_parser() {
        let clock = Arc::new(ManualClock::new());
        let obs = Obs::new();
        let ws = WindowStore::new(WindowConfig::default(), clock as Arc<dyn Clock>);
        {
            let _scope = obs.scope("req");
            crate::add("server.requests", 3);
            crate::observe("server.latency", 900);
            crate::observe("server.latency", 70_000);
            crate::gauge_set("pool.depth", -2);
        }
        ws.add("server.requests", Some("acme"), 42);
        ws.observe("server.latency", Some("acme"), 800);
        let text = render(obs.registry(), Some(&ws), &[slo_status(SloState::Ok)]);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("conformance: {e}\n{text}"));
        assert_eq!(parsed.named("grdf_server_requests_total")[0].value, 3.0);
        assert_eq!(parsed.named("grdf_pool_depth")[0].value, -2.0);
        assert_eq!(
            parsed.families["grdf_server_latency"],
            FamilyType::Histogram
        );
        assert_eq!(
            parsed.value_with("grdf_w1m_server_requests", "tenant", "acme"),
            Some(42.0)
        );
        assert_eq!(
            parsed.value_with("grdf_w1m_server_latency_count", "tenant", "acme"),
            Some(1.0)
        );
        assert_eq!(
            parsed.value_with("grdf_slo_burning", "objective", "lat"),
            Some(0.0)
        );
        // The traced scope left exemplars on the latency buckets.
        let with_exemplar: Vec<_> = parsed
            .named("grdf_server_latency_bucket")
            .into_iter()
            .filter(|s| s.exemplar.is_some())
            .collect();
        assert_eq!(with_exemplar.len(), 2, "both recorded buckets carry one");
    }

    #[test]
    fn parser_rejects_nonconformant_text() {
        for (bad, why) in [
            ("grdf_x 1\n", "sample without TYPE"),
            ("# TYPE grdf_x gauge\n9bad_name 1\n", "invalid name"),
            ("# TYPE grdf_x gauge\ngrdf_x{l=unquoted} 1\n", "unquoted label"),
            ("# TYPE grdf_x gauge\ngrdf_x notanumber\n", "bad value"),
            (
                "# TYPE grdf_x gauge\n# TYPE grdf_x counter\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE grdf_h histogram\ngrdf_h_bucket{le=\"1\"} 5\ngrdf_h_bucket{le=\"2\"} 3\ngrdf_h_bucket{le=\"+Inf\"} 5\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE grdf_h histogram\ngrdf_h_bucket{le=\"1\"} 5\n",
                "missing +Inf",
            ),
        ] {
            assert!(parse(bad).is_err(), "should reject ({why}): {bad}");
        }
    }

    #[test]
    fn labeled_histogram_groups_validate_against_their_own_count() {
        // Two label groups with different counts: each +Inf must be
        // checked against the count carrying the same labels, not
        // whichever _count happens to come first.
        let ok = "# TYPE grdf_h histogram\n\
                  grdf_h_bucket{tenant=\"a\",le=\"1\"} 1\n\
                  grdf_h_bucket{tenant=\"a\",le=\"+Inf\"} 2\n\
                  grdf_h_count{tenant=\"a\"} 2\n\
                  grdf_h_bucket{tenant=\"b\",le=\"1\"} 3\n\
                  grdf_h_bucket{tenant=\"b\",le=\"+Inf\"} 5\n\
                  grdf_h_count{tenant=\"b\"} 5\n";
        parse(ok).unwrap_or_else(|e| panic!("valid labeled histogram rejected: {e}"));
        // Group b's +Inf (5) matches group a's count but not its own
        // (3): the gate must catch the mismatch.
        let bad = "# TYPE grdf_h histogram\n\
                   grdf_h_bucket{tenant=\"a\",le=\"+Inf\"} 5\n\
                   grdf_h_count{tenant=\"a\"} 5\n\
                   grdf_h_bucket{tenant=\"b\",le=\"+Inf\"} 5\n\
                   grdf_h_count{tenant=\"b\"} 3\n";
        assert!(parse(bad).is_err(), "mismatched labeled count accepted");
    }

    #[test]
    fn burning_state_exposes_one() {
        let obs = Obs::new();
        let text = render(obs.registry(), None, &[slo_status(SloState::Burning)]);
        let parsed = parse(&text).unwrap();
        assert_eq!(
            parsed.value_with("grdf_slo_burning", "objective", "lat"),
            Some(1.0)
        );
        assert_eq!(
            parsed.value_with("grdf_slo_burn_fast", "objective", "lat"),
            Some(0.5)
        );
    }

    #[test]
    fn label_escapes_round_trip() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let text = "# TYPE grdf_x gauge\ngrdf_x{t=\"a\\\"b\\\\c\\nd\"} 1\n";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.samples[0].label("t"), Some("a\"b\\c\nd"));
    }
}
