//! Typed lint diagnostics: stable codes, severities, and reports.
//!
//! Every static-analysis pass in the workspace — referential integrity,
//! schema conformance, OWL consistency, policy analysis, topology
//! invariants — reports findings through one [`Diagnostic`] shape so that
//! tooling (CLI, CI gate, G-SACS admission) can sort, filter, render, and
//! gate on them uniformly. Codes are *stable identifiers*: once shipped, a
//! code keeps its meaning forever so downstream suppressions and golden
//! corpora do not rot.
//!
//! Code ranges:
//!
//! * `G0xx` — graph/ontology: referential integrity and schema conformance.
//! * `S0xx` — security policy analysis.
//! * `T0xx` — topology (Fig. 2) invariants.

use std::fmt;

use crate::term::Term;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a gate.
    Info,
    /// Suspicious but not certainly broken; fails gates run with
    /// deny-warnings.
    Warning,
    /// A genuine defect; always fails a gate.
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable lint codes. The numeric part never changes meaning; new checks
/// get new numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// G001: an IRI is used in a class position (`rdf:type` object,
    /// `rdfs:subClassOf` endpoint, `rdfs:domain`/`rdfs:range` target) but
    /// is never declared as a class.
    DanglingIri,
    /// G002: a predicate is used but never declared as a property, in a
    /// graph that does declare properties.
    UndeclaredProperty,
    /// G003: a `grdf:realizedBy`/`grdf:realizes` link whose target is
    /// never described (no triples about it).
    DanglingRealization,
    /// G004: a triple's subject is typed, but no type is compatible with
    /// the predicate's declared `rdfs:domain`.
    DomainViolation,
    /// G005: a triple's object is incompatible with the predicate's
    /// declared `rdfs:range` (wrong class, or a literal where a resource
    /// is required / vice versa).
    RangeViolation,
    /// G006: a literal whose datatype or lexical form does not conform to
    /// the predicate's declared range (the List 1 `MeasureType` problem).
    DatatypeMismatch,
    /// G010: a cardinality restriction that no individual can satisfy
    /// (e.g. `minCardinality` > `maxCardinality`).
    UnsatisfiableCardinality,
    /// G011: instance data violating a cardinality restriction.
    CardinalityViolation,
    /// G012: an individual is a member of two `owl:disjointWith` classes.
    DisjointViolation,
    /// G013: two individuals are both `owl:sameAs` and
    /// `owl:differentFrom`.
    SameAndDifferent,
    /// G014: an individual is typed `owl:Nothing`.
    NothingMember,
    /// G015: a functional property with two distinct literal values.
    FunctionalClash,
    /// S001: a role gets Permit from one policy and Deny from another
    /// over overlapping resources (directly or via subclass inference).
    ContradictoryRule,
    /// S002: a policy targets a resource or condition property that does
    /// not exist in the graph.
    UnknownPolicyTarget,
    /// S003: a rule whose conditions can never take effect because a
    /// broader rule subsumes it on the same resource.
    ShadowedRule,
    /// S004: two distinct policies share one policy id.
    DuplicatePolicyId,
    /// S005: a policy with an empty role, resource, or property list.
    EmptyDesignator,
    /// S006: a class-level unconditional grant that overrides a
    /// property-level restriction on a subclass underneath it — the
    /// GeoXACML-granularity regression the paper warns about.
    OverBroadGrant,
    /// S007: a policy that never changes any role's compiled visibility —
    /// every triple it would grant or hide is already decided the same way
    /// by the rest of the policy set (shadowing / unreachability at the
    /// whole-set level, beyond the pairwise S003 check).
    UnreachablePolicy,
    /// S008: a role's *effective* policy set (own + inherited) holds both
    /// a Permit and a Deny that match one concrete subject, where the pair
    /// is invisible to the pairwise S001 check (different declared roles,
    /// or designators that only overlap on a concrete individual).
    ContradictoryOverlap,
    /// S009: entailment leak — a role's permitted subgraph plus the public
    /// schema OWL-Horst-entails a triple about a subject that role is
    /// explicitly denied.
    EntailmentLeak,
    /// S010: authorization monotonicity violation — a sub-role's effective
    /// view loses a triple its super-role can see (an explicit deny on the
    /// sub-role cuts inherited visibility).
    NonMonotonicAuthorization,
    /// T001: a topology primitive left unrealized while the rest of its
    /// complex is realized.
    UnrealizedTopology,
    /// T002: an edge whose endpoint nodes are missing or untyped.
    MissingEndpoint,
    /// T003: a face whose boundary edges do not close into a loop.
    OpenFaceBoundary,
    /// T004: a face with no boundary edges at all (List 5 requires ≥ 1).
    EmptyFaceBoundary,
}

impl LintCode {
    /// Every code, in code order. Golden corpora iterate this to prove
    /// per-code coverage.
    pub const ALL: &'static [LintCode] = &[
        LintCode::DanglingIri,
        LintCode::UndeclaredProperty,
        LintCode::DanglingRealization,
        LintCode::DomainViolation,
        LintCode::RangeViolation,
        LintCode::DatatypeMismatch,
        LintCode::UnsatisfiableCardinality,
        LintCode::CardinalityViolation,
        LintCode::DisjointViolation,
        LintCode::SameAndDifferent,
        LintCode::NothingMember,
        LintCode::FunctionalClash,
        LintCode::ContradictoryRule,
        LintCode::UnknownPolicyTarget,
        LintCode::ShadowedRule,
        LintCode::DuplicatePolicyId,
        LintCode::EmptyDesignator,
        LintCode::OverBroadGrant,
        LintCode::UnreachablePolicy,
        LintCode::ContradictoryOverlap,
        LintCode::EntailmentLeak,
        LintCode::NonMonotonicAuthorization,
        LintCode::UnrealizedTopology,
        LintCode::MissingEndpoint,
        LintCode::OpenFaceBoundary,
        LintCode::EmptyFaceBoundary,
    ];

    /// The stable code string, e.g. `G010`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DanglingIri => "G001",
            LintCode::UndeclaredProperty => "G002",
            LintCode::DanglingRealization => "G003",
            LintCode::DomainViolation => "G004",
            LintCode::RangeViolation => "G005",
            LintCode::DatatypeMismatch => "G006",
            LintCode::UnsatisfiableCardinality => "G010",
            LintCode::CardinalityViolation => "G011",
            LintCode::DisjointViolation => "G012",
            LintCode::SameAndDifferent => "G013",
            LintCode::NothingMember => "G014",
            LintCode::FunctionalClash => "G015",
            LintCode::ContradictoryRule => "S001",
            LintCode::UnknownPolicyTarget => "S002",
            LintCode::ShadowedRule => "S003",
            LintCode::DuplicatePolicyId => "S004",
            LintCode::EmptyDesignator => "S005",
            LintCode::OverBroadGrant => "S006",
            LintCode::UnreachablePolicy => "S007",
            LintCode::ContradictoryOverlap => "S008",
            LintCode::EntailmentLeak => "S009",
            LintCode::NonMonotonicAuthorization => "S010",
            LintCode::UnrealizedTopology => "T001",
            LintCode::MissingEndpoint => "T002",
            LintCode::OpenFaceBoundary => "T003",
            LintCode::EmptyFaceBoundary => "T004",
        }
    }

    /// The human-facing kebab-case name, e.g. `unsatisfiable-cardinality`.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DanglingIri => "dangling-iri",
            LintCode::UndeclaredProperty => "undeclared-property",
            LintCode::DanglingRealization => "dangling-realization",
            LintCode::DomainViolation => "domain-violation",
            LintCode::RangeViolation => "range-violation",
            LintCode::DatatypeMismatch => "datatype-mismatch",
            LintCode::UnsatisfiableCardinality => "unsatisfiable-cardinality",
            LintCode::CardinalityViolation => "cardinality-violation",
            LintCode::DisjointViolation => "disjoint-violation",
            LintCode::SameAndDifferent => "same-and-different",
            LintCode::NothingMember => "nothing-member",
            LintCode::FunctionalClash => "functional-clash",
            LintCode::ContradictoryRule => "contradictory-rule",
            LintCode::UnknownPolicyTarget => "unknown-policy-target",
            LintCode::ShadowedRule => "shadowed-rule",
            LintCode::DuplicatePolicyId => "duplicate-policy-id",
            LintCode::EmptyDesignator => "empty-designator",
            LintCode::OverBroadGrant => "over-broad-grant",
            LintCode::UnreachablePolicy => "unreachable-policy",
            LintCode::ContradictoryOverlap => "contradictory-overlap",
            LintCode::EntailmentLeak => "entailment-leak",
            LintCode::NonMonotonicAuthorization => "non-monotonic-authorization",
            LintCode::UnrealizedTopology => "unrealized-topology",
            LintCode::MissingEndpoint => "missing-endpoint",
            LintCode::OpenFaceBoundary => "open-face-boundary",
            LintCode::EmptyFaceBoundary => "empty-face-boundary",
        }
    }

    /// The severity a finding with this code carries unless a pass
    /// overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::DanglingIri
            | LintCode::UndeclaredProperty
            | LintCode::DomainViolation
            | LintCode::RangeViolation
            | LintCode::UnknownPolicyTarget
            | LintCode::ShadowedRule
            | LintCode::UnreachablePolicy
            | LintCode::NonMonotonicAuthorization
            | LintCode::UnrealizedTopology => Severity::Warning,
            LintCode::DanglingRealization
            | LintCode::DatatypeMismatch
            | LintCode::UnsatisfiableCardinality
            | LintCode::CardinalityViolation
            | LintCode::DisjointViolation
            | LintCode::SameAndDifferent
            | LintCode::NothingMember
            | LintCode::FunctionalClash
            | LintCode::ContradictoryRule
            | LintCode::DuplicatePolicyId
            | LintCode::EmptyDesignator
            | LintCode::OverBroadGrant
            | LintCode::ContradictoryOverlap
            | LintCode::EntailmentLeak
            | LintCode::MissingEndpoint
            | LintCode::OpenFaceBoundary
            | LintCode::EmptyFaceBoundary => Severity::Error,
        }
    }

    /// Parse a stable code string back to the enum (`"G010"` →
    /// `UnsatisfiableCardinality`).
    pub fn parse(code: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.code() == code)
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One finding: a stable code, a severity, the subject term it anchors
/// to, a message, and optional related terms and a suggested fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// Severity (defaults to [`LintCode::default_severity`]).
    pub severity: Severity,
    /// The term the finding is about (an IRI, blank node, or — for
    /// policy findings — the policy id as an IRI term).
    pub subject: Term,
    /// Human-readable description of the defect.
    pub message: String,
    /// Other terms involved (the other class of a disjoint pair, the
    /// conflicting policy, the missing endpoint, …), sorted.
    pub related: Vec<Term>,
    /// A suggested fix, when the pass can propose one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no related
    /// terms or suggestion.
    pub fn new(code: LintCode, subject: Term, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            subject,
            message: message.into(),
            related: Vec::new(),
            suggestion: None,
        }
    }

    /// Attach related terms (kept sorted for deterministic output).
    #[must_use]
    pub fn with_related(mut self, related: Vec<Term>) -> Diagnostic {
        self.related = related;
        self.related.sort();
        self
    }

    /// Attach a suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Override the severity.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `severity[CODE] subject: message` (+ suggestion when present).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code.code(),
            self.subject,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (fix: {s})")?;
        }
        Ok(())
    }
}

/// A set of diagnostics with deterministic ordering and the renderings
/// tooling gates on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// The findings, sorted by (code, subject, message) after
    /// [`LintReport::finish`].
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Build a normalized report from raw findings: sorted and deduplicated.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> LintReport {
        let mut r = LintReport { diagnostics };
        r.finish();
        r
    }

    /// Add one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Add many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Normalize: sort by (code, subject, message, related) and drop exact
    /// duplicates, so output is stable under triple reordering.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            a.code
                .code()
                .cmp(b.code.code())
                .then_with(|| a.subject.cmp(&b.subject))
                .then_with(|| a.message.cmp(&b.message))
                .then_with(|| a.related.cmp(&b.related))
        });
        self.diagnostics.dedup();
    }

    /// Count of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, `None` when clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any error-level finding is present.
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether a gate with the given strictness should fail this report.
    pub fn fails_gate(&self, deny_warnings: bool) -> bool {
        match self.max_severity() {
            Some(Severity::Error) => true,
            Some(Severity::Warning) => deny_warnings,
            _ => false,
        }
    }

    /// Findings with the given code.
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// One line per finding plus a summary trailer.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = write!(
            out,
            "{} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }

    /// The stable JSON rendering (schema version 2):
    ///
    /// ```json
    /// {"version":2,"tool_version":"0.1.0","codes":["G001"],
    ///  "summary":{"error":0,"warning":0,"info":0},
    ///  "diagnostics":[{"code":"G001","name":"dangling-iri",
    ///    "severity":"warning","subject":"<iri>","message":"…",
    ///    "related":["…"],"suggestion":"…"}]}
    /// ```
    ///
    /// v2 adds `tool_version` (the emitting crate's version) and `codes`
    /// (the sorted distinct codes present) ahead of `summary`; the
    /// per-diagnostic shape is unchanged from v1 so v1 consumers that key
    /// on `summary`/`diagnostics` keep working — see [`parse_summary`]
    /// which accepts both. Keys are emitted in fixed order; `suggestion`
    /// is omitted when absent. Snapshot-tested: changing this shape is a
    /// breaking change.
    pub fn to_json(&self) -> String {
        let mut codes: Vec<&str> = self.diagnostics.iter().map(|d| d.code.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        let mut out = String::from("{\"version\":2,\"tool_version\":");
        out.push_str(&json_string(env!("CARGO_PKG_VERSION")));
        out.push_str(",\"codes\":[");
        for (i, c) in codes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\"summary\":{");
        out.push_str(&format!(
            "\"error\":{},\"warning\":{},\"info\":{}}},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":{},\"name\":{},\"severity\":{},\"subject\":{},\"message\":{},\"related\":[",
                json_string(d.code.code()),
                json_string(d.code.name()),
                json_string(d.severity.name()),
                json_string(&d.subject.to_string()),
                json_string(&d.message),
            ));
            for (j, r) in d.related.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(&r.to_string()));
            }
            out.push(']');
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(",\"suggestion\":{}", json_string(s)));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// The header of a serialized [`LintReport`], as parsed back from JSON by
/// [`parse_summary`]. Covers both schema v1 (no `tool_version`/`codes`)
/// and v2, so CI artifacts from older runs still diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    /// The schema version (`1` or `2`).
    pub version: u32,
    /// The emitting crate's version; `None` for v1 reports.
    pub tool_version: Option<String>,
    /// Sorted distinct codes present; empty for v1 reports (field absent).
    pub codes: Vec<String>,
    /// Error-severity finding count.
    pub error: usize,
    /// Warning-severity finding count.
    pub warning: usize,
    /// Info-severity finding count.
    pub info: usize,
}

/// Parse the header of a JSON lint report produced by
/// [`LintReport::to_json`] — either schema v1 or v2. Returns `None` when
/// the document is not a lint report. This is a targeted reader for our
/// own fixed-key-order output, not a general JSON parser.
pub fn parse_summary(json: &str) -> Option<ReportSummary> {
    fn field_u32(json: &str, key: &str) -> Option<u32> {
        let needle = format!("\"{key}\":");
        let at = json.find(&needle)? + needle.len();
        let digits: String = json[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    fn field_str(json: &str, key: &str) -> Option<String> {
        let needle = format!("\"{key}\":\"");
        let at = json.find(&needle)? + needle.len();
        let end = json[at..].find('"')?;
        Some(json[at..at + end].to_string())
    }
    let version = field_u32(json, "version")?;
    if version == 0 || version > 2 {
        return None;
    }
    let summary_at = json.find("\"summary\":")?;
    let head = &json[..summary_at];
    let summary = &json[summary_at..];
    let mut codes = Vec::new();
    if let Some(at) = head.find("\"codes\":[") {
        let rest = &head[at + "\"codes\":[".len()..];
        let end = rest.find(']')?;
        for part in rest[..end].split(',') {
            let part = part.trim().trim_matches('"');
            if !part.is_empty() {
                codes.push(part.to_string());
            }
        }
    }
    Some(ReportSummary {
        version,
        tool_version: field_str(head, "tool_version"),
        codes,
        error: field_u32(summary, "error")? as usize,
        warning: field_u32(summary, "warning")? as usize,
        info: field_u32(summary, "info")? as usize,
    })
}

/// Escape a string as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_parse_back() {
        let mut seen = std::collections::HashSet::new();
        for c in LintCode::ALL {
            assert!(seen.insert(c.code()), "duplicate code {}", c.code());
            assert_eq!(LintCode::parse(c.code()), Some(*c));
            assert!(!c.name().is_empty());
        }
        assert_eq!(LintCode::parse("Z999"), None);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn report_sorts_and_dedups() {
        let d1 = Diagnostic::new(LintCode::DanglingIri, Term::iri("urn:b"), "msg");
        let d2 = Diagnostic::new(LintCode::DanglingIri, Term::iri("urn:a"), "msg");
        let r = LintReport::from_diagnostics(vec![d1.clone(), d2.clone(), d1.clone()]);
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].subject, Term::iri("urn:a"));
        assert_eq!(r.count(Severity::Warning), 2);
        assert!(!r.has_errors());
        assert!(r.fails_gate(true));
        assert!(!r.fails_gate(false));
    }

    #[test]
    fn text_and_json_render() {
        let d = Diagnostic::new(
            LintCode::UnsatisfiableCardinality,
            Term::iri("urn:c"),
            "min 3 > max 1",
        )
        .with_related(vec![Term::iri("urn:p")])
        .with_suggestion("lower minCardinality to 1");
        let r = LintReport::from_diagnostics(vec![d]);
        let text = r.render_text();
        assert!(text.contains("error[G010]"), "{text}");
        assert!(text.contains("1 error(s)"), "{text}");
        let json = r.to_json();
        assert!(json.starts_with("{\"version\":2"), "{json}");
        assert!(json.contains("\"tool_version\":"), "{json}");
        assert!(json.contains("\"codes\":[\"G010\"]"), "{json}");
        assert!(json.contains("\"code\":\"G010\""), "{json}");
        assert!(json.contains("\"suggestion\":"), "{json}");
    }

    #[test]
    fn summary_parses_v2_output() {
        let d = Diagnostic::new(LintCode::EntailmentLeak, Term::iri("urn:p"), "leak");
        let r = LintReport::from_diagnostics(vec![d]);
        let s = parse_summary(&r.to_json()).expect("v2 parses");
        assert_eq!(s.version, 2);
        assert_eq!(s.tool_version.as_deref(), Some(env!("CARGO_PKG_VERSION")));
        assert_eq!(s.codes, vec!["S009".to_string()]);
        assert_eq!((s.error, s.warning, s.info), (1, 0, 0));
    }

    #[test]
    fn summary_parses_legacy_v1_artifact() {
        // A canned v1 report as emitted before the schema bump: no
        // tool_version, no codes array. Older CI artifacts must still diff.
        let v1 = "{\"version\":1,\"summary\":{\"error\":2,\"warning\":1,\"info\":0},\
                  \"diagnostics\":[{\"code\":\"S001\",\"name\":\"contradictory-rule\",\
                  \"severity\":\"error\",\"subject\":\"<urn:x>\",\"message\":\"m\",\"related\":[]}]}";
        let s = parse_summary(v1).expect("v1 parses");
        assert_eq!(s.version, 1);
        assert_eq!(s.tool_version, None);
        assert!(s.codes.is_empty());
        assert_eq!((s.error, s.warning, s.info), (2, 1, 0));
        assert!(parse_summary("{\"not\":\"a report\"}").is_none());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = LintReport::new();
        assert!(r.is_clean());
        assert_eq!(r.max_severity(), None);
        assert!(!r.fails_gate(true));
        let expected = format!(
            "{{\"version\":2,\"tool_version\":\"{}\",\"codes\":[],\"summary\":{{\"error\":0,\"warning\":0,\"info\":0}},\"diagnostics\":[]}}",
            env!("CARGO_PKG_VERSION")
        );
        assert_eq!(r.to_json(), expected);
    }
}
