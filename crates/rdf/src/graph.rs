//! In-memory triple store with term interning and three access-path indexes.
//!
//! Terms are interned into dense `u32` ids; triples are id-tuples kept in
//! ordered sets for the three access paths a basic graph pattern can need:
//! `SPO`, `POS` and `OSP`. Range scans over those sets answer any
//! subject/predicate/object pattern without a full scan.
//!
//! [`IndexMode::SpoOnly`] disables the two secondary indexes; it exists for
//! the index ablation in the benchmark suite (experiment E1c) and falls back
//! to scanning.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::term::{Term, Triple};

/// Dense id assigned to an interned term. Ids are stable for the life of
/// the graph (the interner is append-only) and are private to one graph:
/// an id from one graph is meaningless in another.
pub type TermId = u32;

type Id = TermId;

/// Bidirectional term ↔ id table.
#[derive(Debug, Default, Clone)]
struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, Id>,
}

impl Interner {
    fn intern(&mut self, term: &Term) -> Id {
        // Get-then-insert: the hit path (the overwhelmingly common case on
        // a materialized graph) must not clone the term just to probe.
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as Id;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    fn get(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    fn resolve(&self, id: Id) -> &Term {
        &self.terms[id as usize]
    }
}

/// Which indexes the graph maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// SPO + POS + OSP (the default; any pattern is a range scan).
    Full,
    /// SPO only; `?s p o`-style patterns degrade to scans. For ablation.
    SpoOnly,
}

/// An in-memory RDF graph.
#[derive(Debug, Clone)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(Id, Id, Id)>,
    pos: BTreeSet<(Id, Id, Id)>,
    osp: BTreeSet<(Id, Id, Id)>,
    mode: IndexMode,
    blank_counter: u64,
    /// Append-only insertion log (id triples, in insertion order). The
    /// length of this log is the graph's *generation*; a slice of it is a
    /// delta snapshot — see [`Graph::generation`] / [`Graph::delta_since`].
    log: Vec<(Id, Id, Id)>,
    /// Count of successful removals. While zero, every log entry is still
    /// present and unique, so delta snapshots skip their per-entry
    /// membership filter.
    removals: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Empty graph with all three indexes.
    pub fn new() -> Graph {
        Graph::with_index_mode(IndexMode::Full)
    }

    /// Empty graph with an explicit index configuration.
    pub fn with_index_mode(mode: IndexMode) -> Graph {
        Graph {
            interner: Interner::default(),
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
            mode,
            blank_counter: 0,
            log: Vec::new(),
            removals: 0,
        }
    }

    /// The index configuration of this graph.
    pub fn index_mode(&self) -> IndexMode {
        self.mode
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Insert a triple; returns true if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&triple.subject);
        let p = self.interner.intern(&triple.predicate);
        let o = self.interner.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added {
            if self.mode == IndexMode::Full {
                self.pos.insert((p, o, s));
                self.osp.insert((o, s, p));
            }
            self.log.push((s, p, o));
        }
        added
    }

    /// Bulk insert: intern every triple first, then merge the sorted new
    /// id-tuples into the three BTree indexes in one ordered pass each —
    /// cheaper than per-triple `insert` for large batches (the reasoner's
    /// per-pass merges, ontology loads). Returns the number of triples
    /// actually added.
    pub fn extend_triples<I: IntoIterator<Item = Triple>>(&mut self, iter: I) -> usize {
        let ids: Vec<(Id, Id, Id)> = iter
            .into_iter()
            .map(|t| {
                (
                    self.interner.intern(&t.subject),
                    self.interner.intern(&t.predicate),
                    self.interner.intern(&t.object),
                )
            })
            .collect();
        self.extend_ids(ids)
    }

    /// Bulk insert of id triples whose components are already interned in
    /// *this* graph (e.g. produced by [`Graph::for_each_match_ids`] or
    /// [`Graph::delta_ids_since`]) — the id-space fast path of
    /// [`Graph::extend_triples`], skipping term interning entirely.
    pub fn extend_ids(&mut self, mut ids: Vec<(TermId, TermId, TermId)>) -> usize {
        debug_assert!(ids
            .iter()
            .all(|&(s, p, o)| (s.max(p).max(o) as usize) < self.interner.terms.len()));
        ids.sort_unstable();
        ids.dedup();
        // Per-element B-tree operations cost O(batch · log n); a sorted
        // merge plus bulk rebuild is O(n) (std builds B-trees from sorted
        // input bottom-up), and folds the membership filter into the merge
        // for free. Rebuild once the batch is a meaningful fraction of the
        // index — the reasoner's per-pass merges — and point-insert for
        // small batches (incremental updates), where O(n) would lose.
        if ids.len() * 8 >= self.spo.len() {
            let mut merged: Vec<(Id, Id, Id)> = Vec::with_capacity(self.spo.len() + ids.len());
            let mut fresh: Vec<(Id, Id, Id)> = Vec::with_capacity(ids.len());
            let mut old = self.spo.iter().copied().peekable();
            let mut new = ids.into_iter().peekable();
            loop {
                match (old.peek(), new.peek()) {
                    (Some(&a), Some(&b)) => match a.cmp(&b) {
                        std::cmp::Ordering::Less => {
                            merged.push(a);
                            old.next();
                        }
                        std::cmp::Ordering::Equal => {
                            // Already present: keep one copy, not fresh.
                            merged.push(a);
                            old.next();
                            new.next();
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b);
                            fresh.push(b);
                            new.next();
                        }
                    },
                    (Some(_), None) => {
                        merged.extend(old);
                        break;
                    }
                    (None, _) => {
                        for b in new {
                            merged.push(b);
                            fresh.push(b);
                        }
                        break;
                    }
                }
            }
            self.spo = merged.into_iter().collect();
            if self.mode == IndexMode::Full {
                let mut pos: Vec<(Id, Id, Id)> = fresh.iter().map(|&(s, p, o)| (p, o, s)).collect();
                pos.sort_unstable();
                Self::merge_rebuild(&mut self.pos, pos);
                let mut osp: Vec<(Id, Id, Id)> = fresh.iter().map(|&(s, p, o)| (o, s, p)).collect();
                osp.sort_unstable();
                Self::merge_rebuild(&mut self.osp, osp);
            }
            let added = fresh.len();
            self.log.append(&mut fresh);
            added
        } else {
            ids.retain(|t| !self.spo.contains(t));
            let added = ids.len();
            self.spo.extend(ids.iter().copied());
            if self.mode == IndexMode::Full {
                self.pos.extend(ids.iter().map(|&(s, p, o)| (p, o, s)));
                self.osp.extend(ids.iter().map(|&(s, p, o)| (o, s, p)));
            }
            self.log.extend(ids);
            added
        }
    }

    /// Replace a sorted index with its merge against a sorted batch of new
    /// tuples known to be disjoint from it.
    fn merge_rebuild(index: &mut BTreeSet<(Id, Id, Id)>, sorted_new: Vec<(Id, Id, Id)>) {
        let mut merged: Vec<(Id, Id, Id)> = Vec::with_capacity(index.len() + sorted_new.len());
        let mut old = index.iter().copied().peekable();
        let mut new = sorted_new.into_iter().peekable();
        loop {
            match (old.peek(), new.peek()) {
                (Some(&a), Some(&b)) => {
                    if a <= b {
                        merged.push(a);
                        old.next();
                    } else {
                        merged.push(b);
                        new.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(old);
                    break;
                }
                (None, _) => {
                    merged.extend(new);
                    break;
                }
            }
        }
        *index = merged.into_iter().collect();
    }

    /// The graph's generation: a monotonic marker that advances on every
    /// successful insert. Pair with [`Graph::delta_since`] for a cheap
    /// delta snapshot ("what was added since the marker").
    pub fn generation(&self) -> u64 {
        self.log.len() as u64
    }

    /// Triples inserted since `generation` (a value previously returned by
    /// [`Graph::generation`]) that are still present, in insertion order.
    /// This is the delta-snapshot primitive the semi-naive reasoner and
    /// G-SACS incremental updates build on.
    pub fn delta_since(&self, generation: u64) -> Vec<Triple> {
        let start = (generation as usize).min(self.log.len());
        self.log[start..]
            .iter()
            .filter(|ids| self.removals == 0 || self.spo.contains(ids))
            .map(|&(s, p, o)| {
                Triple::new(
                    self.interner.resolve(s).clone(),
                    self.interner.resolve(p).clone(),
                    self.interner.resolve(o).clone(),
                )
            })
            .collect()
    }

    /// Triples inserted since `generation` that are still present, as raw
    /// id tuples in insertion order — the zero-copy sibling of
    /// [`Graph::delta_since`] for callers that work in id space (the
    /// semi-naive reasoner). With `generation == 0` this is a snapshot of
    /// the whole surviving graph.
    pub fn delta_ids_since(&self, generation: u64) -> Vec<(TermId, TermId, TermId)> {
        let start = (generation as usize).min(self.log.len());
        if self.removals == 0 {
            return self.log[start..].to_vec();
        }
        self.log[start..]
            .iter()
            .filter(|ids| self.spo.contains(ids))
            .copied()
            .collect()
    }

    /// Number of interned terms (ids are dense: every id < `term_count`).
    pub fn term_count(&self) -> usize {
        self.interner.terms.len()
    }

    /// The id of `term` if it is interned in this graph.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Intern `term` (a no-op returning the existing id when already
    /// interned). Interning alone does not add triples, so graph equality
    /// is unaffected.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        self.interner.intern(term)
    }

    /// The term behind an id previously obtained from this graph.
    ///
    /// # Panics
    /// Panics if `id` did not come from this graph's interner.
    pub fn term_of(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Whether the id triple `(s, p, o)` is in the graph.
    pub fn has_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s, p, o))
    }

    /// Visit every triple matching the id pattern — [`Graph::for_each_match`]
    /// without term resolution or cloning. `None` is a wildcard; ids must
    /// come from this graph (an id the graph never minted matches nothing
    /// only by virtue of appearing in no triple, which is always true).
    pub fn for_each_match_ids<F: FnMut(TermId, TermId, TermId)>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) {
        match (s, p, o, self.mode) {
            (Some(s), Some(p), Some(o), _) => {
                if self.spo.contains(&(s, p, o)) {
                    f(s, p, o);
                }
            }
            (Some(s), Some(p), None, _) => {
                for &(s2, p2, o2) in range2(&self.spo, s, p) {
                    f(s2, p2, o2);
                }
            }
            (Some(s), None, None, _) => {
                for &(s2, p2, o2) in range1(&self.spo, s) {
                    f(s2, p2, o2);
                }
            }
            (Some(s), None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range2(&self.osp, o, s) {
                    f(s2, p2, o2);
                }
            }
            (None, Some(p), Some(o), IndexMode::Full) => {
                for &(p2, o2, s2) in range2(&self.pos, p, o) {
                    f(s2, p2, o2);
                }
            }
            (None, Some(p), None, IndexMode::Full) => {
                for &(p2, o2, s2) in range1(&self.pos, p) {
                    f(s2, p2, o2);
                }
            }
            (None, None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range1(&self.osp, o) {
                    f(s2, p2, o2);
                }
            }
            (None, None, None, _) => {
                for &(s2, p2, o2) in &self.spo {
                    f(s2, p2, o2);
                }
            }
            // SpoOnly fallbacks: scan the primary index.
            (s, p, o, IndexMode::SpoOnly) => {
                for &(s2, p2, o2) in &self.spo {
                    if s.is_some_and(|x| x != s2)
                        || p.is_some_and(|x| x != p2)
                        || o.is_some_and(|x| x != o2)
                    {
                        continue;
                    }
                    f(s2, p2, o2);
                }
            }
        }
    }

    /// Exact cardinality of a pattern, computed from the id indexes
    /// without materializing any term: range length for indexed patterns,
    /// membership for fully-bound ones, total size for the full wildcard.
    /// Unknown bound terms estimate to zero. Used by the query planner to
    /// order basic graph patterns most-selective-first.
    pub fn estimate(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> usize {
        let resolve = |t: Option<&Term>| -> Result<Option<Id>, ()> {
            match t {
                Some(t) => self.interner.get(t).map(Some).ok_or(()),
                None => Ok(None),
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (resolve(subject), resolve(predicate), resolve(object)) else {
            return 0; // a bound term the graph has never seen matches nothing
        };
        match (s, p, o, self.mode) {
            (None, None, None, _) => self.spo.len(),
            (Some(s), Some(p), Some(o), _) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None, _) => range2(&self.spo, s, p).count(),
            (Some(s), None, None, _) => range1(&self.spo, s).count(),
            (Some(s), None, Some(o), IndexMode::Full) => range2(&self.osp, o, s).count(),
            (None, Some(p), Some(o), IndexMode::Full) => range2(&self.pos, p, o).count(),
            (None, Some(p), None, IndexMode::Full) => range1(&self.pos, p).count(),
            (None, None, Some(o), IndexMode::Full) => range1(&self.osp, o).count(),
            // SpoOnly fallback: count by scanning the primary index.
            (s, p, o, IndexMode::SpoOnly) => self
                .spo
                .iter()
                .filter(|&&(s2, p2, o2)| {
                    !(s.is_some_and(|x| x != s2)
                        || p.is_some_and(|x| x != p2)
                        || o.is_some_and(|x| x != o2))
                })
                .count(),
        }
    }

    /// Convenience: insert from three terms.
    pub fn add(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Remove a triple; returns true if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.removals += 1;
            if self.mode == IndexMode::Full {
                self.pos.remove(&(p, o, s));
                self.osp.remove(&(o, s, p));
            }
        }
        removed
    }

    /// Whether the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Whether `(subject, predicate, object)` is in the graph.
    pub fn has(&self, subject: &Term, predicate: &Term, object: &Term) -> bool {
        match (
            self.interner.get(subject),
            self.interner.get(predicate),
            self.interner.get(object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Mint a blank node label that is fresh for this graph.
    pub fn fresh_blank(&mut self) -> Term {
        loop {
            self.blank_counter += 1;
            let t = Term::blank(&format!("g{}", self.blank_counter));
            if self.interner.get(&t).is_none() {
                return t;
            }
        }
    }

    /// Iterate all triples (in SPO id order — deterministic for a given
    /// insertion history).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            Triple::new(
                self.interner.resolve(s).clone(),
                self.interner.resolve(p).clone(),
                self.interner.resolve(o).clone(),
            )
        })
    }

    /// All triples matching the pattern; `None` is a wildcard.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(subject, predicate, object, |t| out.push(t));
        out
    }

    /// Count triples matching the pattern without materializing them.
    pub fn count_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> usize {
        let mut n = 0;
        self.for_each_match(subject, predicate, object, |_| n += 1);
        n
    }

    /// Visit every triple matching the pattern.
    pub fn for_each_match<F: FnMut(Triple)>(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
        mut f: F,
    ) {
        // Resolve bound terms; an unknown bound term matches nothing.
        let s = match subject {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let p = match predicate {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };

        let emit = |this: &Graph, s: Id, p: Id, o: Id, f: &mut F| {
            f(Triple::new(
                this.interner.resolve(s).clone(),
                this.interner.resolve(p).clone(),
                this.interner.resolve(o).clone(),
            ));
        };

        match (s, p, o, self.mode) {
            (Some(s), Some(p), Some(o), _) => {
                if self.spo.contains(&(s, p, o)) {
                    emit(self, s, p, o, &mut f);
                }
            }
            (Some(s), Some(p), None, _) => {
                for &(s2, p2, o2) in range2(&self.spo, s, p) {
                    f(Triple::new(
                        self.interner.resolve(s2).clone(),
                        self.interner.resolve(p2).clone(),
                        self.interner.resolve(o2).clone(),
                    ));
                }
            }
            (Some(s), None, None, _) => {
                for &(s2, p2, o2) in range1(&self.spo, s) {
                    f(Triple::new(
                        self.interner.resolve(s2).clone(),
                        self.interner.resolve(p2).clone(),
                        self.interner.resolve(o2).clone(),
                    ));
                }
            }
            (Some(s), None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range2(&self.osp, o, s) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, Some(p), Some(o), IndexMode::Full) => {
                for &(p2, o2, s2) in range2(&self.pos, p, o) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, Some(p), None, IndexMode::Full) => {
                for &(p2, o2, s2) in range1(&self.pos, p) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range1(&self.osp, o) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, None, None, _) => {
                for &(s2, p2, o2) in &self.spo {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            // SpoOnly fallbacks: scan the primary index.
            (s, p, o, IndexMode::SpoOnly) => {
                for &(s2, p2, o2) in &self.spo {
                    if s.is_some_and(|x| x != s2)
                        || p.is_some_and(|x| x != p2)
                        || o.is_some_and(|x| x != o2)
                    {
                        continue;
                    }
                    emit(self, s2, p2, o2, &mut f);
                }
            }
        }
    }

    /// Objects of all `(subject, predicate, ?)` triples.
    pub fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(Some(subject), Some(predicate), None, |t| out.push(t.object));
        out
    }

    /// The single object of `(subject, predicate, ?)` if exactly one exists,
    /// else the first in index order, else `None`.
    pub fn object(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.objects(subject, predicate).into_iter().next()
    }

    /// Subjects of all `(?, predicate, object)` triples.
    pub fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(None, Some(predicate), Some(object), |t| out.push(t.subject));
        out
    }

    /// Distinct subjects occurring anywhere in the graph, in index order.
    pub fn all_subjects(&self) -> Vec<Term> {
        let mut last: Option<Id> = None;
        let mut out = Vec::new();
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                out.push(self.interner.resolve(s).clone());
                last = Some(s);
            }
        }
        out
    }

    /// Add every triple of `other` (blank labels kept as-is; callers that
    /// need hygienic merge use [`Graph::merge_renaming`]).
    pub fn extend_from(&mut self, other: &Graph) {
        self.extend_triples(other.iter());
    }

    /// Merge `other` into `self`, renaming `other`'s blank nodes to fresh
    /// labels so that accidental label collisions cannot conflate nodes.
    /// Returns the number of triples added.
    pub fn merge_renaming(&mut self, other: &Graph) -> usize {
        let mut rename: HashMap<String, Term> = HashMap::new();
        let mut added = 0;
        // Collect first: fresh_blank needs &mut self.
        let triples: Vec<Triple> = other.iter().collect();
        for t in triples {
            let map = |this: &mut Graph, rename: &mut HashMap<String, Term>, term: &Term| match term
            {
                Term::Blank(b) => rename
                    .entry(b.to_string())
                    .or_insert_with(|| this.fresh_blank())
                    .clone(),
                other => other.clone(),
            };
            let s = map(self, &mut rename, &t.subject);
            let o = map(self, &mut rename, &t.object);
            if self.insert(Triple::new(s, t.predicate.clone(), o)) {
                added += 1;
            }
        }
        added
    }

    /// Read an RDF collection (`rdf:first`/`rdf:rest` chain) starting at
    /// `head` into a vector. Returns `None` on malformed lists (missing
    /// `first`/`rest`, cycles); `rdf:nil` yields an empty list.
    pub fn read_list(&self, head: &Term) -> Option<Vec<Term>> {
        use crate::vocab::rdf;
        let mut out = Vec::new();
        let mut cur = head.clone();
        let mut seen = std::collections::HashSet::new();
        loop {
            if cur.as_iri() == Some(rdf::NIL) {
                return Some(out);
            }
            if !seen.insert(cur.clone()) {
                return None; // cycle
            }
            out.push(self.object(&cur, &Term::iri(rdf::FIRST))?);
            cur = self.object(&cur, &Term::iri(rdf::REST))?;
        }
    }

    /// Write `items` as an RDF collection; returns the head term
    /// (`rdf:nil` for an empty list).
    pub fn write_list(&mut self, items: &[Term]) -> Term {
        use crate::vocab::rdf;
        let mut tail = Term::iri(rdf::NIL);
        for item in items.iter().rev() {
            let cell = self.fresh_blank();
            self.add(cell.clone(), Term::iri(rdf::FIRST), item.clone());
            self.add(cell.clone(), Term::iri(rdf::REST), tail);
            tail = cell;
        }
        tail
    }

    /// Remove all triples whose subject is `subject`; returns how many.
    pub fn remove_subject(&mut self, subject: &Term) -> usize {
        let doomed = self.match_pattern(Some(subject), None, None);
        let n = doomed.len();
        for t in &doomed {
            self.remove(t);
        }
        n
    }
}

/// Equality is triple-set equality (interner ids and index mode are
/// representation details).
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.extend_triples(iter);
    }
}

/// Range over entries whose first component equals `a`.
fn range1(set: &BTreeSet<(Id, Id, Id)>, a: Id) -> impl Iterator<Item = &(Id, Id, Id)> {
    set.range((
        Bound::Included((a, 0, 0)),
        Bound::Included((a, Id::MAX, Id::MAX)),
    ))
}

/// Range over entries whose first two components equal `(a, b)`.
fn range2(set: &BTreeSet<(Id, Id, Id)>, a: Id, b: Id) -> impl Iterator<Item = &(Id, Id, Id)> {
    set.range((Bound::Included((a, b, 0)), Bound::Included((a, b, Id::MAX))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        g.insert(t("urn:a", "urn:p", "urn:y"));
        g.insert(t("urn:a", "urn:q", "urn:x"));
        g.insert(t("urn:b", "urn:p", "urn:x"));
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("urn:a", "urn:p", "urn:x")));
        assert!(!g.insert(t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_patterns_match() {
        let g = sample();
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        assert_eq!(g.match_pattern(None, None, None).len(), 4);
        assert_eq!(g.match_pattern(Some(&a), None, None).len(), 3);
        assert_eq!(g.match_pattern(None, Some(&p), None).len(), 3);
        assert_eq!(g.match_pattern(None, None, Some(&x)).len(), 3);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), None, Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(None, Some(&p), Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), Some(&x)).len(), 1);
    }

    #[test]
    fn spo_only_mode_gives_identical_answers() {
        let full = sample();
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(&full);
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
        ] {
            let mut f: Vec<_> = full.match_pattern(s, pp, o);
            let mut l: Vec<_> = lean.match_pattern(s, pp, o);
            f.sort();
            l.sort();
            assert_eq!(f, l);
        }
    }

    #[test]
    fn unknown_bound_term_matches_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(Some(&Term::iri("urn:zzz")), None, None)
            .is_empty());
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        assert!(g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert!(!g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:x"))).len(),
            2
        );
        assert_eq!(
            g.match_pattern(None, Some(&Term::iri("urn:p")), None).len(),
            2
        );
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = sample();
        let objs = g.objects(&Term::iri("urn:a"), &Term::iri("urn:p"));
        assert_eq!(objs.len(), 2);
        let subs = g.subjects(&Term::iri("urn:p"), &Term::iri("urn:x"));
        assert_eq!(subs.len(), 2);
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:p")).is_some());
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:q")).is_none());
    }

    #[test]
    fn all_subjects_is_distinct() {
        let g = sample();
        assert_eq!(g.all_subjects().len(), 2);
    }

    #[test]
    fn literals_participate_in_patterns() {
        let mut g = Graph::new();
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::integer(5));
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::string("5"));
        // Typed integer and plain string are distinct terms.
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::integer(5))).len(),
            1
        );
    }

    #[test]
    fn fresh_blank_avoids_collisions() {
        let mut g = Graph::new();
        g.add(Term::blank("g1"), Term::iri("urn:p"), Term::iri("urn:x"));
        let b = g.fresh_blank();
        assert_ne!(b, Term::blank("g1"));
    }

    #[test]
    fn merge_renaming_keeps_blank_nodes_distinct() {
        let mut g1 = Graph::new();
        g1.add(Term::blank("n"), Term::iri("urn:p"), Term::string("left"));
        let mut g2 = Graph::new();
        g2.add(Term::blank("n"), Term::iri("urn:p"), Term::string("right"));

        let mut merged = Graph::new();
        merged.merge_renaming(&g1);
        merged.merge_renaming(&g2);
        assert_eq!(merged.len(), 2);
        // The two _:n must not have been conflated into one subject.
        assert_eq!(merged.all_subjects().len(), 2);
    }

    #[test]
    fn merge_renaming_preserves_internal_coreference() {
        let mut g = Graph::new();
        g.add(Term::blank("n"), Term::iri("urn:p"), Term::string("v"));
        g.add(Term::blank("n"), Term::iri("urn:q"), Term::blank("m"));
        let mut target = Graph::new();
        let added = target.merge_renaming(&g);
        assert_eq!(added, 2);
        // _:n still has both properties under its new name.
        let subjects = target.all_subjects();
        let renamed_n = subjects
            .iter()
            .find(|s| {
                !target
                    .match_pattern(Some(s), Some(&Term::iri("urn:p")), None)
                    .is_empty()
            })
            .unwrap();
        assert!(!target
            .match_pattern(Some(renamed_n), Some(&Term::iri("urn:q")), None)
            .is_empty());
    }

    #[test]
    fn remove_subject_drops_all_its_triples() {
        let mut g = sample();
        assert_eq!(g.remove_subject(&Term::iri("urn:a")), 3);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn list_roundtrip() {
        let mut g = Graph::new();
        let items = vec![Term::iri("urn:a"), Term::integer(2), Term::string("c")];
        let head = g.write_list(&items);
        assert_eq!(g.read_list(&head), Some(items));
        assert_eq!(g.len(), 6);
        // Empty list is rdf:nil and reads back empty.
        let nil = g.write_list(&[]);
        assert_eq!(nil, Term::iri(crate::vocab::rdf::NIL));
        assert_eq!(g.read_list(&nil), Some(vec![]));
    }

    #[test]
    fn malformed_lists_are_none() {
        let mut g = Graph::new();
        // Missing rest.
        g.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        assert_eq!(g.read_list(&Term::blank("c")), None);
        // Cycle.
        let mut g2 = Graph::new();
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::REST),
            Term::blank("c"),
        );
        assert_eq!(g2.read_list(&Term::blank("c")), None);
    }

    #[test]
    fn generation_and_delta_snapshot() {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        let mark = g.generation();
        assert!(g.delta_since(mark).is_empty());
        // Duplicate insert does not advance the generation.
        g.insert(t("urn:a", "urn:p", "urn:x"));
        assert_eq!(g.generation(), mark);
        g.insert(t("urn:b", "urn:p", "urn:y"));
        g.insert(t("urn:c", "urn:p", "urn:z"));
        let delta = g.delta_since(mark);
        assert_eq!(
            delta,
            vec![t("urn:b", "urn:p", "urn:y"), t("urn:c", "urn:p", "urn:z")],
            "delta is the newly inserted triples, in insertion order"
        );
        // A triple removed after insertion drops out of the snapshot.
        g.remove(&t("urn:b", "urn:p", "urn:y"));
        assert_eq!(g.delta_since(mark), vec![t("urn:c", "urn:p", "urn:z")]);
        // Deltas from generation 0 cover the whole surviving graph.
        assert_eq!(g.delta_since(0).len(), g.len());
    }

    #[test]
    fn extend_triples_bulk_matches_insert() {
        let batch = vec![
            t("urn:a", "urn:p", "urn:x"),
            t("urn:b", "urn:p", "urn:x"),
            t("urn:a", "urn:p", "urn:x"), // in-batch duplicate
        ];
        let mut bulk = Graph::new();
        assert_eq!(bulk.extend_triples(batch.clone()), 2);
        assert_eq!(bulk.extend_triples(batch.clone()), 0, "re-merge is a no-op");
        let mut slow = Graph::new();
        for tr in batch {
            slow.insert(tr);
        }
        assert_eq!(bulk, slow);
        // Secondary indexes answer patterns after a bulk merge.
        assert_eq!(
            bulk.match_pattern(None, None, Some(&Term::iri("urn:x")))
                .len(),
            2
        );
        assert_eq!(bulk.delta_since(0).len(), 2);
    }

    #[test]
    fn estimate_matches_count_pattern() {
        let g = sample();
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        let zzz = Term::iri("urn:zzz");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
            (Some(&zzz), None, None),
        ] {
            assert_eq!(g.estimate(s, pp, o), g.count_pattern(s, pp, o));
        }
        // SpoOnly mode estimates identically via the scan fallback.
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(&g);
        assert_eq!(lean.estimate(None, Some(&p), None), 3);
    }

    #[test]
    fn id_pattern_matching_mirrors_term_matching() {
        for mode in [IndexMode::Full, IndexMode::SpoOnly] {
            let mut g = Graph::with_index_mode(mode);
            g.extend_from(&sample());
            let a = g.term_id(&Term::iri("urn:a")).unwrap();
            let p = g.term_id(&Term::iri("urn:p")).unwrap();
            let x = g.term_id(&Term::iri("urn:x")).unwrap();
            for (s, pp, o) in [
                (None, None, None),
                (Some(a), None, None),
                (None, Some(p), None),
                (None, None, Some(x)),
                (Some(a), Some(p), None),
                (Some(a), None, Some(x)),
                (None, Some(p), Some(x)),
                (Some(a), Some(p), Some(x)),
            ] {
                let mut by_id: Vec<Triple> = Vec::new();
                g.for_each_match_ids(s, pp, o, |s2, p2, o2| {
                    by_id.push(Triple::new(
                        g.term_of(s2).clone(),
                        g.term_of(p2).clone(),
                        g.term_of(o2).clone(),
                    ));
                });
                let mut by_term = g.match_pattern(
                    s.map(|id| g.term_of(id)),
                    pp.map(|id| g.term_of(id)),
                    o.map(|id| g.term_of(id)),
                );
                by_id.sort();
                by_term.sort();
                assert_eq!(by_id, by_term, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn term_id_roundtrip_and_interning() {
        let mut g = sample();
        let a = Term::iri("urn:a");
        let id = g.term_id(&a).unwrap();
        assert_eq!(g.term_of(id), &a);
        assert!(g.term_id(&Term::iri("urn:zzz")).is_none());
        // Interning a fresh term adds no triples and is idempotent.
        let before = (g.len(), g.generation());
        let fresh = g.intern_term(&Term::iri("urn:zzz"));
        assert_eq!(g.intern_term(&Term::iri("urn:zzz")), fresh);
        assert_eq!((g.len(), g.generation()), before);
        assert_eq!(fresh as usize + 1, g.term_count());
        // Equality ignores interner contents.
        assert_eq!(g, sample());
    }

    #[test]
    fn delta_ids_and_extend_ids_roundtrip() {
        let mut g = sample();
        let mark = g.generation();
        g.insert(t("urn:c", "urn:p", "urn:y"));
        let ids = g.delta_ids_since(mark);
        assert_eq!(ids.len(), 1);
        let (s, p, o) = ids[0];
        assert_eq!(g.term_of(s), &Term::iri("urn:c"));
        assert_eq!(g.term_of(p), &Term::iri("urn:p"));
        assert_eq!(g.term_of(o), &Term::iri("urn:y"));
        assert!(g.has_ids(s, p, o));
        // Full-graph snapshot matches iter().
        assert_eq!(g.delta_ids_since(0).len(), g.len());
        // Re-adding the same id triples is a no-op; a new combination of
        // existing ids lands in all indexes.
        assert_eq!(g.extend_ids(ids), 0);
        let b = g.term_id(&Term::iri("urn:b")).unwrap();
        assert_eq!(g.extend_ids(vec![(b, p, o), (b, p, o)]), 1);
        assert!(g.has(
            &Term::iri("urn:b"),
            &Term::iri("urn:p"),
            &Term::iri("urn:y")
        ));
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:y"))).len(),
            3
        );
    }

    #[test]
    fn from_and_extend_iterators() {
        let g: Graph = vec![t("urn:a", "urn:p", "urn:x")].into_iter().collect();
        assert_eq!(g.len(), 1);
        let mut g2 = Graph::new();
        g2.extend(g.iter());
        assert_eq!(g2.len(), 1);
    }
}
