//! In-memory triple store with term interning and three access-path indexes.
//!
//! Terms are interned into dense `u32` ids; triples are id-tuples kept in
//! ordered sets for the three access paths a basic graph pattern can need:
//! `SPO`, `POS` and `OSP`. Range scans over those sets answer any
//! subject/predicate/object pattern without a full scan.
//!
//! [`IndexMode::SpoOnly`] disables the two secondary indexes; it exists for
//! the index ablation in the benchmark suite (experiment E1c) and falls back
//! to scanning.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use crate::term::{Term, Triple};

/// Dense id assigned to an interned term.
type Id = u32;

/// Bidirectional term ↔ id table.
#[derive(Debug, Default, Clone)]
struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, Id>,
}

impl Interner {
    fn intern(&mut self, term: &Term) -> Id {
        match self.ids.entry(term.clone()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.terms.len() as Id;
                self.terms.push(term.clone());
                e.insert(id);
                id
            }
        }
    }

    fn get(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    fn resolve(&self, id: Id) -> &Term {
        &self.terms[id as usize]
    }
}

/// Which indexes the graph maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// SPO + POS + OSP (the default; any pattern is a range scan).
    Full,
    /// SPO only; `?s p o`-style patterns degrade to scans. For ablation.
    SpoOnly,
}

/// An in-memory RDF graph.
#[derive(Debug, Clone)]
pub struct Graph {
    interner: Interner,
    spo: BTreeSet<(Id, Id, Id)>,
    pos: BTreeSet<(Id, Id, Id)>,
    osp: BTreeSet<(Id, Id, Id)>,
    mode: IndexMode,
    blank_counter: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Empty graph with all three indexes.
    pub fn new() -> Graph {
        Graph::with_index_mode(IndexMode::Full)
    }

    /// Empty graph with an explicit index configuration.
    pub fn with_index_mode(mode: IndexMode) -> Graph {
        Graph {
            interner: Interner::default(),
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
            mode,
            blank_counter: 0,
        }
    }

    /// The index configuration of this graph.
    pub fn index_mode(&self) -> IndexMode {
        self.mode
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Insert a triple; returns true if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&triple.subject);
        let p = self.interner.intern(&triple.predicate);
        let o = self.interner.intern(&triple.object);
        let added = self.spo.insert((s, p, o));
        if added && self.mode == IndexMode::Full {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Convenience: insert from three terms.
    pub fn add(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Remove a triple; returns true if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let removed = self.spo.remove(&(s, p, o));
        if removed && self.mode == IndexMode::Full {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Whether the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Whether `(subject, predicate, object)` is in the graph.
    pub fn has(&self, subject: &Term, predicate: &Term, object: &Term) -> bool {
        match (
            self.interner.get(subject),
            self.interner.get(predicate),
            self.interner.get(object),
        ) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// Mint a blank node label that is fresh for this graph.
    pub fn fresh_blank(&mut self) -> Term {
        loop {
            self.blank_counter += 1;
            let t = Term::blank(&format!("g{}", self.blank_counter));
            if self.interner.get(&t).is_none() {
                return t;
            }
        }
    }

    /// Iterate all triples (in SPO id order — deterministic for a given
    /// insertion history).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            Triple::new(
                self.interner.resolve(s).clone(),
                self.interner.resolve(p).clone(),
                self.interner.resolve(o).clone(),
            )
        })
    }

    /// All triples matching the pattern; `None` is a wildcard.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(subject, predicate, object, |t| out.push(t));
        out
    }

    /// Count triples matching the pattern without materializing them.
    pub fn count_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> usize {
        let mut n = 0;
        self.for_each_match(subject, predicate, object, |_| n += 1);
        n
    }

    /// Visit every triple matching the pattern.
    pub fn for_each_match<F: FnMut(Triple)>(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
        mut f: F,
    ) {
        // Resolve bound terms; an unknown bound term matches nothing.
        let s = match subject {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let p = match predicate {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };

        let emit = |this: &Graph, s: Id, p: Id, o: Id, f: &mut F| {
            f(Triple::new(
                this.interner.resolve(s).clone(),
                this.interner.resolve(p).clone(),
                this.interner.resolve(o).clone(),
            ));
        };

        match (s, p, o, self.mode) {
            (Some(s), Some(p), Some(o), _) => {
                if self.spo.contains(&(s, p, o)) {
                    emit(self, s, p, o, &mut f);
                }
            }
            (Some(s), Some(p), None, _) => {
                for &(s2, p2, o2) in range2(&self.spo, s, p) {
                    f(Triple::new(
                        self.interner.resolve(s2).clone(),
                        self.interner.resolve(p2).clone(),
                        self.interner.resolve(o2).clone(),
                    ));
                }
            }
            (Some(s), None, None, _) => {
                for &(s2, p2, o2) in range1(&self.spo, s) {
                    f(Triple::new(
                        self.interner.resolve(s2).clone(),
                        self.interner.resolve(p2).clone(),
                        self.interner.resolve(o2).clone(),
                    ));
                }
            }
            (Some(s), None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range2(&self.osp, o, s) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, Some(p), Some(o), IndexMode::Full) => {
                for &(p2, o2, s2) in range2(&self.pos, p, o) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, Some(p), None, IndexMode::Full) => {
                for &(p2, o2, s2) in range1(&self.pos, p) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, None, Some(o), IndexMode::Full) => {
                for &(o2, s2, p2) in range1(&self.osp, o) {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            (None, None, None, _) => {
                for &(s2, p2, o2) in &self.spo {
                    emit(self, s2, p2, o2, &mut f);
                }
            }
            // SpoOnly fallbacks: scan the primary index.
            (s, p, o, IndexMode::SpoOnly) => {
                for &(s2, p2, o2) in &self.spo {
                    if s.is_some_and(|x| x != s2)
                        || p.is_some_and(|x| x != p2)
                        || o.is_some_and(|x| x != o2)
                    {
                        continue;
                    }
                    emit(self, s2, p2, o2, &mut f);
                }
            }
        }
    }

    /// Objects of all `(subject, predicate, ?)` triples.
    pub fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(Some(subject), Some(predicate), None, |t| out.push(t.object));
        out
    }

    /// The single object of `(subject, predicate, ?)` if exactly one exists,
    /// else the first in index order, else `None`.
    pub fn object(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.objects(subject, predicate).into_iter().next()
    }

    /// Subjects of all `(?, predicate, object)` triples.
    pub fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(None, Some(predicate), Some(object), |t| out.push(t.subject));
        out
    }

    /// Distinct subjects occurring anywhere in the graph, in index order.
    pub fn all_subjects(&self) -> Vec<Term> {
        let mut last: Option<Id> = None;
        let mut out = Vec::new();
        for &(s, _, _) in &self.spo {
            if last != Some(s) {
                out.push(self.interner.resolve(s).clone());
                last = Some(s);
            }
        }
        out
    }

    /// Add every triple of `other` (blank labels kept as-is; callers that
    /// need hygienic merge use [`Graph::merge_renaming`]).
    pub fn extend_from(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(t);
        }
    }

    /// Merge `other` into `self`, renaming `other`'s blank nodes to fresh
    /// labels so that accidental label collisions cannot conflate nodes.
    /// Returns the number of triples added.
    pub fn merge_renaming(&mut self, other: &Graph) -> usize {
        let mut rename: HashMap<String, Term> = HashMap::new();
        let mut added = 0;
        // Collect first: fresh_blank needs &mut self.
        let triples: Vec<Triple> = other.iter().collect();
        for t in triples {
            let map = |this: &mut Graph, rename: &mut HashMap<String, Term>, term: &Term| match term
            {
                Term::Blank(b) => rename
                    .entry(b.to_string())
                    .or_insert_with(|| this.fresh_blank())
                    .clone(),
                other => other.clone(),
            };
            let s = map(self, &mut rename, &t.subject);
            let o = map(self, &mut rename, &t.object);
            if self.insert(Triple::new(s, t.predicate.clone(), o)) {
                added += 1;
            }
        }
        added
    }

    /// Read an RDF collection (`rdf:first`/`rdf:rest` chain) starting at
    /// `head` into a vector. Returns `None` on malformed lists (missing
    /// `first`/`rest`, cycles); `rdf:nil` yields an empty list.
    pub fn read_list(&self, head: &Term) -> Option<Vec<Term>> {
        use crate::vocab::rdf;
        let mut out = Vec::new();
        let mut cur = head.clone();
        let mut seen = std::collections::HashSet::new();
        loop {
            if cur.as_iri() == Some(rdf::NIL) {
                return Some(out);
            }
            if !seen.insert(cur.clone()) {
                return None; // cycle
            }
            out.push(self.object(&cur, &Term::iri(rdf::FIRST))?);
            cur = self.object(&cur, &Term::iri(rdf::REST))?;
        }
    }

    /// Write `items` as an RDF collection; returns the head term
    /// (`rdf:nil` for an empty list).
    pub fn write_list(&mut self, items: &[Term]) -> Term {
        use crate::vocab::rdf;
        let mut tail = Term::iri(rdf::NIL);
        for item in items.iter().rev() {
            let cell = self.fresh_blank();
            self.add(cell.clone(), Term::iri(rdf::FIRST), item.clone());
            self.add(cell.clone(), Term::iri(rdf::REST), tail);
            tail = cell;
        }
        tail
    }

    /// Remove all triples whose subject is `subject`; returns how many.
    pub fn remove_subject(&mut self, subject: &Term) -> usize {
        let doomed = self.match_pattern(Some(subject), None, None);
        let n = doomed.len();
        for t in &doomed {
            self.remove(t);
        }
        n
    }
}

/// Equality is triple-set equality (interner ids and index mode are
/// representation details).
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

/// Range over entries whose first component equals `a`.
fn range1(set: &BTreeSet<(Id, Id, Id)>, a: Id) -> impl Iterator<Item = &(Id, Id, Id)> {
    set.range((
        Bound::Included((a, 0, 0)),
        Bound::Included((a, Id::MAX, Id::MAX)),
    ))
}

/// Range over entries whose first two components equal `(a, b)`.
fn range2(set: &BTreeSet<(Id, Id, Id)>, a: Id, b: Id) -> impl Iterator<Item = &(Id, Id, Id)> {
    set.range((Bound::Included((a, b, 0)), Bound::Included((a, b, Id::MAX))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        g.insert(t("urn:a", "urn:p", "urn:y"));
        g.insert(t("urn:a", "urn:q", "urn:x"));
        g.insert(t("urn:b", "urn:p", "urn:x"));
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("urn:a", "urn:p", "urn:x")));
        assert!(!g.insert(t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_patterns_match() {
        let g = sample();
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        assert_eq!(g.match_pattern(None, None, None).len(), 4);
        assert_eq!(g.match_pattern(Some(&a), None, None).len(), 3);
        assert_eq!(g.match_pattern(None, Some(&p), None).len(), 3);
        assert_eq!(g.match_pattern(None, None, Some(&x)).len(), 3);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), None, Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(None, Some(&p), Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), Some(&x)).len(), 1);
    }

    #[test]
    fn spo_only_mode_gives_identical_answers() {
        let full = sample();
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(&full);
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
        ] {
            let mut f: Vec<_> = full.match_pattern(s, pp, o);
            let mut l: Vec<_> = lean.match_pattern(s, pp, o);
            f.sort();
            l.sort();
            assert_eq!(f, l);
        }
    }

    #[test]
    fn unknown_bound_term_matches_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(Some(&Term::iri("urn:zzz")), None, None)
            .is_empty());
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        assert!(g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert!(!g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:x"))).len(),
            2
        );
        assert_eq!(
            g.match_pattern(None, Some(&Term::iri("urn:p")), None).len(),
            2
        );
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = sample();
        let objs = g.objects(&Term::iri("urn:a"), &Term::iri("urn:p"));
        assert_eq!(objs.len(), 2);
        let subs = g.subjects(&Term::iri("urn:p"), &Term::iri("urn:x"));
        assert_eq!(subs.len(), 2);
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:p")).is_some());
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:q")).is_none());
    }

    #[test]
    fn all_subjects_is_distinct() {
        let g = sample();
        assert_eq!(g.all_subjects().len(), 2);
    }

    #[test]
    fn literals_participate_in_patterns() {
        let mut g = Graph::new();
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::integer(5));
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::string("5"));
        // Typed integer and plain string are distinct terms.
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::integer(5))).len(),
            1
        );
    }

    #[test]
    fn fresh_blank_avoids_collisions() {
        let mut g = Graph::new();
        g.add(Term::blank("g1"), Term::iri("urn:p"), Term::iri("urn:x"));
        let b = g.fresh_blank();
        assert_ne!(b, Term::blank("g1"));
    }

    #[test]
    fn merge_renaming_keeps_blank_nodes_distinct() {
        let mut g1 = Graph::new();
        g1.add(Term::blank("n"), Term::iri("urn:p"), Term::string("left"));
        let mut g2 = Graph::new();
        g2.add(Term::blank("n"), Term::iri("urn:p"), Term::string("right"));

        let mut merged = Graph::new();
        merged.merge_renaming(&g1);
        merged.merge_renaming(&g2);
        assert_eq!(merged.len(), 2);
        // The two _:n must not have been conflated into one subject.
        assert_eq!(merged.all_subjects().len(), 2);
    }

    #[test]
    fn merge_renaming_preserves_internal_coreference() {
        let mut g = Graph::new();
        g.add(Term::blank("n"), Term::iri("urn:p"), Term::string("v"));
        g.add(Term::blank("n"), Term::iri("urn:q"), Term::blank("m"));
        let mut target = Graph::new();
        let added = target.merge_renaming(&g);
        assert_eq!(added, 2);
        // _:n still has both properties under its new name.
        let subjects = target.all_subjects();
        let renamed_n = subjects
            .iter()
            .find(|s| {
                !target
                    .match_pattern(Some(s), Some(&Term::iri("urn:p")), None)
                    .is_empty()
            })
            .unwrap();
        assert!(!target
            .match_pattern(Some(renamed_n), Some(&Term::iri("urn:q")), None)
            .is_empty());
    }

    #[test]
    fn remove_subject_drops_all_its_triples() {
        let mut g = sample();
        assert_eq!(g.remove_subject(&Term::iri("urn:a")), 3);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn list_roundtrip() {
        let mut g = Graph::new();
        let items = vec![Term::iri("urn:a"), Term::integer(2), Term::string("c")];
        let head = g.write_list(&items);
        assert_eq!(g.read_list(&head), Some(items));
        assert_eq!(g.len(), 6);
        // Empty list is rdf:nil and reads back empty.
        let nil = g.write_list(&[]);
        assert_eq!(nil, Term::iri(crate::vocab::rdf::NIL));
        assert_eq!(g.read_list(&nil), Some(vec![]));
    }

    #[test]
    fn malformed_lists_are_none() {
        let mut g = Graph::new();
        // Missing rest.
        g.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        assert_eq!(g.read_list(&Term::blank("c")), None);
        // Cycle.
        let mut g2 = Graph::new();
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::REST),
            Term::blank("c"),
        );
        assert_eq!(g2.read_list(&Term::blank("c")), None);
    }

    #[test]
    fn from_and_extend_iterators() {
        let g: Graph = vec![t("urn:a", "urn:p", "urn:x")].into_iter().collect();
        assert_eq!(g.len(), 1);
        let mut g2 = Graph::new();
        g2.extend(g.iter());
        assert_eq!(g2.len(), 1);
    }
}
