//! In-memory triple store: term interning over an LSM-style columnar core.
//!
//! Terms are interned into dense `u32` ids. Triples live in two places:
//!
//! * an immutable, sorted, id-columnar **run** (struct-of-arrays columns in
//!   `SPO`, `POS` and `OSP` order) answering any pattern with a binary
//!   search plus a contiguous column scan, and
//! * a small mutable **novelty** delta (ordered sets in the same three
//!   orders) absorbing point inserts, with a tombstone set for removals
//!   against the run.
//!
//! Reads merge run slices with the novelty range (two sorted sources) so
//! every scan still emits in index order — downstream code (the reasoner's
//! adjacency-based duplicate detection, `all_subjects`) relies on that.
//! When novelty outgrows a fraction of the run the graph **compacts**:
//! run ∪ delta − tombstones is rewritten into a fresh run in one ordered
//! pass per index. Bulk loads ([`Graph::extend_ids`]) skip the delta and
//! merge straight into a new run. The run is behind an `Arc`, so cloning a
//! graph shares the columns (copy-on-compact), which makes the secure-view
//! and reasoner clone-then-materialize pattern cheap.
//!
//! This is the binary-index/novelty split of LSM ledgers (Fluree's
//! `fluree-db-binary-index`), sized down to a single-run store: compaction
//! here is a merge, not a leveled hierarchy.
//!
//! [`IndexMode::SpoOnly`] disables the two secondary orders; it exists for
//! the index ablation in the benchmark suite (experiment E1c) and falls
//! back to scanning.

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use crate::term::{Term, Triple};

/// Dense id assigned to an interned term. Ids are stable for the life of
/// the graph (the interner is append-only) and are private to one graph:
/// an id from one graph is meaningless in another.
pub type TermId = u32;

type Id = TermId;
type IdTriple = (Id, Id, Id);

/// Bidirectional term ↔ id table.
#[derive(Debug, Default, Clone)]
struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, Id>,
}

impl Interner {
    fn intern(&mut self, term: &Term) -> Id {
        // Get-then-insert: the hit path (the overwhelmingly common case on
        // a materialized graph) must not clone the term just to probe.
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as Id;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    fn get(&self, term: &Term) -> Option<Id> {
        self.ids.get(term).copied()
    }

    fn resolve(&self, id: Id) -> &Term {
        &self.terms[id as usize]
    }
}

/// Which indexes the graph maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// SPO + POS + OSP (the default; any pattern is a range scan).
    Full,
    /// SPO only; `?s p o`-style patterns degrade to scans. For ablation.
    SpoOnly,
}

/// One sorted id-columnar index: three parallel columns (struct of
/// arrays), lexicographically sorted by `(a, b, c)`. Prefix ranges are
/// binary searches over the columns; the result of a search is a
/// contiguous slice of each column (zero-copy scans).
#[derive(Debug, Default)]
struct Cols {
    a: Vec<Id>,
    b: Vec<Id>,
    c: Vec<Id>,
    /// Lazy CSR-style offset directory over the first column: entry `v`
    /// is the index of the first tuple whose first column is `>= v`, so
    /// `dir[v]..dir[v + 1]` is the prefix range for `v` in O(1). Ids are
    /// dense interner indices, making the directory a flat vector rather
    /// than a hash map. Built on first probe after each rebuild; sized by
    /// the column's max value (the column is sorted, so that's `last()`).
    dir: OnceLock<Vec<u32>>,
}

impl Cols {
    fn len(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn get(&self, i: usize) -> IdTriple {
        (self.a[i], self.b[i], self.c[i])
    }

    fn from_sorted(tuples: &[IdTriple]) -> Cols {
        let mut cols = Cols {
            a: Vec::with_capacity(tuples.len()),
            b: Vec::with_capacity(tuples.len()),
            c: Vec::with_capacity(tuples.len()),
            dir: OnceLock::new(),
        };
        for &(a, b, c) in tuples {
            cols.a.push(a);
            cols.b.push(b);
            cols.c.push(c);
        }
        cols
    }

    fn dir(&self) -> &[u32] {
        self.dir.get_or_init(|| {
            let max = self.a.last().copied().unwrap_or(0) as usize;
            let mut dir = vec![0u32; max + 2];
            for &v in &self.a {
                dir[v as usize + 1] += 1;
            }
            for i in 1..dir.len() {
                dir[i] += dir[i - 1];
            }
            dir
        })
    }

    /// Index range of entries whose first column equals `x` — one O(1)
    /// directory lookup, no binary search. Point probes (reasoner joins,
    /// membership tests) hit this thousands of times per pass.
    fn range1(&self, x: Id) -> Range<usize> {
        let dir = self.dir();
        let xi = x as usize;
        if xi + 1 >= dir.len() {
            return self.len()..self.len();
        }
        dir[xi] as usize..dir[xi + 1] as usize
    }

    /// Index range of entries whose first two columns equal `(x, y)`.
    fn range2(&self, x: Id, y: Id) -> Range<usize> {
        let r = self.range1(x);
        let lo = r.start + self.b[r.clone()].partition_point(|&v| v < y);
        let hi = r.start + self.b[r].partition_point(|&v| v <= y);
        lo..hi
    }

    /// Whether the exact tuple is present (binary search).
    fn contains(&self, t: IdTriple) -> bool {
        let r = self.range2(t.0, t.1);
        self.c[r].binary_search(&t.2).is_ok()
    }

    /// First index `>= from` whose tuple is `>= t` — gallop forward then
    /// binary-search the overshoot. Callers sweeping *sorted* probes left
    /// to right get O(batch · log(run/batch)) membership filtering
    /// instead of a cold full-range binary search per probe.
    fn lower_bound_from(&self, from: usize, t: IdTriple) -> usize {
        let n = self.len();
        let mut lo = from;
        let mut hi = from;
        let mut step = 1usize;
        while hi < n && self.get(hi) < t {
            lo = hi + 1;
            hi += step;
            step <<= 1;
        }
        let hi = hi.min(n);
        let mut size = hi - lo;
        while size > 0 {
            let half = size / 2;
            let mid = lo + half;
            if self.get(mid) < t {
                lo = mid + 1;
                size -= half + 1;
            } else {
                size = half;
            }
        }
        lo
    }
}

/// Per-predicate statistics computed at compaction time — the query
/// planner's cost-model input. Counts describe the *run* (novelty is
/// folded in approximately by [`Graph::pred_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredStats {
    /// Triples with this predicate.
    pub triples: usize,
    /// Distinct subjects among them.
    pub distinct_subjects: usize,
    /// Distinct objects among them.
    pub distinct_objects: usize,
}

/// The immutable compacted base: the same triple set in up to three
/// column orders, plus per-predicate statistics. Shared across clones via
/// `Arc` (copy-on-compact).
#[derive(Debug, Default)]
struct Run {
    spo: Cols,
    pos: Cols,
    osp: Cols,
    /// Lazily computed on first planner query: materialization absorbs
    /// rebuild the run every pass and never consult statistics, so
    /// computing them eagerly would tax the hottest write path for the
    /// benefit of a reader that may never arrive.
    stats: OnceLock<HashMap<Id, PredStats>>,
}

impl Run {
    fn stats(&self) -> &HashMap<Id, PredStats> {
        self.stats.get_or_init(|| {
            // Full-mode runs keep every order (pos mirrors spo); SpoOnly
            // runs have an empty pos and fall back to the SPO scan.
            if self.pos.len() == self.spo.len() {
                stats_from_pos(&self.pos)
            } else {
                stats_from_spo(&self.spo)
            }
        })
    }
}

/// Per-predicate counts from the POS order (predicate-grouped: one pass,
/// adjacency gives distinct objects, a per-group sort gives subjects).
fn stats_from_pos(pos: &Cols) -> HashMap<Id, PredStats> {
    let mut stats: HashMap<Id, PredStats> = HashMap::new();
    let mut i = 0;
    let n = pos.len();
    let mut subjects: Vec<Id> = Vec::new();
    while i < n {
        let p = pos.a[i];
        let mut j = i;
        let mut distinct_objects = 0;
        let mut last_o: Option<Id> = None;
        subjects.clear();
        while j < n && pos.a[j] == p {
            if last_o != Some(pos.b[j]) {
                distinct_objects += 1;
                last_o = Some(pos.b[j]);
            }
            subjects.push(pos.c[j]);
            j += 1;
        }
        subjects.sort_unstable();
        subjects.dedup();
        stats.insert(
            p,
            PredStats {
                triples: j - i,
                distinct_subjects: subjects.len(),
                distinct_objects,
            },
        );
        i = j;
    }
    stats
}

/// Per-predicate counts from the SPO order (SpoOnly mode: predicates are
/// scattered in column `b`, so bucket then dedup).
fn stats_from_spo(spo: &Cols) -> HashMap<Id, PredStats> {
    let mut buckets: HashMap<Id, (Vec<Id>, Vec<Id>, usize)> = HashMap::new();
    for i in 0..spo.len() {
        let e = buckets.entry(spo.b[i]).or_default();
        e.0.push(spo.a[i]);
        e.1.push(spo.c[i]);
        e.2 += 1;
    }
    buckets
        .into_iter()
        .map(|(p, (mut ss, mut os, n))| {
            ss.sort_unstable();
            ss.dedup();
            os.sort_unstable();
            os.dedup();
            (
                p,
                PredStats {
                    triples: n,
                    distinct_subjects: ss.len(),
                    distinct_objects: os.len(),
                },
            )
        })
        .collect()
}

/// The mutable novelty overlay: the same small triple set in up to three
/// orders (ordered sets so range scans stay sorted).
#[derive(Debug, Default, Clone)]
struct Novelty {
    spo: BTreeSet<IdTriple>,
    pos: BTreeSet<IdTriple>,
    osp: BTreeSet<IdTriple>,
}

impl Novelty {
    fn len(&self) -> usize {
        self.spo.len()
    }

    fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    fn insert(&mut self, (s, p, o): IdTriple, mode: IndexMode) -> bool {
        let added = self.spo.insert((s, p, o));
        if added && mode == IndexMode::Full {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    fn remove(&mut self, (s, p, o): IdTriple, mode: IndexMode) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed && mode == IndexMode::Full {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
    }
}

/// Compaction threshold: rewrite the run once novelty (delta inserts +
/// tombstones) exceeds `max(NOVELTY_MIN, run/8)` entries. Below the
/// floor, merging at read time over a tiny delta is cheaper than churning
/// the run on every small update.
const NOVELTY_MIN: usize = 1024;

/// An in-memory RDF graph.
#[derive(Debug, Clone)]
pub struct Graph {
    interner: Interner,
    /// Immutable compacted base run (shared across clones).
    run: Arc<Run>,
    /// Inserts not yet compacted into the run. Disjoint from the run.
    delta: Novelty,
    /// Tombstones: run entries removed since the last compaction.
    /// A subset of the run, disjoint from `delta`.
    dead: Novelty,
    mode: IndexMode,
    blank_counter: u64,
    /// Append-only insertion log (id triples, in insertion order). The
    /// length of this log is the graph's *generation*; a slice of it is a
    /// delta snapshot — see [`Graph::generation`] / [`Graph::delta_since`].
    log: Vec<IdTriple>,
    /// Count of successful removals. While zero, every log entry is still
    /// present and unique, so delta snapshots skip their per-entry
    /// membership filter.
    removals: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new()
    }
}

impl Graph {
    /// Empty graph with all three indexes.
    pub fn new() -> Graph {
        Graph::with_index_mode(IndexMode::Full)
    }

    /// Empty graph with an explicit index configuration.
    pub fn with_index_mode(mode: IndexMode) -> Graph {
        Graph {
            interner: Interner::default(),
            run: Arc::new(Run::default()),
            delta: Novelty::default(),
            dead: Novelty::default(),
            mode,
            blank_counter: 0,
            log: Vec::new(),
            removals: 0,
        }
    }

    /// The index configuration of this graph.
    pub fn index_mode(&self) -> IndexMode {
        self.mode
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.run.spo.len() - self.dead.len() + self.delta.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of triples in the compacted run (diagnostics/tests).
    pub fn run_len(&self) -> usize {
        self.run.spo.len()
    }

    /// Size of the mutable novelty overlay: uncompacted inserts plus
    /// tombstones (diagnostics/tests).
    pub fn novelty_len(&self) -> usize {
        self.delta.len() + self.dead.len()
    }

    /// Whether the id triple is live (in the delta, or in the run and not
    /// tombstoned).
    #[inline]
    fn live(&self, t: IdTriple) -> bool {
        if self.delta.spo.contains(&t) {
            return true;
        }
        if !self.run.spo.contains(t) {
            return false;
        }
        !self.dead.spo.contains(&t)
    }

    /// Point-insert one id triple (already interned). Appends to the log
    /// on success. Does NOT trigger compaction — callers decide.
    fn insert_ids_one(&mut self, t: IdTriple) -> bool {
        if self.delta.spo.contains(&t) {
            return false;
        }
        if self.run.spo.contains(t) {
            // Present in the run: live unless tombstoned; a tombstoned
            // entry is resurrected by clearing the tombstone.
            if self.dead.remove(t, self.mode) {
                self.log.push(t);
                return true;
            }
            return false;
        }
        self.delta.insert(t, self.mode);
        self.log.push(t);
        true
    }

    /// Compact if novelty has outgrown its threshold.
    fn maybe_compact(&mut self) {
        if self.novelty_len() >= NOVELTY_MIN.max(self.run.spo.len() / 8) {
            self.compact();
        }
    }

    /// Merge run ∪ delta − tombstones into a fresh run and clear the
    /// novelty overlay. A no-op when there is no novelty. Sorted merges
    /// only — each order merges with its own overlay, so the run is never
    /// re-sorted.
    pub fn compact(&mut self) {
        if self.delta.is_empty() && self.dead.is_empty() {
            return;
        }
        self.rebuild(&[]);
    }

    /// Rebuild the run as `(run − dead) ∪ delta ∪ extra` (`extra` sorted
    /// in SPO order, disjoint from all live triples) and clear the
    /// overlay. One linear merge per order — only `extra`'s permutations
    /// are sorted, never the run itself.
    fn rebuild(&mut self, extra_spo: &[IdTriple]) {
        let spo_t = merge_live(&self.run.spo, &self.dead.spo, &self.delta.spo, extra_spo);
        let spo = Cols::from_sorted(&spo_t);
        let (pos, osp) = if self.mode == IndexMode::Full {
            let mut extra_pos: Vec<IdTriple> =
                extra_spo.iter().map(|&(s, p, o)| (p, o, s)).collect();
            extra_pos.sort_unstable();
            let pos_t = merge_live(&self.run.pos, &self.dead.pos, &self.delta.pos, &extra_pos);
            let mut extra_osp: Vec<IdTriple> =
                extra_spo.iter().map(|&(s, p, o)| (o, s, p)).collect();
            extra_osp.sort_unstable();
            let osp_t = merge_live(&self.run.osp, &self.dead.osp, &self.delta.osp, &extra_osp);
            (Cols::from_sorted(&pos_t), Cols::from_sorted(&osp_t))
        } else {
            (Cols::default(), Cols::default())
        };
        self.run = Arc::new(Run {
            spo,
            pos,
            osp,
            stats: OnceLock::new(),
        });
        self.delta.clear();
        self.dead.clear();
    }

    /// Replace the run with one built from `sorted_spo` alone (sorted,
    /// unique; the overlay must already be empty) — the checkpoint-decode
    /// path, where only the SPO order exists and the secondary orders are
    /// derived by one permutation sort.
    fn set_run(&mut self, sorted_spo: &[IdTriple]) {
        debug_assert!(self.delta.is_empty() && self.dead.is_empty());
        let spo = Cols::from_sorted(sorted_spo);
        let (pos, osp) = if self.mode == IndexMode::Full {
            let mut pos_t: Vec<IdTriple> = sorted_spo.iter().map(|&(s, p, o)| (p, o, s)).collect();
            pos_t.sort_unstable();
            let mut osp_t: Vec<IdTriple> = sorted_spo.iter().map(|&(s, p, o)| (o, s, p)).collect();
            osp_t.sort_unstable();
            (Cols::from_sorted(&pos_t), Cols::from_sorted(&osp_t))
        } else {
            (Cols::default(), Cols::default())
        };
        self.run = Arc::new(Run {
            spo,
            pos,
            osp,
            stats: OnceLock::new(),
        });
    }

    /// Insert a triple; returns true if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let s = self.interner.intern(&triple.subject);
        let p = self.interner.intern(&triple.predicate);
        let o = self.interner.intern(&triple.object);
        let added = self.insert_ids_one((s, p, o));
        if added {
            self.maybe_compact();
        }
        added
    }

    /// Bulk insert: intern every triple first, then merge the sorted new
    /// id-tuples straight into a fresh run (one ordered pass per index) —
    /// cheaper than per-triple `insert` for large batches (the reasoner's
    /// per-pass merges, ontology loads). Returns the number of triples
    /// actually added.
    pub fn extend_triples<I: IntoIterator<Item = Triple>>(&mut self, iter: I) -> usize {
        let ids = self.intern_batch(iter);
        self.extend_ids(ids)
    }

    /// [`Graph::extend_triples`] that always leaves the graph fully
    /// compacted (empty novelty overlay), folding the batch and any
    /// resident novelty into a fresh run in a single rebuild. For callers
    /// that rescan the whole graph right after absorbing — the naive
    /// reasoner's per-pass absorb, checkpoint staging — where paying one
    /// O(n) merge now is cheaper than merge-on-read later.
    pub fn extend_triples_compacting<I: IntoIterator<Item = Triple>>(&mut self, iter: I) -> usize {
        let mut ids = self.intern_batch(iter);
        ids.sort_unstable();
        ids.dedup();
        let fresh = self.filter_fresh(&ids);
        if fresh.is_empty() {
            self.compact();
            return 0;
        }
        self.rebuild(&fresh);
        let added = fresh.len();
        self.log.extend(fresh);
        added
    }

    fn intern_batch<I: IntoIterator<Item = Triple>>(&mut self, iter: I) -> Vec<IdTriple> {
        iter.into_iter()
            .map(|t| {
                (
                    self.interner.intern(&t.subject),
                    self.interner.intern(&t.predicate),
                    self.interner.intern(&t.object),
                )
            })
            .collect()
    }

    /// Bulk insert of id triples whose components are already interned in
    /// *this* graph (e.g. produced by [`Graph::for_each_match_ids`] or
    /// [`Graph::delta_ids_since`]) — the id-space fast path of
    /// [`Graph::extend_triples`], skipping term interning entirely.
    pub fn extend_ids(&mut self, mut ids: Vec<(TermId, TermId, TermId)>) -> usize {
        debug_assert!(ids
            .iter()
            .all(|&(s, p, o)| (s.max(p).max(o) as usize) < self.interner.terms.len()));
        ids.sort_unstable();
        ids.dedup();
        // Large batches (the reasoner's per-pass merges) go straight into
        // a new run: one membership filter plus one sorted merge per
        // index, O(n + batch). Small batches land in the novelty delta.
        if ids.len() * 8 >= self.len() {
            let fresh = self.filter_fresh(&ids);
            if fresh.is_empty() {
                return 0;
            }
            self.rebuild(&fresh);
            let added = fresh.len();
            self.log.extend(fresh);
            added
        } else {
            let mut added = 0;
            for t in ids {
                if self.insert_ids_one(t) {
                    added += 1;
                }
            }
            self.maybe_compact();
            added
        }
    }

    /// Sorted-merge membership filter: which of the sorted, deduped `ids`
    /// are not currently live. One galloping sweep over the run and one
    /// merge walk of the novelty replace a cold per-proposal `live()`
    /// binary search (the dominant cost of a reasoner absorb pass).
    fn filter_fresh(&self, ids: &[IdTriple]) -> Vec<IdTriple> {
        let mut fresh: Vec<IdTriple> = Vec::with_capacity(ids.len());
        let run = &self.run.spo;
        let mut delta_it = self.delta.spo.iter().peekable();
        let have_dead = !self.dead.spo.is_empty();
        let mut lo = 0usize;
        for &t in ids {
            while delta_it.next_if(|&&d| d < t).is_some() {}
            if delta_it.peek().is_some_and(|&&d| d == t) {
                continue;
            }
            lo = run.lower_bound_from(lo, t);
            let in_run = lo < run.len() && run.get(lo) == t;
            if in_run && !(have_dead && self.dead.spo.contains(&t)) {
                continue;
            }
            fresh.push(t);
        }
        fresh
    }

    /// The graph's generation: a monotonic marker that advances on every
    /// successful insert. Pair with [`Graph::delta_since`] for a cheap
    /// delta snapshot ("what was added since the marker").
    pub fn generation(&self) -> u64 {
        self.log.len() as u64
    }

    /// Triples inserted since `generation` (a value previously returned by
    /// [`Graph::generation`]) that are still present, in insertion order.
    /// This is the delta-snapshot primitive the semi-naive reasoner and
    /// G-SACS incremental updates build on.
    pub fn delta_since(&self, generation: u64) -> Vec<Triple> {
        let start = (generation as usize).min(self.log.len());
        self.log[start..]
            .iter()
            .filter(|&&ids| self.removals == 0 || self.live(ids))
            .map(|&(s, p, o)| {
                Triple::new(
                    self.interner.resolve(s).clone(),
                    self.interner.resolve(p).clone(),
                    self.interner.resolve(o).clone(),
                )
            })
            .collect()
    }

    /// Triples inserted since `generation` that are still present, as raw
    /// id tuples in insertion order — the zero-copy sibling of
    /// [`Graph::delta_since`] for callers that work in id space (the
    /// semi-naive reasoner). With `generation == 0` this is a snapshot of
    /// the whole surviving graph.
    pub fn delta_ids_since(&self, generation: u64) -> Vec<(TermId, TermId, TermId)> {
        let start = (generation as usize).min(self.log.len());
        if self.removals == 0 {
            return self.log[start..].to_vec();
        }
        self.log[start..]
            .iter()
            .filter(|&&ids| self.live(ids))
            .copied()
            .collect()
    }

    /// Number of interned terms (ids are dense: every id < `term_count`).
    pub fn term_count(&self) -> usize {
        self.interner.terms.len()
    }

    /// The id of `term` if it is interned in this graph.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Intern `term` (a no-op returning the existing id when already
    /// interned). Interning alone does not add triples, so graph equality
    /// is unaffected.
    pub fn intern_term(&mut self, term: &Term) -> TermId {
        self.interner.intern(term)
    }

    /// The term behind an id previously obtained from this graph.
    ///
    /// # Panics
    /// Panics if `id` did not come from this graph's interner.
    pub fn term_of(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Whether the id triple `(s, p, o)` is in the graph.
    pub fn has_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.live((s, p, o))
    }

    /// Visit every triple matching the id pattern — [`Graph::for_each_match`]
    /// without term resolution or cloning. `None` is a wildcard; ids must
    /// come from this graph (an id the graph never minted matches nothing
    /// only by virtue of appearing in no triple, which is always true).
    /// Emission is always in the serving index's sorted order.
    pub fn for_each_match_ids<F: FnMut(TermId, TermId, TermId)>(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: F,
    ) {
        match (s, p, o, self.mode) {
            (Some(s), Some(p), Some(o), _) => {
                if self.live((s, p, o)) {
                    f(s, p, o);
                }
            }
            (Some(s), Some(p), None, _) => {
                self.scan(Order::Spo, Prefix::Two(s, p), |(s2, p2, o2)| f(s2, p2, o2));
            }
            (Some(s), None, None, _) => {
                self.scan(Order::Spo, Prefix::One(s), |(s2, p2, o2)| f(s2, p2, o2));
            }
            (Some(s), None, Some(o), IndexMode::Full) => {
                self.scan(Order::Osp, Prefix::Two(o, s), |(o2, s2, p2)| f(s2, p2, o2));
            }
            (None, Some(p), Some(o), IndexMode::Full) => {
                self.scan(Order::Pos, Prefix::Two(p, o), |(p2, o2, s2)| f(s2, p2, o2));
            }
            (None, Some(p), None, IndexMode::Full) => {
                self.scan(Order::Pos, Prefix::One(p), |(p2, o2, s2)| f(s2, p2, o2));
            }
            (None, None, Some(o), IndexMode::Full) => {
                self.scan(Order::Osp, Prefix::One(o), |(o2, s2, p2)| f(s2, p2, o2));
            }
            (None, None, None, _) => {
                self.scan(Order::Spo, Prefix::All, |(s2, p2, o2)| f(s2, p2, o2));
            }
            // SpoOnly fallbacks: scan the primary index.
            (s, p, o, IndexMode::SpoOnly) => {
                self.scan(Order::Spo, Prefix::All, |(s2, p2, o2)| {
                    if s.is_some_and(|x| x != s2)
                        || p.is_some_and(|x| x != p2)
                        || o.is_some_and(|x| x != o2)
                    {
                        return;
                    }
                    f(s2, p2, o2);
                });
            }
        }
    }

    /// Exact cardinality of a pattern, computed from the id indexes
    /// without materializing any term: binary-searched range length for
    /// indexed patterns, membership for fully-bound ones, total size for
    /// the full wildcard. Unknown bound terms estimate to zero. Used by
    /// the query planner to order basic graph patterns
    /// most-selective-first.
    pub fn estimate(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> usize {
        let resolve = |t: Option<&Term>| -> Result<Option<Id>, ()> {
            match t {
                Some(t) => self.interner.get(t).map(Some).ok_or(()),
                None => Ok(None),
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (resolve(subject), resolve(predicate), resolve(object)) else {
            return 0; // a bound term the graph has never seen matches nothing
        };
        match (s, p, o, self.mode) {
            (None, None, None, _) => self.len(),
            (Some(s), Some(p), Some(o), _) => usize::from(self.live((s, p, o))),
            (Some(s), Some(p), None, _) => self.range_count(Order::Spo, Prefix::Two(s, p)),
            (Some(s), None, None, _) => self.range_count(Order::Spo, Prefix::One(s)),
            (Some(s), None, Some(o), IndexMode::Full) => {
                self.range_count(Order::Osp, Prefix::Two(o, s))
            }
            (None, Some(p), Some(o), IndexMode::Full) => {
                self.range_count(Order::Pos, Prefix::Two(p, o))
            }
            (None, Some(p), None, IndexMode::Full) => self.range_count(Order::Pos, Prefix::One(p)),
            (None, None, Some(o), IndexMode::Full) => self.range_count(Order::Osp, Prefix::One(o)),
            // SpoOnly fallback: count by scanning the primary index.
            (s, p, o, IndexMode::SpoOnly) => {
                let mut n = 0;
                self.for_each_match_ids(s, p, o, |_, _, _| n += 1);
                n
            }
        }
    }

    /// All live triples as id tuples in predicate-grouped (POS) order —
    /// the reasoner's bulk-seed fast path: already grouped for
    /// per-predicate batch dispatch, read straight off the POS columns
    /// with no sort. In SpoOnly mode (no POS index) the SPO order is
    /// collected and sorted by predicate instead.
    pub fn ids_by_predicate(&self) -> Vec<(TermId, TermId, TermId)> {
        let mut out = Vec::with_capacity(self.len());
        if self.mode == IndexMode::Full {
            if self.delta.is_empty() && self.dead.is_empty() {
                // Fully compacted: read the three POS columns straight
                // through, no merge machinery.
                let pos = &self.run.pos;
                out.extend(
                    pos.a
                        .iter()
                        .zip(&pos.b)
                        .zip(&pos.c)
                        .map(|((&p, &o), &s)| (s, p, o)),
                );
                return out;
            }
            self.scan(Order::Pos, Prefix::All, |(p, o, s)| out.push((s, p, o)));
        } else {
            self.scan(Order::Spo, Prefix::All, |(s, p, o)| out.push((s, p, o)));
            out.sort_unstable_by_key(|&(_, p, _)| p);
        }
        out
    }

    /// Planner statistics for a predicate: run-time exact triple counts
    /// folded with the novelty delta, distinct subject/object counts from
    /// the last compaction. Cheap (one hash lookup + one range count);
    /// distinct counts can lag the delta until the next compaction.
    pub fn pred_stats(&self, p: TermId) -> PredStats {
        let mut st = self.run.stats().get(&p).copied().unwrap_or_default();
        if !self.delta.is_empty() || !self.dead.is_empty() {
            let lo = (p, 0, 0);
            let hi = (p, Id::MAX, Id::MAX);
            if self.mode == IndexMode::Full {
                st.triples += self.delta.pos.range(lo..=hi).count();
                st.triples -= self.dead.pos.range(lo..=hi).count();
            } else {
                st.triples += self.delta.spo.iter().filter(|t| t.1 == p).count();
                st.triples -= self.dead.spo.iter().filter(|t| t.1 == p).count();
            }
        }
        st
    }

    /// Zero-copy columnar view of all `(?, p, ?)` triples: the POS run
    /// slice for `p` as parallel `(objects, subjects)` columns, sorted by
    /// object then subject. Available only when the predicate's range has
    /// no novelty overlay (the common state right after bulk loads and
    /// compactions) — callers fall back to a collected scan otherwise.
    pub fn pred_slices(&self, p: TermId) -> Option<(&[TermId], &[TermId])> {
        if self.mode != IndexMode::Full {
            return None;
        }
        let lo = (p, 0, 0);
        let hi = (p, Id::MAX, Id::MAX);
        if self.delta.pos.range(lo..=hi).next().is_some()
            || self.dead.pos.range(lo..=hi).next().is_some()
        {
            return None;
        }
        let r = self.run.pos.range1(p);
        Some((&self.run.pos.b[r.clone()], &self.run.pos.c[r]))
    }

    /// Convenience: insert from three terms.
    pub fn add(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(Triple::new(subject, predicate, object))
    }

    /// Remove a triple; returns true if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) else {
            return false;
        };
        let t = (s, p, o);
        let removed = if self.delta.spo.contains(&t) {
            self.delta.remove(t, self.mode)
        } else if self.run.spo.contains(t) && !self.dead.spo.contains(&t) {
            self.dead.insert(t, self.mode);
            true
        } else {
            false
        };
        if removed {
            self.removals += 1;
            self.maybe_compact();
        }
        removed
    }

    /// Whether the graph contains the triple.
    pub fn contains(&self, triple: &Triple) -> bool {
        match (
            self.interner.get(&triple.subject),
            self.interner.get(&triple.predicate),
            self.interner.get(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => self.live((s, p, o)),
            _ => false,
        }
    }

    /// Whether `(subject, predicate, object)` is in the graph.
    pub fn has(&self, subject: &Term, predicate: &Term, object: &Term) -> bool {
        match (
            self.interner.get(subject),
            self.interner.get(predicate),
            self.interner.get(object),
        ) {
            (Some(s), Some(p), Some(o)) => self.live((s, p, o)),
            _ => false,
        }
    }

    /// Mint a blank node label that is fresh for this graph.
    pub fn fresh_blank(&mut self) -> Term {
        loop {
            self.blank_counter += 1;
            let t = Term::blank(&format!("g{}", self.blank_counter));
            if self.interner.get(&t).is_none() {
                return t;
            }
        }
    }

    /// Iterate all triples (in SPO id order — deterministic for a given
    /// insertion history).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        ScanIter::new(
            &self.run.spo,
            0..self.run.spo.len(),
            &self.delta.spo,
            &self.dead.spo,
            ((0, 0, 0), (Id::MAX, Id::MAX, Id::MAX)),
        )
        .map(move |(s, p, o)| {
            Triple::new(
                self.interner.resolve(s).clone(),
                self.interner.resolve(p).clone(),
                self.interner.resolve(o).clone(),
            )
        })
    }

    /// All triples matching the pattern; `None` is a wildcard.
    pub fn match_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(subject, predicate, object, |t| out.push(t));
        out
    }

    /// Count triples matching the pattern without materializing them.
    pub fn count_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
    ) -> usize {
        let mut n = 0;
        self.for_each_match(subject, predicate, object, |_| n += 1);
        n
    }

    /// Visit every triple matching the pattern.
    pub fn for_each_match<F: FnMut(Triple)>(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Term>,
        object: Option<&Term>,
        mut f: F,
    ) {
        // Resolve bound terms; an unknown bound term matches nothing.
        let s = match subject {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let p = match predicate {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        let o = match object {
            Some(t) => match self.interner.get(t) {
                Some(id) => Some(id),
                None => return,
            },
            None => None,
        };
        self.for_each_match_ids(s, p, o, |s2, p2, o2| {
            f(Triple::new(
                self.interner.resolve(s2).clone(),
                self.interner.resolve(p2).clone(),
                self.interner.resolve(o2).clone(),
            ));
        });
    }

    /// Objects of all `(subject, predicate, ?)` triples.
    pub fn objects(&self, subject: &Term, predicate: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(Some(subject), Some(predicate), None, |t| out.push(t.object));
        out
    }

    /// The single object of `(subject, predicate, ?)` if exactly one exists,
    /// else the first in index order, else `None`.
    pub fn object(&self, subject: &Term, predicate: &Term) -> Option<Term> {
        self.objects(subject, predicate).into_iter().next()
    }

    /// Subjects of all `(?, predicate, object)` triples.
    pub fn subjects(&self, predicate: &Term, object: &Term) -> Vec<Term> {
        let mut out = Vec::new();
        self.for_each_match(None, Some(predicate), Some(object), |t| out.push(t.subject));
        out
    }

    /// Distinct subjects occurring anywhere in the graph, in index order.
    pub fn all_subjects(&self) -> Vec<Term> {
        let mut last: Option<Id> = None;
        let mut out = Vec::new();
        self.scan(Order::Spo, Prefix::All, |(s, _, _)| {
            if last != Some(s) {
                out.push(self.interner.resolve(s).clone());
                last = Some(s);
            }
        });
        out
    }

    /// Add every triple of `other` (blank labels kept as-is; callers that
    /// need hygienic merge use [`Graph::merge_renaming`]).
    pub fn extend_from(&mut self, other: &Graph) {
        self.extend_triples(other.iter());
    }

    /// Merge `other` into `self`, renaming `other`'s blank nodes to fresh
    /// labels so that accidental label collisions cannot conflate nodes.
    /// Returns the number of triples added.
    pub fn merge_renaming(&mut self, other: &Graph) -> usize {
        let mut rename: HashMap<String, Term> = HashMap::new();
        let mut added = 0;
        // Collect first: fresh_blank needs &mut self.
        let triples: Vec<Triple> = other.iter().collect();
        for t in triples {
            let map = |this: &mut Graph, rename: &mut HashMap<String, Term>, term: &Term| match term
            {
                Term::Blank(b) => rename
                    .entry(b.to_string())
                    .or_insert_with(|| this.fresh_blank())
                    .clone(),
                other => other.clone(),
            };
            let s = map(self, &mut rename, &t.subject);
            let o = map(self, &mut rename, &t.object);
            if self.insert(Triple::new(s, t.predicate.clone(), o)) {
                added += 1;
            }
        }
        added
    }

    /// Read an RDF collection (`rdf:first`/`rdf:rest` chain) starting at
    /// `head` into a vector. Returns `None` on malformed lists (missing
    /// `first`/`rest`, cycles); `rdf:nil` yields an empty list.
    pub fn read_list(&self, head: &Term) -> Option<Vec<Term>> {
        use crate::vocab::rdf;
        let mut out = Vec::new();
        let mut cur = head.clone();
        let mut seen = std::collections::HashSet::new();
        loop {
            if cur.as_iri() == Some(rdf::NIL) {
                return Some(out);
            }
            if !seen.insert(cur.clone()) {
                return None; // cycle
            }
            out.push(self.object(&cur, &Term::iri(rdf::FIRST))?);
            cur = self.object(&cur, &Term::iri(rdf::REST))?;
        }
    }

    /// Write `items` as an RDF collection; returns the head term
    /// (`rdf:nil` for an empty list).
    pub fn write_list(&mut self, items: &[Term]) -> Term {
        use crate::vocab::rdf;
        let mut tail = Term::iri(rdf::NIL);
        for item in items.iter().rev() {
            let cell = self.fresh_blank();
            self.add(cell.clone(), Term::iri(rdf::FIRST), item.clone());
            self.add(cell.clone(), Term::iri(rdf::REST), tail);
            tail = cell;
        }
        tail
    }

    /// Remove all triples whose subject is `subject`; returns how many.
    pub fn remove_subject(&mut self, subject: &Term) -> usize {
        let doomed = self.match_pattern(Some(subject), None, None);
        let n = doomed.len();
        for t in &doomed {
            self.remove(t);
        }
        n
    }

    /// Build a graph directly from decoded parts: an interner table
    /// (term id = position) and sorted, unique SPO id triples. The run is
    /// constructed without any per-triple set insertion — this is the
    /// checkpoint-load fast path of `crate::codec`.
    pub(crate) fn from_parts(
        terms: Vec<Term>,
        sorted_spo: Vec<IdTriple>,
        mode: IndexMode,
    ) -> Graph {
        debug_assert!(sorted_spo.windows(2).all(|w| w[0] < w[1]));
        let ids = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as Id))
            .collect();
        let mut g = Graph {
            interner: Interner { terms, ids },
            run: Arc::new(Run::default()),
            delta: Novelty::default(),
            dead: Novelty::default(),
            mode,
            blank_counter: 0,
            log: sorted_spo.clone(),
            removals: 0,
        };
        g.set_run(&sorted_spo);
        g
    }

    /// Exact size of a prefix range: run slice length, minus tombstones,
    /// plus delta entries, each found by binary search / range count.
    fn range_count(&self, order: Order, prefix: Prefix) -> usize {
        let (cols, delta, dead) = self.order_sets(order);
        let (range, bounds) = prefix.locate(cols);
        range.len() + delta.range(bounds.0..=bounds.1).count()
            - dead.range(bounds.0..=bounds.1).count()
    }

    fn order_sets(&self, order: Order) -> (&Cols, &BTreeSet<IdTriple>, &BTreeSet<IdTriple>) {
        match order {
            Order::Spo => (&self.run.spo, &self.delta.spo, &self.dead.spo),
            Order::Pos => (&self.run.pos, &self.delta.pos, &self.dead.pos),
            Order::Osp => (&self.run.osp, &self.delta.osp, &self.dead.osp),
        }
    }

    /// Merged scan over one order: run slice ∪ delta range − tombstones,
    /// emitted in that order's sorted tuple order.
    fn scan<F: FnMut(IdTriple)>(&self, order: Order, prefix: Prefix, mut f: F) {
        let (cols, delta, dead) = self.order_sets(order);
        let (range, bounds) = prefix.locate(cols);
        if delta.range(bounds.0..=bounds.1).next().is_none()
            && dead.range(bounds.0..=bounds.1).next().is_none()
        {
            // No overlay entries touch this prefix (the common case on a
            // compacted graph): walk the columns directly, skipping the
            // merge machinery and its per-item peeks.
            for ((&a, &b), &c) in cols.a[range.clone()]
                .iter()
                .zip(&cols.b[range.clone()])
                .zip(&cols.c[range])
            {
                f((a, b, c));
            }
            return;
        }
        for t in ScanIter::new(cols, range, delta, dead, bounds) {
            f(t);
        }
    }
}

/// Which column order a scan runs over.
#[derive(Clone, Copy)]
enum Order {
    Spo,
    Pos,
    Osp,
}

/// A prefix constraint in an order's own tuple space.
#[derive(Clone, Copy)]
enum Prefix {
    All,
    One(Id),
    Two(Id, Id),
}

impl Prefix {
    /// The run index range and the inclusive tuple bounds for delta /
    /// tombstone range scans.
    fn locate(self, cols: &Cols) -> (Range<usize>, (IdTriple, IdTriple)) {
        match self {
            Prefix::All => (0..cols.len(), ((0, 0, 0), (Id::MAX, Id::MAX, Id::MAX))),
            Prefix::One(a) => (cols.range1(a), ((a, 0, 0), (a, Id::MAX, Id::MAX))),
            Prefix::Two(a, b) => (cols.range2(a, b), ((a, b, 0), (a, b, Id::MAX))),
        }
    }
}

/// Sorted-merge iterator over a run slice and the novelty delta, skipping
/// tombstoned run entries. Tombstones are a subset of the run and
/// disjoint from the delta, so a three-pointer walk suffices.
struct ScanIter<'a> {
    cols: &'a Cols,
    idx: usize,
    end: usize,
    delta: std::iter::Peekable<std::collections::btree_set::Range<'a, IdTriple>>,
    dead: std::iter::Peekable<std::collections::btree_set::Range<'a, IdTriple>>,
}

impl<'a> ScanIter<'a> {
    fn new(
        cols: &'a Cols,
        range: Range<usize>,
        delta: &'a BTreeSet<IdTriple>,
        dead: &'a BTreeSet<IdTriple>,
        bounds: (IdTriple, IdTriple),
    ) -> ScanIter<'a> {
        ScanIter {
            cols,
            idx: range.start,
            end: range.end,
            delta: delta.range(bounds.0..=bounds.1).peekable(),
            dead: dead.range(bounds.0..=bounds.1).peekable(),
        }
    }
}

impl Iterator for ScanIter<'_> {
    type Item = IdTriple;

    fn next(&mut self) -> Option<IdTriple> {
        loop {
            if self.idx >= self.end {
                return self.delta.next().copied();
            }
            let base = self.cols.get(self.idx);
            // Tombstoned run entries are skipped; the tombstone iterator
            // advances in lockstep (both sorted, dead ⊆ run).
            if let Some(&&d) = self.dead.peek() {
                if d == base {
                    self.dead.next();
                    self.idx += 1;
                    continue;
                }
            }
            match self.delta.peek() {
                Some(&&n) if n < base => {
                    self.delta.next();
                    return Some(n);
                }
                _ => {
                    self.idx += 1;
                    return Some(base);
                }
            }
        }
    }
}

/// Merge `(run − dead) ∪ delta ∪ extra` into one sorted vector. All four
/// inputs are sorted; `dead ⊆ run`; `delta` and `extra` are disjoint from
/// the run and from each other.
fn merge_live(
    run: &Cols,
    dead: &BTreeSet<IdTriple>,
    delta: &BTreeSet<IdTriple>,
    extra: &[IdTriple],
) -> Vec<IdTriple> {
    let mut out: Vec<IdTriple> =
        Vec::with_capacity(run.len() + delta.len() + extra.len() - dead.len());
    let mut dead_it = dead.iter().peekable();
    let mut delta_it = delta.iter().peekable();
    let mut extra_it = extra.iter().peekable();
    // Walk the run; before each run entry emit any overlay entries smaller
    // than it; skip tombstoned run entries. A final drain empties the
    // overlays past the end of the run.
    for i in 0..run.len() {
        let base = run.get(i);
        loop {
            let next_from_delta = match (delta_it.peek(), extra_it.peek()) {
                (Some(&&d), Some(&&e)) => {
                    if d.min(e) >= base {
                        break;
                    }
                    d <= e
                }
                (Some(&&d), None) => {
                    if d >= base {
                        break;
                    }
                    true
                }
                (None, Some(&&e)) => {
                    if e >= base {
                        break;
                    }
                    false
                }
                (None, None) => break,
            };
            let v = if next_from_delta {
                *delta_it.next().unwrap()
            } else {
                *extra_it.next().unwrap()
            };
            out.push(v);
        }
        if let Some(&&dd) = dead_it.peek() {
            if dd == base {
                dead_it.next();
                continue;
            }
        }
        out.push(base);
    }
    loop {
        let next_from_delta = match (delta_it.peek(), extra_it.peek()) {
            (Some(&&d), Some(&&e)) => d <= e,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let v = if next_from_delta {
            *delta_it.next().unwrap()
        } else {
            *extra_it.next().unwrap()
        };
        out.push(v);
    }
    out
}

/// Equality is triple-set equality (interner ids and index mode are
/// representation details).
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|t| other.contains(&t))
    }
}

impl Eq for Graph {}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.extend_triples(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        g.insert(t("urn:a", "urn:p", "urn:y"));
        g.insert(t("urn:a", "urn:q", "urn:x"));
        g.insert(t("urn:b", "urn:p", "urn:x"));
        g
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut g = Graph::new();
        assert!(g.insert(t("urn:a", "urn:p", "urn:x")));
        assert!(!g.insert(t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn all_eight_patterns_match() {
        let g = sample();
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        assert_eq!(g.match_pattern(None, None, None).len(), 4);
        assert_eq!(g.match_pattern(Some(&a), None, None).len(), 3);
        assert_eq!(g.match_pattern(None, Some(&p), None).len(), 3);
        assert_eq!(g.match_pattern(None, None, Some(&x)).len(), 3);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), None).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), None, Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(None, Some(&p), Some(&x)).len(), 2);
        assert_eq!(g.match_pattern(Some(&a), Some(&p), Some(&x)).len(), 1);
    }

    #[test]
    fn patterns_survive_compaction_and_novelty_mix() {
        // Same answers whether triples live in the run, the delta, or
        // both (compact between inserts to spread them out).
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        g.insert(t("urn:a", "urn:p", "urn:y"));
        g.compact();
        g.insert(t("urn:a", "urn:q", "urn:x"));
        g.insert(t("urn:b", "urn:p", "urn:x"));
        assert_eq!(g.run_len(), 2);
        assert_eq!(g.novelty_len(), 2);
        let reference = sample();
        for (s, p, o) in [
            (None, None, None),
            (Some(Term::iri("urn:a")), None, None),
            (None, Some(Term::iri("urn:p")), None),
            (None, None, Some(Term::iri("urn:x"))),
            (Some(Term::iri("urn:a")), Some(Term::iri("urn:p")), None),
        ] {
            let mut got = g.match_pattern(s.as_ref(), p.as_ref(), o.as_ref());
            let mut want = reference.match_pattern(s.as_ref(), p.as_ref(), o.as_ref());
            got.sort();
            want.sort();
            assert_eq!(got, want);
        }
        g.compact();
        assert_eq!(g.novelty_len(), 0);
        assert_eq!(g, reference);
    }

    #[test]
    fn scans_emit_in_index_order() {
        // The reasoner's duplicate detection relies on sorted emission
        // even when results come from both the run and the delta.
        let mut g = Graph::new();
        g.insert(t("urn:b", "urn:p", "urn:x"));
        g.insert(t("urn:d", "urn:p", "urn:x"));
        g.compact();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        g.insert(t("urn:c", "urn:p", "urn:x"));
        let p = g.term_id(&Term::iri("urn:p")).unwrap();
        let mut subjects = Vec::new();
        g.for_each_match_ids(None, Some(p), None, |s, _, _| subjects.push(s));
        let mut sorted = subjects.clone();
        sorted.sort_unstable();
        assert_eq!(subjects, sorted, "POS scan must emit in index order");
        let mut all = Vec::new();
        g.for_each_match_ids(None, None, None, |s, p2, o| all.push((s, p2, o)));
        let mut all_sorted = all.clone();
        all_sorted.sort_unstable();
        assert_eq!(all, all_sorted, "SPO scan must emit in index order");
    }

    #[test]
    fn tombstone_then_reinsert_resurrects() {
        let mut g = sample();
        g.compact();
        let tr = t("urn:a", "urn:p", "urn:x");
        assert!(g.remove(&tr));
        assert!(!g.contains(&tr));
        assert_eq!(g.len(), 3);
        assert!(g.insert(tr.clone()));
        assert!(g.contains(&tr));
        assert_eq!(g.len(), 4);
        assert_eq!(g, sample());
    }

    #[test]
    fn pred_stats_counts() {
        let mut g = sample();
        g.compact();
        let p = g.term_id(&Term::iri("urn:p")).unwrap();
        let st = g.pred_stats(p);
        assert_eq!(st.triples, 3);
        assert_eq!(st.distinct_subjects, 2); // urn:a, urn:b
        assert_eq!(st.distinct_objects, 2); // urn:x, urn:y
                                            // Novelty folds into the triple count immediately.
        g.insert(t("urn:c", "urn:p", "urn:z"));
        assert_eq!(g.pred_stats(p).triples, 4);
    }

    #[test]
    fn pred_slices_zero_copy_when_compacted() {
        let mut g = sample();
        g.compact();
        let p = g.term_id(&Term::iri("urn:p")).unwrap();
        let (objects, subjects) = g.pred_slices(p).expect("compacted: slices available");
        assert_eq!(objects.len(), 3);
        assert_eq!(subjects.len(), 3);
        assert!(objects.windows(2).all(|w| w[0] <= w[1]));
        // A delta insert under this predicate disables the fast path...
        g.insert(t("urn:c", "urn:p", "urn:z"));
        assert!(g.pred_slices(p).is_none());
        // ...until compaction folds it in.
        g.compact();
        assert_eq!(g.pred_slices(p).unwrap().0.len(), 4);
    }

    #[test]
    fn spo_only_mode_gives_identical_answers() {
        let full = sample();
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(&full);
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
        ] {
            let mut f: Vec<_> = full.match_pattern(s, pp, o);
            let mut l: Vec<_> = lean.match_pattern(s, pp, o);
            f.sort();
            l.sort();
            assert_eq!(f, l);
        }
    }

    #[test]
    fn unknown_bound_term_matches_nothing() {
        let g = sample();
        assert!(g
            .match_pattern(Some(&Term::iri("urn:zzz")), None, None)
            .is_empty());
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        assert!(g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert!(!g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:x"))).len(),
            2
        );
        assert_eq!(
            g.match_pattern(None, Some(&Term::iri("urn:p")), None).len(),
            2
        );
    }

    #[test]
    fn remove_from_run_updates_all_indexes() {
        let mut g = sample();
        g.compact();
        assert!(g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert!(!g.remove(&t("urn:a", "urn:p", "urn:x")));
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:x"))).len(),
            2
        );
        assert_eq!(
            g.match_pattern(None, Some(&Term::iri("urn:p")), None).len(),
            2
        );
        assert_eq!(g.estimate(None, Some(&Term::iri("urn:p")), None), 2);
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let g = sample();
        let objs = g.objects(&Term::iri("urn:a"), &Term::iri("urn:p"));
        assert_eq!(objs.len(), 2);
        let subs = g.subjects(&Term::iri("urn:p"), &Term::iri("urn:x"));
        assert_eq!(subs.len(), 2);
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:p")).is_some());
        assert!(g.object(&Term::iri("urn:b"), &Term::iri("urn:q")).is_none());
    }

    #[test]
    fn all_subjects_is_distinct() {
        let g = sample();
        assert_eq!(g.all_subjects().len(), 2);
    }

    #[test]
    fn literals_participate_in_patterns() {
        let mut g = Graph::new();
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::integer(5));
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::string("5"));
        // Typed integer and plain string are distinct terms.
        assert_eq!(g.len(), 2);
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::integer(5))).len(),
            1
        );
    }

    #[test]
    fn fresh_blank_avoids_collisions() {
        let mut g = Graph::new();
        g.add(Term::blank("g1"), Term::iri("urn:p"), Term::iri("urn:x"));
        let b = g.fresh_blank();
        assert_ne!(b, Term::blank("g1"));
    }

    #[test]
    fn merge_renaming_keeps_blank_nodes_distinct() {
        let mut g1 = Graph::new();
        g1.add(Term::blank("n"), Term::iri("urn:p"), Term::string("left"));
        let mut g2 = Graph::new();
        g2.add(Term::blank("n"), Term::iri("urn:p"), Term::string("right"));

        let mut merged = Graph::new();
        merged.merge_renaming(&g1);
        merged.merge_renaming(&g2);
        assert_eq!(merged.len(), 2);
        // The two _:n must not have been conflated into one subject.
        assert_eq!(merged.all_subjects().len(), 2);
    }

    #[test]
    fn merge_renaming_preserves_internal_coreference() {
        let mut g = Graph::new();
        g.add(Term::blank("n"), Term::iri("urn:p"), Term::string("v"));
        g.add(Term::blank("n"), Term::iri("urn:q"), Term::blank("m"));
        let mut target = Graph::new();
        let added = target.merge_renaming(&g);
        assert_eq!(added, 2);
        // _:n still has both properties under its new name.
        let subjects = target.all_subjects();
        let renamed_n = subjects
            .iter()
            .find(|s| {
                !target
                    .match_pattern(Some(s), Some(&Term::iri("urn:p")), None)
                    .is_empty()
            })
            .unwrap();
        assert!(!target
            .match_pattern(Some(renamed_n), Some(&Term::iri("urn:q")), None)
            .is_empty());
    }

    #[test]
    fn remove_subject_drops_all_its_triples() {
        let mut g = sample();
        assert_eq!(g.remove_subject(&Term::iri("urn:a")), 3);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn list_roundtrip() {
        let mut g = Graph::new();
        let items = vec![Term::iri("urn:a"), Term::integer(2), Term::string("c")];
        let head = g.write_list(&items);
        assert_eq!(g.read_list(&head), Some(items));
        assert_eq!(g.len(), 6);
        // Empty list is rdf:nil and reads back empty.
        let nil = g.write_list(&[]);
        assert_eq!(nil, Term::iri(crate::vocab::rdf::NIL));
        assert_eq!(g.read_list(&nil), Some(vec![]));
    }

    #[test]
    fn malformed_lists_are_none() {
        let mut g = Graph::new();
        // Missing rest.
        g.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        assert_eq!(g.read_list(&Term::blank("c")), None);
        // Cycle.
        let mut g2 = Graph::new();
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::FIRST),
            Term::iri("urn:x"),
        );
        g2.add(
            Term::blank("c"),
            Term::iri(crate::vocab::rdf::REST),
            Term::blank("c"),
        );
        assert_eq!(g2.read_list(&Term::blank("c")), None);
    }

    #[test]
    fn generation_and_delta_snapshot() {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        let mark = g.generation();
        assert!(g.delta_since(mark).is_empty());
        // Duplicate insert does not advance the generation.
        g.insert(t("urn:a", "urn:p", "urn:x"));
        assert_eq!(g.generation(), mark);
        g.insert(t("urn:b", "urn:p", "urn:y"));
        g.insert(t("urn:c", "urn:p", "urn:z"));
        let delta = g.delta_since(mark);
        assert_eq!(
            delta,
            vec![t("urn:b", "urn:p", "urn:y"), t("urn:c", "urn:p", "urn:z")],
            "delta is the newly inserted triples, in insertion order"
        );
        // A triple removed after insertion drops out of the snapshot.
        g.remove(&t("urn:b", "urn:p", "urn:y"));
        assert_eq!(g.delta_since(mark), vec![t("urn:c", "urn:p", "urn:z")]);
        // Deltas from generation 0 cover the whole surviving graph.
        assert_eq!(g.delta_since(0).len(), g.len());
    }

    #[test]
    fn delta_snapshot_survives_compaction() {
        let mut g = Graph::new();
        g.insert(t("urn:a", "urn:p", "urn:x"));
        let mark = g.generation();
        g.insert(t("urn:b", "urn:p", "urn:y"));
        g.compact();
        g.insert(t("urn:c", "urn:p", "urn:z"));
        assert_eq!(
            g.delta_since(mark),
            vec![t("urn:b", "urn:p", "urn:y"), t("urn:c", "urn:p", "urn:z")],
            "generation markers span compactions"
        );
        g.remove(&t("urn:b", "urn:p", "urn:y"));
        g.compact();
        assert_eq!(g.delta_since(mark), vec![t("urn:c", "urn:p", "urn:z")]);
    }

    #[test]
    fn extend_triples_bulk_matches_insert() {
        let batch = vec![
            t("urn:a", "urn:p", "urn:x"),
            t("urn:b", "urn:p", "urn:x"),
            t("urn:a", "urn:p", "urn:x"), // in-batch duplicate
        ];
        let mut bulk = Graph::new();
        assert_eq!(bulk.extend_triples(batch.clone()), 2);
        assert_eq!(bulk.extend_triples(batch.clone()), 0, "re-merge is a no-op");
        let mut slow = Graph::new();
        for tr in batch {
            slow.insert(tr);
        }
        assert_eq!(bulk, slow);
        // Secondary indexes answer patterns after a bulk merge.
        assert_eq!(
            bulk.match_pattern(None, None, Some(&Term::iri("urn:x")))
                .len(),
            2
        );
        assert_eq!(bulk.delta_since(0).len(), 2);
    }

    #[test]
    fn estimate_matches_count_pattern() {
        let g = sample();
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        let zzz = Term::iri("urn:zzz");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
            (Some(&zzz), None, None),
        ] {
            assert_eq!(g.estimate(s, pp, o), g.count_pattern(s, pp, o));
        }
        // SpoOnly mode estimates identically via the scan fallback.
        let mut lean = Graph::with_index_mode(IndexMode::SpoOnly);
        lean.extend_from(&g);
        assert_eq!(lean.estimate(None, Some(&p), None), 3);
    }

    #[test]
    fn estimate_exact_across_run_delta_and_tombstones() {
        let mut g = sample();
        g.compact();
        g.insert(t("urn:a", "urn:p", "urn:z"));
        g.remove(&t("urn:a", "urn:p", "urn:x"));
        let a = Term::iri("urn:a");
        let p = Term::iri("urn:p");
        let x = Term::iri("urn:x");
        let z = Term::iri("urn:z");
        for (s, pp, o) in [
            (None, None, None),
            (Some(&a), None, None),
            (None, Some(&p), None),
            (None, None, Some(&x)),
            (None, None, Some(&z)),
            (Some(&a), Some(&p), None),
            (Some(&a), None, Some(&x)),
            (None, Some(&p), Some(&x)),
            (Some(&a), Some(&p), Some(&x)),
        ] {
            assert_eq!(g.estimate(s, pp, o), g.count_pattern(s, pp, o));
        }
    }

    #[test]
    fn id_pattern_matching_mirrors_term_matching() {
        for mode in [IndexMode::Full, IndexMode::SpoOnly] {
            let mut g = Graph::with_index_mode(mode);
            g.extend_from(&sample());
            let a = g.term_id(&Term::iri("urn:a")).unwrap();
            let p = g.term_id(&Term::iri("urn:p")).unwrap();
            let x = g.term_id(&Term::iri("urn:x")).unwrap();
            for (s, pp, o) in [
                (None, None, None),
                (Some(a), None, None),
                (None, Some(p), None),
                (None, None, Some(x)),
                (Some(a), Some(p), None),
                (Some(a), None, Some(x)),
                (None, Some(p), Some(x)),
                (Some(a), Some(p), Some(x)),
            ] {
                let mut by_id: Vec<Triple> = Vec::new();
                g.for_each_match_ids(s, pp, o, |s2, p2, o2| {
                    by_id.push(Triple::new(
                        g.term_of(s2).clone(),
                        g.term_of(p2).clone(),
                        g.term_of(o2).clone(),
                    ));
                });
                let mut by_term = g.match_pattern(
                    s.map(|id| g.term_of(id)),
                    pp.map(|id| g.term_of(id)),
                    o.map(|id| g.term_of(id)),
                );
                by_id.sort();
                by_term.sort();
                assert_eq!(by_id, by_term, "mode {mode:?}");
            }
        }
    }

    #[test]
    fn term_id_roundtrip_and_interning() {
        let mut g = sample();
        let a = Term::iri("urn:a");
        let id = g.term_id(&a).unwrap();
        assert_eq!(g.term_of(id), &a);
        assert!(g.term_id(&Term::iri("urn:zzz")).is_none());
        // Interning a fresh term adds no triples and is idempotent.
        let before = (g.len(), g.generation());
        let fresh = g.intern_term(&Term::iri("urn:zzz"));
        assert_eq!(g.intern_term(&Term::iri("urn:zzz")), fresh);
        assert_eq!((g.len(), g.generation()), before);
        assert_eq!(fresh as usize + 1, g.term_count());
        // Equality ignores interner contents.
        assert_eq!(g, sample());
    }

    #[test]
    fn delta_ids_and_extend_ids_roundtrip() {
        let mut g = sample();
        let mark = g.generation();
        g.insert(t("urn:c", "urn:p", "urn:y"));
        let ids = g.delta_ids_since(mark);
        assert_eq!(ids.len(), 1);
        let (s, p, o) = ids[0];
        assert_eq!(g.term_of(s), &Term::iri("urn:c"));
        assert_eq!(g.term_of(p), &Term::iri("urn:p"));
        assert_eq!(g.term_of(o), &Term::iri("urn:y"));
        assert!(g.has_ids(s, p, o));
        // Full-graph snapshot matches iter().
        assert_eq!(g.delta_ids_since(0).len(), g.len());
        // Re-adding the same id triples is a no-op; a new combination of
        // existing ids lands in all indexes.
        assert_eq!(g.extend_ids(ids), 0);
        let b = g.term_id(&Term::iri("urn:b")).unwrap();
        assert_eq!(g.extend_ids(vec![(b, p, o), (b, p, o)]), 1);
        assert!(g.has(
            &Term::iri("urn:b"),
            &Term::iri("urn:p"),
            &Term::iri("urn:y")
        ));
        assert_eq!(
            g.match_pattern(None, None, Some(&Term::iri("urn:y"))).len(),
            3
        );
    }

    #[test]
    fn from_and_extend_iterators() {
        let g: Graph = vec![t("urn:a", "urn:p", "urn:x")].into_iter().collect();
        assert_eq!(g.len(), 1);
        let mut g2 = Graph::new();
        g2.extend(g.iter());
        assert_eq!(g2.len(), 1);
    }
}
