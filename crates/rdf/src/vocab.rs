//! Well-known vocabulary IRIs: RDF, RDFS, OWL, XSD, and the GRDF namespaces
//! defined by this reproduction.

/// The RDF syntax namespace.
pub mod rdf {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
    pub const FIRST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
    pub const REST: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
    pub const NIL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
    pub const XML_LITERAL: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#XMLLiteral";
}

/// The RDF Schema namespace.
pub mod rdfs {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const COMMENT: &str = "http://www.w3.org/2000/01/rdf-schema#comment";
    pub const RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";
    pub const LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
    pub const DATATYPE: &str = "http://www.w3.org/2000/01/rdf-schema#Datatype";
    pub const SEE_ALSO: &str = "http://www.w3.org/2000/01/rdf-schema#seeAlso";
    pub const IS_DEFINED_BY: &str = "http://www.w3.org/2000/01/rdf-schema#isDefinedBy";
}

/// The OWL namespace (the OWL-DL subset GRDF uses).
pub mod owl {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
    pub const OBJECT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#ObjectProperty";
    pub const DATATYPE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#DatatypeProperty";
    pub const ONTOLOGY: &str = "http://www.w3.org/2002/07/owl#Ontology";
    pub const THING: &str = "http://www.w3.org/2002/07/owl#Thing";
    pub const NOTHING: &str = "http://www.w3.org/2002/07/owl#Nothing";
    pub const RESTRICTION: &str = "http://www.w3.org/2002/07/owl#Restriction";
    pub const ON_PROPERTY: &str = "http://www.w3.org/2002/07/owl#onProperty";
    pub const CARDINALITY: &str = "http://www.w3.org/2002/07/owl#cardinality";
    pub const MIN_CARDINALITY: &str = "http://www.w3.org/2002/07/owl#minCardinality";
    pub const MAX_CARDINALITY: &str = "http://www.w3.org/2002/07/owl#maxCardinality";
    pub const SOME_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#someValuesFrom";
    pub const ALL_VALUES_FROM: &str = "http://www.w3.org/2002/07/owl#allValuesFrom";
    pub const HAS_VALUE: &str = "http://www.w3.org/2002/07/owl#hasValue";
    pub const INVERSE_OF: &str = "http://www.w3.org/2002/07/owl#inverseOf";
    pub const EQUIVALENT_CLASS: &str = "http://www.w3.org/2002/07/owl#equivalentClass";
    pub const EQUIVALENT_PROPERTY: &str = "http://www.w3.org/2002/07/owl#equivalentProperty";
    pub const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";
    pub const DIFFERENT_FROM: &str = "http://www.w3.org/2002/07/owl#differentFrom";
    pub const DISJOINT_WITH: &str = "http://www.w3.org/2002/07/owl#disjointWith";
    pub const TRANSITIVE_PROPERTY: &str = "http://www.w3.org/2002/07/owl#TransitiveProperty";
    pub const SYMMETRIC_PROPERTY: &str = "http://www.w3.org/2002/07/owl#SymmetricProperty";
    pub const FUNCTIONAL_PROPERTY: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
    pub const INVERSE_FUNCTIONAL_PROPERTY: &str =
        "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
    pub const UNION_OF: &str = "http://www.w3.org/2002/07/owl#unionOf";
    pub const INTERSECTION_OF: &str = "http://www.w3.org/2002/07/owl#intersectionOf";
    pub const COMPLEMENT_OF: &str = "http://www.w3.org/2002/07/owl#complementOf";
    pub const IMPORTS: &str = "http://www.w3.org/2002/07/owl#imports";
    pub const VERSION_INFO: &str = "http://www.w3.org/2002/07/owl#versionInfo";
}

/// The XML Schema datatypes namespace.
pub mod xsd {
    /// Namespace IRI.
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const NON_NEGATIVE_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#nonNegativeInteger";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const ANY_URI: &str = "http://www.w3.org/2001/XMLSchema#anyURI";
}

/// Namespaces minted by this GRDF reproduction (the paper uses
/// `http://localhost/...`; we use stable example IRIs).
pub mod grdf {
    /// The core GRDF ontology namespace (feature + geometry + topology +
    /// value/observation/CRS/time/coverage models).
    pub const NS: &str = "http://grdf.org/ontology#";
    /// The GRDF security ontology namespace (`SecOnto` in the paper).
    pub const SEC_NS: &str = "http://grdf.org/security#";
    /// Namespace for instance data produced by examples and workloads
    /// (`app:` in the paper's listings).
    pub const APP_NS: &str = "http://grdf.org/app#";

    /// IRI in the core namespace.
    pub fn iri(local: &str) -> String {
        format!("{NS}{local}")
    }

    /// IRI in the security namespace.
    pub fn sec(local: &str) -> String {
        format!("{SEC_NS}{local}")
    }

    /// IRI in the application/instance namespace.
    pub fn app(local: &str) -> String {
        format!("{APP_NS}{local}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_prefixes_of_their_terms() {
        assert!(rdf::TYPE.starts_with(rdf::NS));
        assert!(rdfs::SUB_CLASS_OF.starts_with(rdfs::NS));
        assert!(owl::ON_PROPERTY.starts_with(owl::NS));
        assert!(xsd::DOUBLE.starts_with(xsd::NS));
    }

    #[test]
    fn grdf_iri_builders() {
        assert_eq!(grdf::iri("Feature"), "http://grdf.org/ontology#Feature");
        assert_eq!(grdf::sec("Policy"), "http://grdf.org/security#Policy");
        assert_eq!(grdf::app("site1"), "http://grdf.org/app#site1");
    }
}
