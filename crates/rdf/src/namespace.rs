//! Prefix maps: CURIE expansion and IRI compaction for the textual syntaxes.

use std::collections::BTreeMap;

use crate::vocab::{grdf, owl, rdf, rdfs, xsd};

/// An ordered prefix → namespace map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixMap {
    // BTreeMap keeps serialization deterministic.
    map: BTreeMap<String, String>,
}

impl PrefixMap {
    /// Empty prefix map.
    pub fn new() -> PrefixMap {
        PrefixMap::default()
    }

    /// Prefix map preloaded with the namespaces this workspace uses
    /// everywhere: `rdf`, `rdfs`, `owl`, `xsd`, `grdf`, `sec`, `app`.
    pub fn common() -> PrefixMap {
        let mut m = PrefixMap::new();
        m.insert("rdf", rdf::NS);
        m.insert("rdfs", rdfs::NS);
        m.insert("owl", owl::NS);
        m.insert("xsd", xsd::NS);
        m.insert("grdf", grdf::NS);
        m.insert("sec", grdf::SEC_NS);
        m.insert("app", grdf::APP_NS);
        m
    }

    /// Bind `prefix` to `namespace`, replacing any previous binding.
    pub fn insert(&mut self, prefix: &str, namespace: &str) {
        self.map.insert(prefix.to_string(), namespace.to_string());
    }

    /// The namespace bound to `prefix`.
    pub fn get(&self, prefix: &str) -> Option<&str> {
        self.map.get(prefix).map(String::as_str)
    }

    /// Expand a `prefix:local` CURIE to a full IRI.
    pub fn expand(&self, curie: &str) -> Option<String> {
        let (prefix, local) = curie.split_once(':')?;
        Some(format!("{}{local}", self.map.get(prefix)?))
    }

    /// Compact an IRI to `prefix:local` using the longest matching
    /// namespace; returns `None` when no binding matches or the local part
    /// would be empty/invalid for a Turtle prefixed name.
    pub fn compact(&self, iri: &str) -> Option<String> {
        let mut best: Option<(&str, &str)> = None;
        for (prefix, ns) in &self.map {
            if let Some(local) = iri.strip_prefix(ns.as_str()) {
                if best.is_none_or(|(_, bns)| ns.len() > bns.len()) {
                    best = Some((prefix, ns));
                    let _ = local;
                }
            }
        }
        let (prefix, ns) = best?;
        let local = &iri[ns.len()..];
        if local.is_empty() || !is_pn_local(local) {
            return None;
        }
        Some(format!("{prefix}:{local}"))
    }

    /// Iterate bindings in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(p, n)| (p.as_str(), n.as_str()))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no prefixes are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Conservative check for a Turtle PN_LOCAL we are willing to emit without
/// escaping: alphanumerics, `_`, `-`, `.` (not at the ends).
fn is_pn_local(s: &str) -> bool {
    if s.starts_with('.') || s.ends_with('.') {
        return false;
    }
    s.chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_and_compact_roundtrip() {
        let m = PrefixMap::common();
        let iri = m.expand("grdf:Feature").unwrap();
        assert_eq!(iri, "http://grdf.org/ontology#Feature");
        assert_eq!(m.compact(&iri).unwrap(), "grdf:Feature");
    }

    #[test]
    fn expand_unknown_prefix_is_none() {
        let m = PrefixMap::common();
        assert!(m.expand("nope:x").is_none());
        assert!(m.expand("nocolon").is_none());
    }

    #[test]
    fn compact_prefers_longest_namespace() {
        let mut m = PrefixMap::new();
        m.insert("a", "urn:x/");
        m.insert("b", "urn:x/deep/");
        assert_eq!(m.compact("urn:x/deep/leaf").unwrap(), "b:leaf");
    }

    #[test]
    fn compact_rejects_bad_locals() {
        let m = PrefixMap::common();
        assert!(
            m.compact("http://grdf.org/ontology#").is_none(),
            "empty local"
        );
        assert!(
            m.compact("http://grdf.org/ontology#a/b").is_none(),
            "slash in local"
        );
        assert!(
            m.compact("http://grdf.org/ontology#ends.").is_none(),
            "trailing dot"
        );
    }

    #[test]
    fn common_map_has_expected_bindings() {
        let m = PrefixMap::common();
        assert_eq!(m.get("rdf"), Some(crate::vocab::rdf::NS));
        assert_eq!(m.len(), 7);
        assert!(!m.is_empty());
    }
}
