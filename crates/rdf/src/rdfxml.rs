//! RDF/XML — the serialization used by the paper's listings (Lists 2–8).
//!
//! Supported subset: `rdf:RDF` roots, `rdf:Description` and typed node
//! elements, `rdf:about`/`rdf:ID`/`rdf:nodeID`, property elements with
//! `rdf:resource`, `rdf:datatype`, `rdf:nodeID` or nested node elements,
//! `rdf:parseType="Resource"`, property attributes, and `xml:lang`.

use grdf_xml::tree::{Child, Element, XML_NS};
use grdf_xml::writer::{write_document, WriteOptions};
use grdf_xml::Document;

use crate::error::{RdfError, RdfResult};
use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{Literal, Term, Triple};
use crate::vocab::rdf;

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parse an RDF/XML document into a graph.
pub fn parse(input: &str) -> RdfResult<Graph> {
    let doc = grdf_xml::parse(input)?;
    let root = doc.root();
    let mut ctx = ReaderCtx {
        graph: Graph::new(),
        blank_counter: 0,
    };
    if root.is(rdf::NS, "RDF") {
        for node in root.child_elements() {
            ctx.node_element(node, None)?;
        }
    } else {
        ctx.node_element(root, None)?;
    }
    Ok(ctx.graph)
}

struct ReaderCtx {
    graph: Graph,
    blank_counter: u64,
}

impl ReaderCtx {
    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::RdfXml {
            message: message.into(),
        }
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::blank(&format!("x{}", self.blank_counter))
    }

    fn rdf_attr<'e>(&self, elem: &'e Element, local: &str) -> Option<&'e str> {
        // Accept both properly namespaced (rdf:about) and — like the paper's
        // loosely namespaced listings — unprefixed `about` attributes.
        elem.attribute_ns(rdf::NS, local).or_else(|| {
            elem.attributes
                .iter()
                .find(|a| a.prefix.is_none() && a.local == local)
                .map(|a| a.value.as_str())
        })
    }

    /// Process a node element; returns the subject term it denotes.
    fn node_element(&mut self, elem: &Element, _base: Option<&str>) -> RdfResult<Term> {
        let subject = if let Some(about) = self.rdf_attr(elem, "about") {
            Term::iri(about)
        } else if let Some(id) = self.rdf_attr(elem, "ID") {
            Term::iri(&format!("#{id}"))
        } else if let Some(node_id) = self.rdf_attr(elem, "nodeID") {
            Term::blank(node_id)
        } else {
            self.fresh_blank()
        };

        // Typed node element: the element name is the rdf:type.
        if !elem.is(rdf::NS, "Description") {
            let ns = elem.namespace().ok_or_else(|| {
                self.err(format!("node element <{}> has no namespace", elem.local))
            })?;
            self.graph.insert(Triple::new(
                subject.clone(),
                Term::iri(rdf::TYPE),
                Term::iri(&format!("{ns}{}", elem.local)),
            ));
        }

        // Property attributes (anything except rdf:* control attrs and xml:*).
        for a in &elem.attributes {
            let ns = a.namespace.as_deref();
            if ns == Some(rdf::NS) || ns == Some(XML_NS) {
                continue;
            }
            if a.prefix.is_none() && matches!(a.local.as_str(), "about" | "ID" | "nodeID") {
                continue;
            }
            let Some(ns) = ns else {
                return Err(self.err(format!("property attribute {:?} has no namespace", a.local)));
            };
            self.graph.insert(Triple::new(
                subject.clone(),
                Term::iri(&format!("{ns}{}", a.local)),
                Term::string(&a.value),
            ));
        }

        for prop in elem.child_elements() {
            self.property_element(&subject, prop)?;
        }
        Ok(subject)
    }

    fn property_element(&mut self, subject: &Term, elem: &Element) -> RdfResult<()> {
        let ns = elem.namespace().ok_or_else(|| {
            self.err(format!(
                "property element <{}> has no namespace",
                elem.local
            ))
        })?;
        let predicate = Term::iri(&format!("{ns}{}", elem.local));

        // rdf:resource / rdf:nodeID shortcut.
        if let Some(resource) = self.rdf_attr(elem, "resource") {
            self.graph
                .insert(Triple::new(subject.clone(), predicate, Term::iri(resource)));
            return Ok(());
        }
        if let Some(node_id) = self.rdf_attr(elem, "nodeID") {
            self.graph.insert(Triple::new(
                subject.clone(),
                predicate,
                Term::blank(node_id),
            ));
            return Ok(());
        }
        if self.rdf_attr(elem, "parseType") == Some("Resource") {
            // The property element body is itself a property list on a new
            // blank node.
            let node = self.fresh_blank();
            self.graph
                .insert(Triple::new(subject.clone(), predicate, node.clone()));
            for p in elem.child_elements() {
                self.property_element(&node, p)?;
            }
            return Ok(());
        }

        let nested: Vec<&Element> = elem.child_elements().collect();
        if nested.is_empty() {
            // Literal content.
            let text = direct_text(elem);
            let object = if let Some(dt) = self.rdf_attr(elem, "datatype") {
                Term::typed(&text, dt)
            } else if let Some(lang) = elem.attribute_ns(XML_NS, "lang") {
                Term::Literal(Literal::lang_string(&text, lang))
            } else {
                Term::string(&text)
            };
            self.graph
                .insert(Triple::new(subject.clone(), predicate, object));
            Ok(())
        } else if nested.len() == 1 {
            let object = self.node_element(nested[0], None)?;
            self.graph
                .insert(Triple::new(subject.clone(), predicate, object));
            Ok(())
        } else {
            Err(self.err(format!(
                "property element <{}> has {} child node elements (expected 0 or 1)",
                elem.local,
                nested.len()
            )))
        }
    }
}

/// Concatenated text of an element. Bodies containing newlines (the
/// pretty-printed style of the paper's listings) are trimmed; single-line
/// bodies are preserved verbatim so literals round-trip exactly.
fn direct_text(elem: &Element) -> String {
    let mut s = String::new();
    for c in &elem.children {
        if let Child::Text(t) = c {
            s.push_str(t);
        }
    }
    if s.contains('\n') {
        s.trim().to_string()
    } else {
        s
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialize a graph as RDF/XML. `prefixes` supplies preferred prefixes;
/// predicates outside any declared namespace get generated `ns1:`-style
/// prefixes.
pub fn serialize(graph: &Graph, prefixes: &PrefixMap) -> RdfResult<String> {
    let mut pm = prefixes.clone();
    if pm.get("rdf") != Some(rdf::NS) {
        pm.insert("rdf", rdf::NS);
    }
    let mut gen_counter = 0u32;

    // Make sure every predicate can be written as a QName.
    let preds: Vec<Term> = {
        let mut seen = std::collections::BTreeSet::new();
        for t in graph.iter() {
            seen.insert(t.predicate.clone());
        }
        seen.into_iter().collect()
    };
    for p in &preds {
        let iri = p.as_iri().expect("predicates are IRIs");
        if split_iri(iri).is_none() {
            return Err(RdfError::RdfXml {
                message: format!("predicate {iri} cannot be written as an XML QName"),
            });
        }
        ensure_prefix(&mut pm, iri, &mut gen_counter);
    }

    let mut root = Element::in_ns(rdf::NS, Some("rdf"), "RDF");
    for (prefix, ns) in pm.iter() {
        root.ns_decls
            .push((Some(prefix.to_string()), ns.to_string()));
    }

    let mut subjects = graph.all_subjects();
    subjects.sort();
    for subject in subjects {
        let mut node = Element::in_ns(rdf::NS, Some("rdf"), "Description");
        match &subject {
            Term::Iri(iri) => node.set_attribute_ns(rdf::NS, "rdf", "about", iri),
            Term::Blank(b) => node.set_attribute_ns(rdf::NS, "rdf", "nodeID", b),
            Term::Literal(_) => unreachable!("subjects are resources"),
        }
        let mut triples = graph.match_pattern(Some(&subject), None, None);
        triples.sort();
        for t in triples {
            let pred_iri = t.predicate.as_iri().unwrap();
            let (ns, local) = split_iri(pred_iri).unwrap();
            let prefix = lookup_prefix(&pm, ns)
                .expect("prefix ensured above")
                .to_string();
            let mut prop = Element::in_ns(ns, Some(&prefix), local);
            match &t.object {
                Term::Iri(iri) => prop.set_attribute_ns(rdf::NS, "rdf", "resource", iri),
                Term::Blank(b) => prop.set_attribute_ns(rdf::NS, "rdf", "nodeID", b),
                Term::Literal(l) => {
                    if let Some(lang) = l.lang() {
                        prop.set_attribute_ns(XML_NS, "xml", "lang", lang);
                    } else if l.datatype() != crate::vocab::xsd::STRING {
                        prop.set_attribute_ns(rdf::NS, "rdf", "datatype", l.datatype());
                    }
                    prop.push_text(l.lexical());
                }
            }
            node.push_element(prop);
        }
        root.push_element(node);
    }

    Ok(write_document(
        &Document::with_root(root),
        &WriteOptions::default(),
    ))
}

/// Split an IRI into (namespace, local) at the last `#` or `/` such that the
/// local part is a valid NCName.
fn split_iri(iri: &str) -> Option<(&str, &str)> {
    let cut = iri.rfind(['#', '/'])? + 1;
    let local = &iri[cut..];
    if grdf_xml::name::is_ncname(local) {
        Some((&iri[..cut], local))
    } else {
        None
    }
}

fn lookup_prefix<'a>(pm: &'a PrefixMap, ns: &str) -> Option<&'a str> {
    pm.iter().find(|(_, n)| *n == ns).map(|(p, _)| p)
}

fn ensure_prefix(pm: &mut PrefixMap, pred_iri: &str, counter: &mut u32) {
    let Some((ns, _)) = split_iri(pred_iri) else {
        return;
    };
    if lookup_prefix(pm, ns).is_some() {
        return;
    }
    loop {
        *counter += 1;
        let candidate = format!("ns{counter}");
        if pm.get(&candidate).is_none() {
            pm.insert(&candidate, ns);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn parses_description_with_about() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <rdf:Description rdf:about="urn:s"><e:p rdf:resource="urn:o"/></rdf:Description>
               </rdf:RDF>"#,
        )
        .unwrap();
        assert!(g.has(
            &Term::iri("urn:s"),
            &Term::iri("urn:e#p"),
            &Term::iri("urn:o")
        ));
    }

    #[test]
    fn typed_node_elements_assert_rdf_type() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <e:City rdf:about="urn:dallas"/>
               </rdf:RDF>"#,
        )
        .unwrap();
        assert!(g.has(
            &Term::iri("urn:dallas"),
            &Term::iri(rdf::TYPE),
            &Term::iri("urn:e#City")
        ));
    }

    #[test]
    fn literal_properties_with_datatype_and_lang() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <rdf:Description rdf:about="urn:s">
                   <e:n rdf:datatype="http://www.w3.org/2001/XMLSchema#integer">7</e:n>
                   <e:l xml:lang="en">hello</e:l>
                   <e:plain>text</e:plain>
                 </rdf:Description>
               </rdf:RDF>"#,
        )
        .unwrap();
        let s = Term::iri("urn:s");
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#n"))
                .unwrap()
                .as_literal()
                .unwrap()
                .as_integer(),
            Some(7)
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#l"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lang(),
            Some("en")
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#plain"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "text"
        );
    }

    #[test]
    fn nested_node_elements() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <e:Site rdf:about="urn:site">
                   <e:hasInfo><e:Info rdf:about="urn:info"><e:code>121NR</e:code></e:Info></e:hasInfo>
                 </e:Site>
               </rdf:RDF>"#,
        )
        .unwrap();
        assert!(g.has(
            &Term::iri("urn:site"),
            &Term::iri("urn:e#hasInfo"),
            &Term::iri("urn:info")
        ));
        assert!(g.has(
            &Term::iri("urn:info"),
            &Term::iri(rdf::TYPE),
            &Term::iri("urn:e#Info")
        ));
        assert_eq!(
            g.object(&Term::iri("urn:info"), &Term::iri("urn:e#code"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical(),
            "121NR"
        );
    }

    #[test]
    fn anonymous_nodes_get_blanks() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <rdf:Description rdf:about="urn:s">
                   <e:p><rdf:Description><e:q>v</e:q></rdf:Description></e:p>
                 </rdf:Description>
               </rdf:RDF>"#,
        )
        .unwrap();
        let o = g
            .object(&Term::iri("urn:s"), &Term::iri("urn:e#p"))
            .unwrap();
        assert!(o.is_blank());
        assert!(g.has(&o, &Term::iri("urn:e#q"), &Term::string("v")));
    }

    #[test]
    fn node_id_links_share_a_blank() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <rdf:Description rdf:about="urn:s"><e:p rdf:nodeID="n"/></rdf:Description>
                 <rdf:Description rdf:nodeID="n"><e:q>v</e:q></rdf:Description>
               </rdf:RDF>"#,
        )
        .unwrap();
        let o = g
            .object(&Term::iri("urn:s"), &Term::iri("urn:e#p"))
            .unwrap();
        assert!(g.has(&o, &Term::iri("urn:e#q"), &Term::string("v")));
    }

    #[test]
    fn parse_type_resource() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <rdf:Description rdf:about="urn:s">
                   <e:p rdf:parseType="Resource"><e:q>v</e:q></e:p>
                 </rdf:Description>
               </rdf:RDF>"#,
        )
        .unwrap();
        let o = g
            .object(&Term::iri("urn:s"), &Term::iri("urn:e#p"))
            .unwrap();
        assert!(o.is_blank());
        assert!(g.has(&o, &Term::iri("urn:e#q"), &Term::string("v")));
    }

    #[test]
    fn property_attributes_become_string_triples() {
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#" xmlns:e="urn:e#">
                 <e:Site rdf:about="urn:s" e:name="North Texas Energy"/>
               </rdf:RDF>"#,
        )
        .unwrap();
        assert!(g.has(
            &Term::iri("urn:s"),
            &Term::iri("urn:e#name"),
            &Term::string("North Texas Energy")
        ));
    }

    #[test]
    fn single_node_without_rdf_root() {
        let g = parse(
            r#"<e:Thing xmlns:e="urn:e#" rdf:about="urn:t"
                          xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"/>"#,
        )
        .unwrap();
        assert!(g.has(
            &Term::iri("urn:t"),
            &Term::iri(rdf::TYPE),
            &Term::iri("urn:e#Thing")
        ));
    }

    #[test]
    fn roundtrip_via_writer() {
        let mut g = Graph::new();
        g.add(
            Term::iri("urn:e#s"),
            Term::iri("urn:e#p"),
            Term::iri("urn:e#o"),
        );
        g.add(
            Term::iri("urn:e#s"),
            Term::iri(rdf::TYPE),
            Term::iri("urn:e#Class"),
        );
        g.add(
            Term::iri("urn:e#s"),
            Term::iri("urn:e#n"),
            Term::typed("7", xsd::INTEGER),
        );
        g.add(
            Term::iri("urn:e#s"),
            Term::iri("urn:e#l"),
            Term::Literal(Literal::lang_string("hi", "en")),
        );
        g.add(Term::blank("b"), Term::iri("urn:e#p"), Term::string("x"));
        let xml = serialize(&g, &PrefixMap::new()).unwrap();
        let g2 = parse(&xml).unwrap();
        assert_eq!(g2.len(), g.len(), "{xml}");
        for t in g.iter() {
            if t.subject.is_blank() {
                continue;
            }
            assert!(g2.contains(&t), "missing {t} in\n{xml}");
        }
    }

    #[test]
    fn writer_rejects_unqname_predicates() {
        let mut g = Graph::new();
        g.add(
            Term::iri("urn:s"),
            Term::iri("urn:e#1bad"),
            Term::string("x"),
        );
        assert!(serialize(&g, &PrefixMap::new()).is_err());
    }

    #[test]
    fn paper_list7_chemsite_shape_parses() {
        // Mirrors List 7 of the paper (sample chemical site data in GRDF).
        let g = parse(
            r#"<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
                        xmlns:app="http://grdf.org/app#"
                        xmlns:grdf="http://grdf.org/ontology#">
                <app:ChemSite rdf:about="http://grdf.org/app#NTEnergy">
                  <app:hasSiteName>North Texas Energy</app:hasSiteName>
                  <app:hasSiteId>004221</app:hasSiteId>
                  <app:hasChemicalInfo rdf:resource="http://grdf.org/app#NTChemInfo"/>
                </app:ChemSite>
                <app:ChemInfo rdf:about="http://grdf.org/app#NTChemInfo">
                  <app:hasChemName>Sulfuric Acid</app:hasChemName>
                  <app:hasChemCode>121NR</app:hasChemCode>
                </app:ChemInfo>
              </rdf:RDF>"#,
        )
        .unwrap();
        assert_eq!(g.len(), 7);
        let site = Term::iri("http://grdf.org/app#NTEnergy");
        assert!(g.has(
            &site,
            &Term::iri("http://grdf.org/app#hasChemicalInfo"),
            &Term::iri("http://grdf.org/app#NTChemInfo")
        ));
    }
}
