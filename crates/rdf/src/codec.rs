//! Deterministic binary encoding of a [`Graph`] for durable storage.
//!
//! The encoding is **canonical**: two graphs containing the same triple set
//! serialize to identical bytes regardless of insertion order, interner
//! history, or index mode. This is what makes checkpoint files comparable
//! byte-for-byte and lets the crash-recovery suite assert `encode(decode(x))
//! == x` exactly.
//!
//! ## Layout (version 2)
//!
//! ```text
//! [magic "GRDG"] [version u8 = 2]
//! [varint term_count] [term]*                             (sorted by Term order)
//! [varint triple_count] [varint s][varint p][varint o]*   (term-table ids)
//! [crc32 LE over everything above]
//! ```
//!
//! Canonical form: the term table is the **sorted set** of terms the
//! triples use, so id assignment is order-preserving — triples sorted by
//! `(s, p, o)` in term order are *also* sorted in id order. That makes the
//! triple section a serialized SPO run: decode hands the table and the id
//! columns straight to the graph's columnar constructor without re-sorting
//! or per-triple set insertion (the decode-free load path). Version 1
//! (term table in first-appearance order, triples replayed through
//! insertion) decodes but is no longer produced.
//!
//! Terms are tagged: `0x01` IRI, `0x02` blank node, `0x03` plain literal,
//! `0x04` language-tagged literal (lexical + tag), `0x05` typed literal
//! (lexical + datatype IRI). Strings are varint-length-prefixed UTF-8;
//! varints are LEB128.
//!
//! Every decode failure is a typed [`CodecError`] — truncated or bit-flipped
//! input must never panic, because the durable store classifies corruption
//! from these errors (torn tail vs interior damage).

use std::fmt;

use crate::graph::{Graph, IndexMode, TermId};
use crate::term::{Literal, Term, Triple};

/// Leading magic of an encoded graph block.
pub const MAGIC: [u8; 4] = *b"GRDG";
/// Current encoding version.
pub const VERSION: u8 = 2;
/// The replay-decoded legacy version.
pub const VERSION_V1: u8 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decode failure. Corrupt input yields one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure it promised was complete.
    Truncated,
    /// The trailing CRC32 does not match the decoded bytes.
    Checksum {
        /// CRC recorded in the input.
        expected: u32,
        /// CRC recomputed over the payload.
        found: u32,
    },
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is not one this build can decode.
    BadVersion(u8),
    /// An unknown term tag byte.
    BadTag(u8),
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// A triple references a term id beyond the term table.
    IdOutOfRange(u64),
    /// A varint ran past 10 bytes (or overflowed u64).
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-structure"),
            CodecError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: recorded {expected:#010x}, computed {found:#010x}"
            ),
            CodecError::BadMagic => write!(f, "bad magic (not an encoded graph)"),
            CodecError::BadVersion(v) => write!(f, "unsupported encoding version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown term tag {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::IdOutOfRange(id) => write!(f, "term id {id} beyond term table"),
            CodecError::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the classic zlib polynomial.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the checksum used by every durable record.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`, finish by XOR
/// with `0xFFFF_FFFF`).
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------------
// Varints (LEB128)
// ---------------------------------------------------------------------------

/// Append `v` as an LEB128 varint.
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint at `*pos`, advancing it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::BadVarint);
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, CodecError> {
    let len = read_varint(bytes, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
    let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
    let slice = bytes.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    std::str::from_utf8(slice).map_err(|_| CodecError::BadUtf8)
}

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

const TAG_IRI: u8 = 0x01;
const TAG_BLANK: u8 = 0x02;
const TAG_LIT_PLAIN: u8 = 0x03;
const TAG_LIT_LANG: u8 = 0x04;
const TAG_LIT_TYPED: u8 = 0x05;

/// Append the tagged encoding of one term.
pub fn encode_term(term: &Term, out: &mut Vec<u8>) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            write_str(iri, out);
        }
        Term::Blank(label) => {
            out.push(TAG_BLANK);
            write_str(label, out);
        }
        Term::Literal(lit) => encode_literal(lit, out),
    }
}

fn encode_literal(lit: &Literal, out: &mut Vec<u8>) {
    if let Some(lang) = lit.lang() {
        out.push(TAG_LIT_LANG);
        write_str(lit.lexical(), out);
        write_str(lang, out);
    } else {
        let dt = lit.datatype();
        if dt == crate::vocab::xsd::STRING {
            out.push(TAG_LIT_PLAIN);
            write_str(lit.lexical(), out);
        } else {
            out.push(TAG_LIT_TYPED);
            write_str(lit.lexical(), out);
            write_str(dt, out);
        }
    }
}

/// Decode one tagged term at `*pos`, advancing it.
pub fn decode_term(bytes: &[u8], pos: &mut usize) -> Result<Term, CodecError> {
    let &tag = bytes.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_IRI => Ok(Term::iri(read_str(bytes, pos)?)),
        TAG_BLANK => Ok(Term::blank(read_str(bytes, pos)?)),
        TAG_LIT_PLAIN => Ok(Term::Literal(Literal::string(read_str(bytes, pos)?))),
        TAG_LIT_LANG => {
            let lexical = read_str(bytes, pos)?.to_string();
            let lang = read_str(bytes, pos)?;
            Ok(Term::Literal(Literal::lang_string(&lexical, lang)))
        }
        TAG_LIT_TYPED => {
            let lexical = read_str(bytes, pos)?.to_string();
            let dt = read_str(bytes, pos)?;
            Ok(Term::Literal(Literal::typed(&lexical, dt)))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Append the tagged encoding of one triple (three terms, S then P then O).
pub fn encode_triple(triple: &Triple, out: &mut Vec<u8>) {
    encode_term(&triple.subject, out);
    encode_term(&triple.predicate, out);
    encode_term(&triple.object, out);
}

/// Decode one triple at `*pos`, advancing it.
pub fn decode_triple(bytes: &[u8], pos: &mut usize) -> Result<Triple, CodecError> {
    let s = decode_term(bytes, pos)?;
    let p = decode_term(bytes, pos)?;
    let o = decode_term(bytes, pos)?;
    Ok(Triple::new(s, p, o))
}

// ---------------------------------------------------------------------------
// Whole-graph encode / decode
// ---------------------------------------------------------------------------

/// Encode `graph` into the canonical binary form.
///
/// Output depends only on the triple *set*: `encode_graph(&decode_graph(&b)?)
/// == b` for any valid `b`.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    // Collect the live triple set in the graph's own id space — no term
    // materialization — then remap into canonical ids: the used terms
    // sorted by `Term` order, positions becoming the file ids. The remap
    // is order-preserving on terms, so sorting the remapped id tuples
    // yields exactly the canonical (s, p, o) term order.
    let mut raw: Vec<(TermId, TermId, TermId)> = Vec::with_capacity(graph.len());
    graph.for_each_match_ids(None, None, None, |s, p, o| raw.push((s, p, o)));

    let mut used: Vec<TermId> = Vec::with_capacity(raw.len() * 3);
    for &(s, p, o) in &raw {
        used.extend_from_slice(&[s, p, o]);
    }
    used.sort_unstable();
    used.dedup();
    let max_id = used.last().copied().unwrap_or(0);
    let mut order = used;
    order.sort_by(|&a, &b| graph.term_of(a).cmp(graph.term_of(b)));
    let mut remap = vec![0 as TermId; max_id as usize + 1];
    for (new, &old) in order.iter().enumerate() {
        remap[old as usize] = new as TermId;
    }

    let mut id_triples: Vec<(TermId, TermId, TermId)> = raw
        .into_iter()
        .map(|(s, p, o)| (remap[s as usize], remap[p as usize], remap[o as usize]))
        .collect();
    id_triples.sort_unstable();
    id_triples.dedup();

    let mut out = Vec::with_capacity(id_triples.len() * 12 + 64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_varint(order.len() as u64, &mut out);
    for &old in &order {
        encode_term(graph.term_of(old), &mut out);
    }
    write_varint(id_triples.len() as u64, &mut out);
    for (s, p, o) in &id_triples {
        write_varint(u64::from(*s), &mut out);
        write_varint(u64::from(*p), &mut out);
        write_varint(u64::from(*o), &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a canonical binary graph block, verifying the trailing CRC.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, CodecError> {
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(CodecError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    let found = crc32(payload);
    if expected != found {
        return Err(CodecError::Checksum { expected, found });
    }
    if payload[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = payload[MAGIC.len()];
    if version != VERSION && version != VERSION_V1 {
        return Err(CodecError::BadVersion(version));
    }
    let mut pos = MAGIC.len() + 1;

    let term_count = read_varint(payload, &mut pos)?;
    let term_count = usize::try_from(term_count).map_err(|_| CodecError::Truncated)?;
    // Guard against absurd counts in corrupt headers before allocating.
    if term_count > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut table: Vec<Term> = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        table.push(decode_term(payload, &mut pos)?);
    }

    let triple_count = read_varint(payload, &mut pos)?;
    let triple_count = usize::try_from(triple_count).map_err(|_| CodecError::Truncated)?;
    if triple_count > payload.len() {
        return Err(CodecError::Truncated);
    }

    let graph = if version == VERSION {
        // v2 decode-free load: the table *is* the interner and the triple
        // section *is* the sorted SPO run. One bounds check per id, then
        // the columnar constructor builds the indexes without any
        // per-triple set insertion.
        let mut id_triples: Vec<(TermId, TermId, TermId)> = Vec::with_capacity(triple_count);
        let id = |pos: &mut usize| -> Result<TermId, CodecError> {
            let v = read_varint(payload, pos)?;
            if usize::try_from(v).map_or(true, |i| i >= table.len()) {
                return Err(CodecError::IdOutOfRange(v));
            }
            Ok(v as TermId)
        };
        for _ in 0..triple_count {
            let s = id(&mut pos)?;
            let p = id(&mut pos)?;
            let o = id(&mut pos)?;
            id_triples.push((s, p, o));
        }
        if !id_triples.windows(2).all(|w| w[0] < w[1]) {
            // Encoders always emit sorted, unique triples; a CRC-valid
            // file that doesn't is hand-crafted. Normalize rather than
            // trust it.
            id_triples.sort_unstable();
            id_triples.dedup();
        }
        Graph::from_parts(table, id_triples, IndexMode::Full)
    } else {
        // v1 replay: ids are in first-appearance order, so triples are
        // re-inserted one at a time through the interner.
        let mut graph = Graph::new();
        for _ in 0..triple_count {
            let s = read_varint(payload, &mut pos)?;
            let p = read_varint(payload, &mut pos)?;
            let o = read_varint(payload, &mut pos)?;
            let term = |id: u64| -> Result<&Term, CodecError> {
                usize::try_from(id)
                    .ok()
                    .and_then(|i| table.get(i))
                    .ok_or(CodecError::IdOutOfRange(id))
            };
            graph.insert(Triple::new(
                term(s)?.clone(),
                term(p)?.clone(),
                term(o)?.clone(),
            ));
        }
        graph
    };
    if pos != payload.len() {
        // Trailing garbage inside a CRC-valid payload cannot normally
        // happen, but reject it rather than silently ignoring bytes.
        return Err(CodecError::Truncated);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/p"),
            Term::iri("http://example.org/b"),
        );
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/name"),
            Term::string("Alpha"),
        );
        g.add(
            Term::blank("n1"),
            Term::iri("http://example.org/label"),
            Term::Literal(Literal::lang_string("ville", "FR")),
        );
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/count"),
            Term::integer(42),
        );
        g
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            out.clear();
            write_varint(v, &mut out);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80], &mut pos),
            Err(CodecError::Truncated)
        );
        let eleven = [0xFF; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&eleven, &mut pos), Err(CodecError::BadVarint));
    }

    #[test]
    fn graph_round_trip_is_byte_identical() {
        let g = sample_graph();
        let bytes = encode_graph(&g);
        let decoded = decode_graph(&bytes).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(encode_graph(&decoded), bytes, "re-encode must be identical");
    }

    #[test]
    fn encoding_is_insertion_order_independent() {
        let g = sample_graph();
        let mut reversed = Graph::new();
        let mut triples: Vec<Triple> = g.iter().collect();
        triples.reverse();
        reversed.extend_triples(triples);
        assert_eq!(encode_graph(&g), encode_graph(&reversed));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let bytes = encode_graph(&g);
        let decoded = decode_graph(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(encode_graph(&decoded), bytes);
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let bytes = encode_graph(&sample_graph());
        for cut in 0..bytes.len() {
            let err = decode_graph(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::Checksum { .. }),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_yield_checksum_errors() {
        let bytes = encode_graph(&sample_graph());
        // Flip one bit in each byte of the payload (CRC excluded: flipping
        // the recorded CRC also yields a Checksum mismatch).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            let err = decode_graph(&corrupt).unwrap_err();
            assert!(
                matches!(err, CodecError::Checksum { .. }),
                "flip at {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn legacy_v1_blocks_still_decode() {
        // Re-create the v1 layout by hand: term table in first-appearance
        // order over the sorted triple walk, triples replay-decoded.
        let g = sample_graph();
        let mut triples: Vec<Triple> = g.iter().collect();
        triples.sort_unstable();
        let mut table: Vec<Term> = Vec::new();
        let id_of = |t: &Term, table: &mut Vec<Term>| -> u64 {
            if let Some(i) = table.iter().position(|x| x == t) {
                return i as u64;
            }
            table.push(t.clone());
            table.len() as u64 - 1
        };
        let ids: Vec<(u64, u64, u64)> = triples
            .iter()
            .map(|t| {
                (
                    id_of(&t.subject, &mut table),
                    id_of(&t.predicate, &mut table),
                    id_of(&t.object, &mut table),
                )
            })
            .collect();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_V1);
        write_varint(table.len() as u64, &mut out);
        for t in &table {
            encode_term(t, &mut out);
        }
        write_varint(ids.len() as u64, &mut out);
        for (s, p, o) in &ids {
            write_varint(*s, &mut out);
            write_varint(*p, &mut out);
            write_varint(*o, &mut out);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());

        let decoded = decode_graph(&out).unwrap();
        assert_eq!(decoded, g, "v1 replay decode must reconstruct the set");
        // Re-encoding a v1-decoded graph upgrades it to the v2 canonical
        // form, identical to encoding the original.
        assert_eq!(encode_graph(&decoded), encode_graph(&g));
    }

    #[test]
    fn v2_decode_is_columnar_and_canonical() {
        let g = sample_graph();
        let bytes = encode_graph(&g);
        assert_eq!(bytes[MAGIC.len()], VERSION);
        let decoded = decode_graph(&bytes).unwrap();
        // The decode-free load lands everything in the run (no novelty).
        assert_eq!(decoded.run_len(), g.len());
        assert_eq!(decoded.novelty_len(), 0);
        assert_eq!(decoded, g);
    }

    #[test]
    fn term_tags_cover_all_literal_shapes() {
        let terms = [
            Term::iri("http://example.org/x"),
            Term::blank("b0"),
            Term::string("plain"),
            Term::Literal(Literal::lang_string("hi", "en-GB")),
            Term::typed("3.25", crate::vocab::xsd::DOUBLE),
        ];
        let mut out = Vec::new();
        for t in &terms {
            out.clear();
            encode_term(t, &mut out);
            let mut pos = 0;
            assert_eq!(&decode_term(&out, &mut pos).unwrap(), t);
            assert_eq!(pos, out.len());
        }
        let mut pos = 0;
        assert_eq!(
            decode_term(&[0x7F], &mut pos),
            Err(CodecError::BadTag(0x7F))
        );
    }
}
