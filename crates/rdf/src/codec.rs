//! Deterministic binary encoding of a [`Graph`] for durable storage.
//!
//! The encoding is **canonical**: two graphs containing the same triple set
//! serialize to identical bytes regardless of insertion order, interner
//! history, or index mode. This is what makes checkpoint files comparable
//! byte-for-byte and lets the crash-recovery suite assert `encode(decode(x))
//! == x` exactly.
//!
//! ## Layout
//!
//! ```text
//! [magic "GRDG"] [version u8 = 1]
//! [varint term_count] [term]*
//! [varint triple_count] [varint s][varint p][varint o]*   (term-table ids)
//! [crc32 LE over everything above]
//! ```
//!
//! Canonical form: triples are sorted by `(s, p, o)` under [`Term`]'s `Ord`,
//! and the term table is assigned ids by **first appearance in that sorted
//! walk** — so the table order is itself a pure function of the triple set.
//!
//! Terms are tagged: `0x01` IRI, `0x02` blank node, `0x03` plain literal,
//! `0x04` language-tagged literal (lexical + tag), `0x05` typed literal
//! (lexical + datatype IRI). Strings are varint-length-prefixed UTF-8;
//! varints are LEB128.
//!
//! Every decode failure is a typed [`CodecError`] — truncated or bit-flipped
//! input must never panic, because the durable store classifies corruption
//! from these errors (torn tail vs interior damage).

use std::collections::HashMap;
use std::fmt;

use crate::graph::Graph;
use crate::term::{Literal, Term, Triple};

/// Leading magic of an encoded graph block.
pub const MAGIC: [u8; 4] = *b"GRDG";
/// Current encoding version.
pub const VERSION: u8 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed decode failure. Corrupt input yields one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure it promised was complete.
    Truncated,
    /// The trailing CRC32 does not match the decoded bytes.
    Checksum {
        /// CRC recorded in the input.
        expected: u32,
        /// CRC recomputed over the payload.
        found: u32,
    },
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is not one this build can decode.
    BadVersion(u8),
    /// An unknown term tag byte.
    BadTag(u8),
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// A triple references a term id beyond the term table.
    IdOutOfRange(u64),
    /// A varint ran past 10 bytes (or overflowed u64).
    BadVarint,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-structure"),
            CodecError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: recorded {expected:#010x}, computed {found:#010x}"
            ),
            CodecError::BadMagic => write!(f, "bad magic (not an encoded graph)"),
            CodecError::BadVersion(v) => write!(f, "unsupported encoding version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown term tag {t:#04x}"),
            CodecError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::IdOutOfRange(id) => write!(f, "term id {id} beyond term table"),
            CodecError::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the classic zlib polynomial.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the checksum used by every durable record.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feed `state` (start from `0xFFFF_FFFF`, finish by XOR
/// with `0xFFFF_FFFF`).
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------------
// Varints (LEB128)
// ---------------------------------------------------------------------------

/// Append `v` as an LEB128 varint.
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint at `*pos`, advancing it.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::BadVarint);
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn write_str(s: &str, out: &mut Vec<u8>) {
    write_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn read_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, CodecError> {
    let len = read_varint(bytes, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
    let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
    let slice = bytes.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    std::str::from_utf8(slice).map_err(|_| CodecError::BadUtf8)
}

// ---------------------------------------------------------------------------
// Terms
// ---------------------------------------------------------------------------

const TAG_IRI: u8 = 0x01;
const TAG_BLANK: u8 = 0x02;
const TAG_LIT_PLAIN: u8 = 0x03;
const TAG_LIT_LANG: u8 = 0x04;
const TAG_LIT_TYPED: u8 = 0x05;

/// Append the tagged encoding of one term.
pub fn encode_term(term: &Term, out: &mut Vec<u8>) {
    match term {
        Term::Iri(iri) => {
            out.push(TAG_IRI);
            write_str(iri, out);
        }
        Term::Blank(label) => {
            out.push(TAG_BLANK);
            write_str(label, out);
        }
        Term::Literal(lit) => encode_literal(lit, out),
    }
}

fn encode_literal(lit: &Literal, out: &mut Vec<u8>) {
    if let Some(lang) = lit.lang() {
        out.push(TAG_LIT_LANG);
        write_str(lit.lexical(), out);
        write_str(lang, out);
    } else {
        let dt = lit.datatype();
        if dt == crate::vocab::xsd::STRING {
            out.push(TAG_LIT_PLAIN);
            write_str(lit.lexical(), out);
        } else {
            out.push(TAG_LIT_TYPED);
            write_str(lit.lexical(), out);
            write_str(dt, out);
        }
    }
}

/// Decode one tagged term at `*pos`, advancing it.
pub fn decode_term(bytes: &[u8], pos: &mut usize) -> Result<Term, CodecError> {
    let &tag = bytes.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_IRI => Ok(Term::iri(read_str(bytes, pos)?)),
        TAG_BLANK => Ok(Term::blank(read_str(bytes, pos)?)),
        TAG_LIT_PLAIN => Ok(Term::Literal(Literal::string(read_str(bytes, pos)?))),
        TAG_LIT_LANG => {
            let lexical = read_str(bytes, pos)?.to_string();
            let lang = read_str(bytes, pos)?;
            Ok(Term::Literal(Literal::lang_string(&lexical, lang)))
        }
        TAG_LIT_TYPED => {
            let lexical = read_str(bytes, pos)?.to_string();
            let dt = read_str(bytes, pos)?;
            Ok(Term::Literal(Literal::typed(&lexical, dt)))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Append the tagged encoding of one triple (three terms, S then P then O).
pub fn encode_triple(triple: &Triple, out: &mut Vec<u8>) {
    encode_term(&triple.subject, out);
    encode_term(&triple.predicate, out);
    encode_term(&triple.object, out);
}

/// Decode one triple at `*pos`, advancing it.
pub fn decode_triple(bytes: &[u8], pos: &mut usize) -> Result<Triple, CodecError> {
    let s = decode_term(bytes, pos)?;
    let p = decode_term(bytes, pos)?;
    let o = decode_term(bytes, pos)?;
    Ok(Triple::new(s, p, o))
}

// ---------------------------------------------------------------------------
// Whole-graph encode / decode
// ---------------------------------------------------------------------------

/// Encode `graph` into the canonical binary form.
///
/// Output depends only on the triple *set*: `encode_graph(&decode_graph(&b)?)
/// == b` for any valid `b`.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let mut triples: Vec<Triple> = graph.iter().collect();
    triples.sort_unstable();
    triples.dedup();

    // Term table in first-appearance order over the sorted walk.
    fn id_of<'a>(
        term: &'a Term,
        table: &mut Vec<&'a Term>,
        ids: &mut HashMap<&'a Term, u64>,
    ) -> u64 {
        if let Some(&id) = ids.get(term) {
            return id;
        }
        let id = table.len() as u64;
        table.push(term);
        ids.insert(term, id);
        id
    }
    let mut table: Vec<&Term> = Vec::new();
    let mut ids: HashMap<&Term, u64> = HashMap::new();
    let mut id_triples: Vec<(u64, u64, u64)> = Vec::with_capacity(triples.len());
    for t in &triples {
        let s = id_of(&t.subject, &mut table, &mut ids);
        let p = id_of(&t.predicate, &mut table, &mut ids);
        let o = id_of(&t.object, &mut table, &mut ids);
        id_triples.push((s, p, o));
    }

    let mut out = Vec::with_capacity(triples.len() * 12 + 64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_varint(table.len() as u64, &mut out);
    for term in &table {
        encode_term(term, &mut out);
    }
    write_varint(id_triples.len() as u64, &mut out);
    for (s, p, o) in &id_triples {
        write_varint(*s, &mut out);
        write_varint(*p, &mut out);
        write_varint(*o, &mut out);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a canonical binary graph block, verifying the trailing CRC.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, CodecError> {
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(CodecError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    let found = crc32(payload);
    if expected != found {
        return Err(CodecError::Checksum { expected, found });
    }
    if payload[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = payload[MAGIC.len()];
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let mut pos = MAGIC.len() + 1;

    let term_count = read_varint(payload, &mut pos)?;
    let term_count = usize::try_from(term_count).map_err(|_| CodecError::Truncated)?;
    // Guard against absurd counts in corrupt headers before allocating.
    if term_count > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut table: Vec<Term> = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        table.push(decode_term(payload, &mut pos)?);
    }

    let triple_count = read_varint(payload, &mut pos)?;
    let triple_count = usize::try_from(triple_count).map_err(|_| CodecError::Truncated)?;
    if triple_count > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut graph = Graph::new();
    for _ in 0..triple_count {
        let s = read_varint(payload, &mut pos)?;
        let p = read_varint(payload, &mut pos)?;
        let o = read_varint(payload, &mut pos)?;
        let term = |id: u64| -> Result<&Term, CodecError> {
            usize::try_from(id)
                .ok()
                .and_then(|i| table.get(i))
                .ok_or(CodecError::IdOutOfRange(id))
        };
        graph.insert(Triple::new(
            term(s)?.clone(),
            term(p)?.clone(),
            term(o)?.clone(),
        ));
    }
    if pos != payload.len() {
        // Trailing garbage inside a CRC-valid payload cannot normally
        // happen, but reject it rather than silently ignoring bytes.
        return Err(CodecError::Truncated);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/p"),
            Term::iri("http://example.org/b"),
        );
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/name"),
            Term::string("Alpha"),
        );
        g.add(
            Term::blank("n1"),
            Term::iri("http://example.org/label"),
            Term::Literal(Literal::lang_string("ville", "FR")),
        );
        g.add(
            Term::iri("http://example.org/a"),
            Term::iri("http://example.org/count"),
            Term::integer(42),
        );
        g
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_round_trips() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            out.clear();
            write_varint(v, &mut out);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80, 0x80], &mut pos),
            Err(CodecError::Truncated)
        );
        let eleven = [0xFF; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&eleven, &mut pos), Err(CodecError::BadVarint));
    }

    #[test]
    fn graph_round_trip_is_byte_identical() {
        let g = sample_graph();
        let bytes = encode_graph(&g);
        let decoded = decode_graph(&bytes).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(encode_graph(&decoded), bytes, "re-encode must be identical");
    }

    #[test]
    fn encoding_is_insertion_order_independent() {
        let g = sample_graph();
        let mut reversed = Graph::new();
        let mut triples: Vec<Triple> = g.iter().collect();
        triples.reverse();
        reversed.extend_triples(triples);
        assert_eq!(encode_graph(&g), encode_graph(&reversed));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let bytes = encode_graph(&g);
        let decoded = decode_graph(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(encode_graph(&decoded), bytes);
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics() {
        let bytes = encode_graph(&sample_graph());
        for cut in 0..bytes.len() {
            let err = decode_graph(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated | CodecError::Checksum { .. }),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_yield_checksum_errors() {
        let bytes = encode_graph(&sample_graph());
        // Flip one bit in each byte of the payload (CRC excluded: flipping
        // the recorded CRC also yields a Checksum mismatch).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            let err = decode_graph(&corrupt).unwrap_err();
            assert!(
                matches!(err, CodecError::Checksum { .. }),
                "flip at {i}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn term_tags_cover_all_literal_shapes() {
        let terms = [
            Term::iri("http://example.org/x"),
            Term::blank("b0"),
            Term::string("plain"),
            Term::Literal(Literal::lang_string("hi", "en-GB")),
            Term::typed("3.25", crate::vocab::xsd::DOUBLE),
        ];
        let mut out = Vec::new();
        for t in &terms {
            out.clear();
            encode_term(t, &mut out);
            let mut pos = 0;
            assert_eq!(&decode_term(&out, &mut pos).unwrap(), t);
            assert_eq!(pos, out.len());
        }
        let mut pos = 0;
        assert_eq!(
            decode_term(&[0x7F], &mut pos),
            Err(CodecError::BadTag(0x7F))
        );
    }
}
