//! RDF datasets: a default graph plus named graphs, with N-Quads and TriG
//! serialization.
//!
//! Aggregation middleware needs to keep sources apart even after merging —
//! "in the case of multiple geospatial data servers, each node may enforce
//! its own set of policies" (§7). A [`Dataset`] keeps one named graph per
//! source while still offering a merged view for query/inference.

use std::collections::BTreeMap;

use crate::error::{RdfError, RdfResult};
use crate::graph::Graph;
use crate::namespace::PrefixMap;
#[cfg(test)]
use crate::term::Term;
use crate::term::Triple;

/// A collection of graphs: one default graph and any number of named ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dataset {
    default: Graph,
    named: BTreeMap<String, Graph>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// The default graph.
    pub fn default_graph(&self) -> &Graph {
        &self.default
    }

    /// Mutable default graph.
    pub fn default_graph_mut(&mut self) -> &mut Graph {
        &mut self.default
    }

    /// The named graph under `name`, if present.
    pub fn graph(&self, name: &str) -> Option<&Graph> {
        self.named.get(name)
    }

    /// The named graph under `name`, created on first use.
    pub fn graph_mut(&mut self, name: &str) -> &mut Graph {
        self.named.entry(name.to_string()).or_default()
    }

    /// Insert a whole graph under a name (replacing any previous content).
    pub fn insert_graph(&mut self, name: &str, graph: Graph) {
        self.named.insert(name.to_string(), graph);
    }

    /// Remove a named graph, returning it.
    pub fn remove_graph(&mut self, name: &str) -> Option<Graph> {
        self.named.remove(name)
    }

    /// Names of the named graphs, sorted.
    pub fn graph_names(&self) -> Vec<&str> {
        self.named.keys().map(String::as_str).collect()
    }

    /// Total triples across all graphs.
    pub fn len(&self) -> usize {
        self.default.len() + self.named.values().map(Graph::len).sum::<usize>()
    }

    /// True when every graph is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge every graph (default + named) into one graph — the aggregated
    /// view handed to the reasoner and query engine.
    pub fn union(&self) -> Graph {
        let mut g = Graph::new();
        g.extend_from(&self.default);
        for named in self.named.values() {
            g.extend_from(named);
        }
        g
    }

    /// Which graphs contain the triple (None = default graph).
    pub fn graphs_containing(&self, triple: &Triple) -> Vec<Option<&str>> {
        let mut out = Vec::new();
        if self.default.contains(triple) {
            out.push(None);
        }
        for (name, g) in &self.named {
            if g.contains(triple) {
                out.push(Some(name.as_str()));
            }
        }
        out
    }

    // --- N-Quads ---------------------------------------------------------

    /// Serialize as N-Quads: default-graph triples as triples, named-graph
    /// triples with their graph IRI as the fourth term.
    pub fn to_nquads(&self) -> String {
        let mut out = String::new();
        for t in self.default.iter() {
            out.push_str(&format!("{} {} {} .\n", t.subject, t.predicate, t.object));
        }
        for (name, g) in &self.named {
            for t in g.iter() {
                out.push_str(&format!(
                    "{} {} {} <{name}> .\n",
                    t.subject, t.predicate, t.object
                ));
            }
        }
        out
    }

    /// Parse an N-Quads document.
    pub fn from_nquads(input: &str) -> RdfResult<Dataset> {
        let mut ds = Dataset::new();
        for (idx, raw) in input.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Reuse the N-Triples line parser by splitting off an optional
            // trailing graph term: find the final ` <graph> .` suffix.
            let (triple_part, graph_name) =
                split_quad_line(line).ok_or_else(|| RdfError::Syntax {
                    line: line_no,
                    message: "malformed N-Quads line".to_string(),
                })?;
            let parsed =
                crate::ntriples::parse(&format!("{triple_part} .")).map_err(|e| match e {
                    RdfError::Syntax { message, .. } => RdfError::Syntax {
                        line: line_no,
                        message,
                    },
                    other => other,
                })?;
            let target = match graph_name {
                Some(name) => ds.graph_mut(&name),
                None => &mut ds.default,
            };
            for t in parsed.iter() {
                target.insert(t);
            }
        }
        Ok(ds)
    }

    // --- TriG ------------------------------------------------------------

    /// Serialize as TriG: the default graph at the top level, each named
    /// graph inside a `<name> { ... }` block.
    pub fn to_trig(&self, prefixes: &PrefixMap) -> String {
        let mut out = String::new();
        for (p, ns) in prefixes.iter() {
            out.push_str(&format!("@prefix {p}: <{ns}> .\n"));
        }
        if !prefixes.is_empty() {
            out.push('\n');
        }
        // Default graph body without its own prefix header.
        out.push_str(&graph_body(&self.default, prefixes));
        for (name, g) in &self.named {
            let compacted = prefixes
                .compact(name)
                .unwrap_or_else(|| format!("<{name}>"));
            out.push_str(&format!("{compacted} {{\n"));
            for line in graph_body(g, prefixes).lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parse a TriG document (the subset emitted by [`Dataset::to_trig`]:
    /// prefix header, top-level triples, and `name { ... }` blocks with no
    /// nested braces).
    pub fn from_trig(input: &str) -> RdfResult<Dataset> {
        let mut ds = Dataset::new();
        let mut header = String::new();
        let mut default_body = String::new();
        let mut rest = input;
        let mut line_base = 0u32;

        // Pass 1: extract prefix lines (they apply to every graph).
        for line in input.lines() {
            let t = line.trim();
            if t.starts_with("@prefix") || t.to_ascii_lowercase().starts_with("prefix") {
                header.push_str(line);
                header.push('\n');
            }
        }

        while !rest.is_empty() {
            // Find the next graph block opener `{` that is not inside a
            // statement (heuristic: '{' preceded on its line by a term).
            match rest.find('{') {
                None => {
                    default_body.push_str(rest);
                    rest = "";
                }
                Some(open) => {
                    let before = &rest[..open];
                    let close = rest[open..].find('}').ok_or(RdfError::Syntax {
                        line: line_base,
                        message: "unterminated graph block".to_string(),
                    })? + open;
                    // The graph name is the last token before '{'.
                    let name_token = before
                        .rsplit(|c: char| c.is_whitespace())
                        .find(|t| !t.is_empty())
                        .ok_or(RdfError::Syntax {
                            line: line_base,
                            message: "graph block without a name".to_string(),
                        })?;
                    // Everything before the name token is default-graph body.
                    let name_start = before.rfind(name_token).expect("token came from before");
                    default_body.push_str(&before[..name_start]);

                    let name = if let Some(stripped) = name_token
                        .strip_prefix('<')
                        .and_then(|t| t.strip_suffix('>'))
                    {
                        stripped.to_string()
                    } else {
                        // Prefixed name: expand with the header prefixes.
                        let probe = format!("{header}\n{name_token} <urn:x#p> <urn:x#o> .");
                        let g = crate::turtle::parse(&probe)?;
                        let resolved = g
                            .iter()
                            .next()
                            .and_then(|t| t.subject.as_iri().map(str::to_string));
                        resolved.ok_or(RdfError::Syntax {
                            line: line_base,
                            message: format!("cannot resolve graph name {name_token}"),
                        })?
                    };
                    let body = &rest[open + 1..close];
                    let g = crate::turtle::parse(&format!("{header}\n{body}"))?;
                    ds.graph_mut(&name).extend_from(&g);
                    rest = &rest[close + 1..];
                    line_base += 1;
                }
            }
        }
        let g = crate::turtle::parse(&format!("{header}\n{default_body}"))?;
        // The header lines were already parsed once; extend keeps set
        // semantics so duplicates collapse.
        ds.default.extend_from(&g);
        Ok(ds)
    }
}

/// Turtle body of a graph without the `@prefix` header.
fn graph_body(g: &Graph, prefixes: &PrefixMap) -> String {
    let full = crate::turtle::serialize(g, prefixes);
    full.lines()
        .filter(|l| !l.trim_start().starts_with("@prefix") && !l.trim().is_empty())
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Split an N-Quads line into (triple text without final dot, optional
/// graph IRI).
fn split_quad_line(line: &str) -> Option<(String, Option<String>)> {
    let line = line.strip_suffix('.')?.trim_end();
    // A graph label is a final `<...>` term; check whether removing it
    // still leaves three terms by asking the N-Triples parser.
    if line.ends_with('>') {
        if let Some(open) = line.rfind('<') {
            let head = line[..open].trim_end();
            let graph = &line[open + 1..line.len() - 1];
            // The head must itself parse as a triple; otherwise the final
            // IRI was the object of a 3-term line.
            if crate::ntriples::parse(&format!("{head} .")).is_ok() {
                return Some((head.to_string(), Some(graph.to_string())));
            }
        }
    }
    Some((line.to_string(), None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.default_graph_mut().insert(t("urn:a", "urn:p", "urn:b"));
        ds.graph_mut("urn:src:hydro")
            .insert(t("urn:stream1", "urn:p", "urn:x"));
        ds.graph_mut("urn:src:hydro").add(
            Term::iri("urn:stream1"),
            Term::iri("urn:q"),
            Term::string("White Rock"),
        );
        ds.graph_mut("urn:src:chem")
            .insert(t("urn:site1", "urn:p", "urn:y"));
        ds
    }

    #[test]
    fn union_merges_all_graphs() {
        let ds = sample();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.union().len(), 4);
        assert_eq!(ds.graph_names(), vec!["urn:src:chem", "urn:src:hydro"]);
    }

    #[test]
    fn provenance_lookup() {
        let ds = sample();
        let probe = t("urn:stream1", "urn:p", "urn:x");
        assert_eq!(ds.graphs_containing(&probe), vec![Some("urn:src:hydro")]);
        let missing = t("urn:z", "urn:z", "urn:z");
        assert!(ds.graphs_containing(&missing).is_empty());
        let default_only = t("urn:a", "urn:p", "urn:b");
        assert_eq!(ds.graphs_containing(&default_only), vec![None]);
    }

    #[test]
    fn nquads_roundtrip() {
        let ds = sample();
        let nq = ds.to_nquads();
        assert!(nq.contains("<urn:src:hydro> ."), "{nq}");
        let back = Dataset::from_nquads(&nq).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn nquads_distinguishes_object_iri_from_graph() {
        // A 3-term line ending in an IRI object must stay in the default
        // graph.
        let ds = Dataset::from_nquads("<urn:s> <urn:p> <urn:o> .\n").unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        assert!(ds.graph_names().is_empty());
        // A 4-term line goes to the named graph.
        let ds2 = Dataset::from_nquads("<urn:s> <urn:p> <urn:o> <urn:g> .\n").unwrap();
        assert_eq!(ds2.default_graph().len(), 0);
        assert_eq!(ds2.graph("urn:g").unwrap().len(), 1);
    }

    #[test]
    fn nquads_literals_roundtrip() {
        let mut ds = Dataset::new();
        ds.graph_mut("urn:g").add(
            Term::iri("urn:s"),
            Term::iri("urn:p"),
            Term::string("hello \"world\""),
        );
        let back = Dataset::from_nquads(&ds.to_nquads()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn nquads_rejects_garbage() {
        assert!(Dataset::from_nquads("not a quad line\n").is_err());
        assert!(Dataset::from_nquads("<urn:s> <urn:p> .\n").is_err());
    }

    #[test]
    fn trig_roundtrip() {
        let ds = sample();
        let trig = ds.to_trig(&PrefixMap::common());
        assert!(trig.contains("<urn:src:hydro> {"), "{trig}");
        let back = Dataset::from_trig(&trig).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.graph_names(), ds.graph_names());
        for t in ds.union().iter() {
            assert!(back.union().contains(&t), "missing {t} in\n{trig}");
        }
    }

    #[test]
    fn trig_with_prefixed_graph_names() {
        let trig = r#"@prefix app: <http://grdf.org/app#> .
app:x app:p app:y .
app:hydroGraph {
    app:stream1 app:name "White Rock" .
}
"#;
        let ds = Dataset::from_trig(trig).unwrap();
        assert_eq!(ds.default_graph().len(), 1);
        assert_eq!(ds.graph("http://grdf.org/app#hydroGraph").unwrap().len(), 1);
    }

    #[test]
    fn empty_dataset_serializes_cleanly() {
        let ds = Dataset::new();
        assert!(ds.is_empty());
        assert_eq!(ds.to_nquads(), "");
        let back = Dataset::from_nquads("").unwrap();
        assert!(back.is_empty());
        let back2 = Dataset::from_trig("").unwrap();
        assert!(back2.is_empty());
    }
}
