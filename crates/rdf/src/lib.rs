//! RDF substrate for GRDF: data model, indexed triple store, and syntaxes.
//!
//! The paper expresses GRDF in OWL over RDF. No mature RDF crate is in the
//! allowed dependency set, so this crate implements the needed stack from
//! scratch:
//!
//! * [`term`] — IRIs, blank nodes, plain/lang/typed literals.
//! * [`vocab`] — RDF/RDFS/OWL/XSD vocabulary constants.
//! * [`graph`] — an interning, triply-indexed (SPO/POS/OSP) in-memory
//!   triple store with pattern matching.
//! * [`namespace`] — prefix maps and CURIE expansion/compaction.
//! * [`ntriples`] / [`turtle`] — line-based and Turtle syntax.
//! * [`rdfxml`] — the RDF/XML subset used by the paper's listings.
//! * [`isomorphism`] — blank-node-insensitive graph equality.
//! * [`dataset`] — named graphs with N-Quads/TriG (per-source provenance).
//! * [`diagnostic`] — the typed lint-diagnostic framework (stable codes,
//!   severities, reports) every static-analysis pass reports through.
//! * [`codec`] — canonical (insertion-order-independent) binary graph
//!   encoding with CRC32 framing, the substrate of `grdf-store` durability.
//!
//! # Example
//!
//! ```
//! use grdf_rdf::graph::Graph;
//! use grdf_rdf::term::{Term, Triple};
//!
//! let mut g = Graph::new();
//! g.insert(Triple::new(
//!     Term::iri("http://example.org/dallas"),
//!     Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
//!     Term::iri("http://example.org/City"),
//! ));
//! assert_eq!(g.len(), 1);
//! let hits = g.match_pattern(Some(&Term::iri("http://example.org/dallas")), None, None);
//! assert_eq!(hits.len(), 1);
//! ```

pub mod codec;
pub mod dataset;
pub mod diagnostic;
pub mod error;
pub mod graph;
pub mod isomorphism;
pub mod labels;
pub mod namespace;
pub mod ntriples;
pub mod rdfxml;
pub mod term;
pub mod turtle;
pub mod vocab;

pub use codec::CodecError;
pub use dataset::Dataset;
pub use diagnostic::{Diagnostic, LintCode, LintReport, Severity};
pub use error::{RdfError, RdfResult};
pub use graph::Graph;
pub use namespace::PrefixMap;
pub use term::{Literal, Term, Triple};
