//! Blank-node-insensitive graph equality.
//!
//! Two RDF graphs are isomorphic when a bijection between their blank nodes
//! maps one triple set onto the other. The algorithm here is iterative
//! signature refinement (hash of the ground neighbourhood, repeated) with a
//! backtracking search within the residual signature classes — ample for the
//! graph sizes this workspace round-trips in tests.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use crate::graph::Graph;
use crate::term::{Term, Triple};

/// True when `a` and `b` are isomorphic (equal up to blank node renaming).
pub fn isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let ta: Vec<Triple> = a.iter().collect();
    let tb: Vec<Triple> = b.iter().collect();

    // Ground triples (no blanks) must match exactly.
    fn ground(ts: &[Triple]) -> Vec<&Triple> {
        ts.iter().filter(|t| !has_blank(t)).collect()
    }
    let mut ga: Vec<&Triple> = ground(&ta);
    let mut gb: Vec<&Triple> = ground(&tb);
    ga.sort();
    gb.sort();
    if ga != gb {
        return false;
    }

    let blanks_a = blank_labels(&ta);
    let blanks_b = blank_labels(&tb);
    if blanks_a.len() != blanks_b.len() {
        return false;
    }
    if blanks_a.is_empty() {
        return true;
    }

    // Refine signatures for both sides.
    let sig_a = refine(&ta, &blanks_a);
    let sig_b = refine(&tb, &blanks_b);

    // Group by signature; candidate sets must have equal sizes.
    let mut groups: BTreeMap<u64, (Vec<String>, Vec<String>)> = BTreeMap::new();
    for (label, sig) in &sig_a {
        groups.entry(*sig).or_default().0.push(label.clone());
    }
    for (label, sig) in &sig_b {
        groups.entry(*sig).or_default().1.push(label.clone());
    }
    for (left, right) in groups.values() {
        if left.len() != right.len() {
            return false;
        }
    }

    // Backtracking within groups.
    let ordered: Vec<(Vec<String>, Vec<String>)> = groups.into_values().collect();
    let mut mapping: HashMap<String, String> = HashMap::new();
    backtrack(&ta, &tb, &ordered, 0, 0, &mut mapping)
}

fn has_blank(t: &Triple) -> bool {
    t.subject.is_blank() || t.object.is_blank()
}

fn blank_labels(ts: &[Triple]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for t in ts {
        for term in [&t.subject, &t.object] {
            if let Term::Blank(b) = term {
                if !out.iter().any(|x| x == b.as_ref()) {
                    out.push(b.to_string());
                }
            }
        }
    }
    out
}

/// Iteratively refine a signature per blank node from its incident triples.
fn refine(ts: &[Triple], blanks: &[String]) -> HashMap<String, u64> {
    let mut sig: HashMap<String, u64> = blanks.iter().map(|b| (b.clone(), 0)).collect();
    for _round in 0..3 {
        let mut next: HashMap<String, u64> = HashMap::new();
        for b in blanks {
            let mut parts: Vec<u64> = Vec::new();
            for t in ts {
                let s_is = t.subject.as_blank() == Some(b);
                let o_is = t.object.as_blank() == Some(b);
                if !s_is && !o_is {
                    continue;
                }
                let mut h = DefaultHasher::new();
                (s_is, o_is).hash(&mut h);
                t.predicate.to_string().hash(&mut h);
                // Other end: ground terms by value, blanks by current sig.
                let other = if s_is { &t.object } else { &t.subject };
                match other {
                    Term::Blank(ob) => sig.get(ob.as_ref()).copied().unwrap_or(0).hash(&mut h),
                    ground => ground.to_string().hash(&mut h),
                }
                parts.push(h.finish());
            }
            parts.sort_unstable();
            let mut h = DefaultHasher::new();
            parts.hash(&mut h);
            next.insert(b.clone(), h.finish());
        }
        sig = next;
    }
    sig
}

fn backtrack(
    ta: &[Triple],
    tb: &[Triple],
    groups: &[(Vec<String>, Vec<String>)],
    gi: usize,
    li: usize,
    mapping: &mut HashMap<String, String>,
) -> bool {
    if gi == groups.len() {
        return check_mapping(ta, tb, mapping);
    }
    let (left, right) = &groups[gi];
    if li == left.len() {
        return backtrack(ta, tb, groups, gi + 1, 0, mapping);
    }
    let l = &left[li];
    for r in right {
        if mapping.values().any(|v| v == r) {
            continue;
        }
        mapping.insert(l.clone(), r.clone());
        if backtrack(ta, tb, groups, gi, li + 1, mapping) {
            return true;
        }
        mapping.remove(l);
    }
    false
}

fn check_mapping(ta: &[Triple], tb: &[Triple], mapping: &HashMap<String, String>) -> bool {
    let rename = |t: &Term| -> Term {
        match t {
            Term::Blank(b) => match mapping.get(b.as_ref()) {
                Some(to) => Term::blank(to),
                None => t.clone(),
            },
            other => other.clone(),
        }
    };
    let mut mapped: Vec<Triple> = ta
        .iter()
        .map(|t| Triple::new(rename(&t.subject), t.predicate.clone(), rename(&t.object)))
        .collect();
    let mut target: Vec<Triple> = tb.to_vec();
    mapped.sort();
    target.sort();
    mapped == target
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(turtle: &str) -> Graph {
        crate::turtle::parse(&format!("@prefix e: <urn:e#> .\n{turtle}")).unwrap()
    }

    #[test]
    fn identical_ground_graphs_are_isomorphic() {
        assert!(isomorphic(&g("e:a e:p e:b ."), &g("e:a e:p e:b .")));
    }

    #[test]
    fn differing_ground_graphs_are_not() {
        assert!(!isomorphic(&g("e:a e:p e:b ."), &g("e:a e:p e:c .")));
    }

    #[test]
    fn blank_renaming_is_isomorphic() {
        assert!(isomorphic(&g("_:x e:p e:b ."), &g("_:y e:p e:b .")));
    }

    #[test]
    fn blank_structure_must_match() {
        // x→y chain vs two independent nodes.
        let a = g("_:x e:p _:y . _:y e:p _:x .");
        let b = g("_:x e:p _:y . _:x e:p _:z .");
        assert!(!isomorphic(&a, &b));
    }

    #[test]
    fn symmetric_pair_needs_backtracking() {
        // Two blanks with identical signatures; only one assignment works
        // for the asymmetric literal attachment.
        let a = g("_:x e:p _:y . _:x e:v \"1\" . _:y e:v \"2\" .");
        let b = g("_:m e:p _:n . _:m e:v \"1\" . _:n e:v \"2\" .");
        let c = g("_:m e:p _:n . _:n e:v \"1\" . _:m e:v \"2\" .");
        assert!(isomorphic(&a, &b));
        assert!(!isomorphic(&a, &c));
    }

    #[test]
    fn size_mismatch_fast_path() {
        assert!(!isomorphic(
            &g("e:a e:p e:b ."),
            &g("e:a e:p e:b . e:a e:p e:c .")
        ));
    }

    #[test]
    fn cycle_of_blanks_isomorphic_under_rotation() {
        let a = g("_:a e:n _:b . _:b e:n _:c . _:c e:n _:a .");
        let b = g("_:p e:n _:q . _:q e:n _:r . _:r e:n _:p .");
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn blank_count_mismatch() {
        let a = g("_:x e:p _:x .");
        let b = g("_:x e:p _:y .");
        assert!(!isomorphic(&a, &b));
    }
}
