//! Error type shared by the RDF syntaxes.

use std::fmt;

/// Errors produced while parsing or serializing RDF documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Syntax error in a textual format (Turtle / N-Triples).
    Syntax {
        /// 1-based line of the error.
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UndefinedPrefix {
        /// The offending prefix (without the colon).
        prefix: String,
        /// 1-based line of the use.
        line: u32,
    },
    /// The underlying XML document was malformed (RDF/XML input).
    Xml(String),
    /// The XML was well-formed but not valid RDF/XML.
    RdfXml {
        /// Human-readable description.
        message: String,
    },
    /// An IRI failed basic validation (relative with no base, illegal chars).
    BadIri {
        /// The offending IRI text.
        iri: String,
    },
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            RdfError::UndefinedPrefix { prefix, line } => {
                write!(f, "line {line}: undefined prefix '{prefix}:'")
            }
            RdfError::Xml(e) => write!(f, "XML error: {e}"),
            RdfError::RdfXml { message } => write!(f, "RDF/XML error: {message}"),
            RdfError::BadIri { iri } => write!(f, "invalid IRI: {iri}"),
        }
    }
}

impl std::error::Error for RdfError {}

impl From<grdf_xml::XmlError> for RdfError {
    fn from(e: grdf_xml::XmlError) -> Self {
        RdfError::Xml(e.to_string())
    }
}

/// Result alias for RDF operations.
pub type RdfResult<T> = Result<T, RdfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = RdfError::Syntax {
            line: 4,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "line 4: bad token");
        let e = RdfError::UndefinedPrefix {
            prefix: "gml".into(),
            line: 2,
        };
        assert!(e.to_string().contains("gml"));
    }

    #[test]
    fn xml_errors_convert() {
        let xe = grdf_xml::parse("<a>").unwrap_err();
        let re: RdfError = xe.into();
        assert!(matches!(re, RdfError::Xml(_)));
    }
}
