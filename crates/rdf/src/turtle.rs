//! Turtle (Terse RDF Triple Language) — parser and serializer.
//!
//! Supported subset (more than enough for GRDF ontologies and data):
//! `@prefix`/`@base` (and SPARQL-style `PREFIX`/`BASE`), prefixed names,
//! IRIs with relative resolution against the base, the `a` keyword,
//! predicate (`;`) and object (`,`) lists, anonymous blank nodes
//! `[ ... ]`, labelled blank nodes `_:l`, RDF collections `( ... )`,
//! numeric/boolean shorthand literals, quoted strings (single and triple
//! quoted), language tags and `^^` datatypes.

use crate::error::{RdfError, RdfResult};
use crate::graph::Graph;
use crate::namespace::PrefixMap;
use crate::term::{escape_literal, Literal, Term, Triple};
use crate::vocab::{rdf, xsd};

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Serialize `graph` with the given prefix map: `@prefix` header, grouped by
/// subject, `a` for `rdf:type`, `;`/`,` continuation.
pub fn serialize(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut out = String::new();
    for (p, ns) in prefixes.iter() {
        out.push_str(&format!("@prefix {p}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }

    let mut subjects = graph.all_subjects();
    subjects.sort();
    for subject in subjects {
        let mut triples = graph.match_pattern(Some(&subject), None, None);
        // rdf:type first, then predicate order.
        triples.sort_by(|a, b| {
            let a_type = a.predicate.as_iri() == Some(rdf::TYPE);
            let b_type = b.predicate.as_iri() == Some(rdf::TYPE);
            b_type
                .cmp(&a_type)
                .then_with(|| (&a.predicate, &a.object).cmp(&(&b.predicate, &b.object)))
        });
        out.push_str(&render_term(&subject, prefixes));
        let mut prev_pred: Option<Term> = None;
        for (i, t) in triples.iter().enumerate() {
            if prev_pred.as_ref() == Some(&t.predicate) {
                out.push_str(", ");
            } else {
                if i > 0 {
                    out.push_str(" ;\n    ");
                } else {
                    out.push(' ');
                }
                if t.predicate.as_iri() == Some(rdf::TYPE) {
                    out.push_str("a ");
                } else {
                    out.push_str(&render_term(&t.predicate, prefixes));
                    out.push(' ');
                }
                prev_pred = Some(t.predicate.clone());
            }
            out.push_str(&render_term(&t.object, prefixes));
        }
        out.push_str(" .\n");
    }
    out
}

fn render_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => match prefixes.compact(iri) {
            Some(curie) => curie,
            None => format!("<{iri}>"),
        },
        Term::Blank(b) => format!("_:{b}"),
        Term::Literal(l) => {
            if l.datatype() == xsd::INTEGER || l.datatype() == xsd::BOOLEAN {
                // Shorthand forms are unambiguous for canonical lexicals.
                let lex = l.lexical();
                if lexically_shorthand(lex, l.datatype()) {
                    return lex.to_string();
                }
            }
            let mut s = format!("\"{}\"", escape_literal(l.lexical()));
            if let Some(lang) = l.lang() {
                s.push('@');
                s.push_str(lang);
            } else if l.datatype() != xsd::STRING {
                let dt = match prefixes.compact(l.datatype()) {
                    Some(curie) => curie,
                    None => format!("<{}>", l.datatype()),
                };
                s.push_str("^^");
                s.push_str(&dt);
            }
            s
        }
    }
}

fn lexically_shorthand(lex: &str, datatype: &str) -> bool {
    match datatype {
        xsd::BOOLEAN => lex == "true" || lex == "false",
        xsd::INTEGER => {
            !lex.is_empty()
                && lex
                    .strip_prefix(['+', '-'])
                    .unwrap_or(lex)
                    .chars()
                    .all(|c| c.is_ascii_digit())
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a Turtle document.
pub fn parse(input: &str) -> RdfResult<Graph> {
    let mut p = Parser::new(input);
    p.document()?;
    Ok(p.graph)
}

/// Parse a Turtle document and also return the prefixes it declared.
pub fn parse_with_prefixes(input: &str) -> RdfResult<(Graph, PrefixMap)> {
    let mut p = Parser::new(input);
    p.document()?;
    Ok((p.graph, p.prefixes))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    line: u32,
    graph: Graph,
    prefixes: PrefixMap,
    base: Option<String>,
    blank_counter: u64,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser {
            input,
            pos: 0,
            line: 1,
            graph: Graph::new(),
            prefixes: PrefixMap::new(),
            base: None,
            blank_counter: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::Syntax {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.input[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, c: char) -> RdfResult<()> {
        self.skip_ws();
        match self.bump() {
            Some(found) if found == c => Ok(()),
            Some(found) => Err(self.err(format!("expected {c:?}, found {found:?}"))),
            None => Err(self.err(format!("expected {c:?}, found end of input"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.input[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            // Keyword must be delimited.
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| c.is_whitespace() || c == '<' || c == ':') {
                for _ in 0..kw.len() {
                    self.bump();
                }
                return true;
            }
        }
        false
    }

    fn document(&mut self) -> RdfResult<()> {
        loop {
            self.skip_ws();
            if self.pos >= self.input.len() {
                return Ok(());
            }
            if self.try_keyword("@prefix") {
                self.directive_prefix(true)?;
            } else if self.try_keyword("@base") {
                self.directive_base(true)?;
            } else if self.try_keyword("PREFIX") {
                self.directive_prefix(false)?;
            } else if self.try_keyword("BASE") {
                self.directive_base(false)?;
            } else {
                self.triples_block()?;
                self.expect('.')?;
            }
        }
    }

    fn directive_prefix(&mut self, dotted: bool) -> RdfResult<()> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c != ':' && !c.is_whitespace()) {
            self.bump();
        }
        let prefix = self.input[start..self.pos].to_string();
        self.expect(':')?;
        self.skip_ws();
        let iri = self.iri_ref()?;
        self.prefixes.insert(&prefix, &iri);
        if dotted {
            self.expect('.')?;
        }
        Ok(())
    }

    fn directive_base(&mut self, dotted: bool) -> RdfResult<()> {
        self.skip_ws();
        let iri = self.iri_ref()?;
        self.base = Some(iri);
        if dotted {
            self.expect('.')?;
        }
        Ok(())
    }

    fn triples_block(&mut self) -> RdfResult<()> {
        self.skip_ws();
        let subject = if self.peek() == Some('[') {
            let node = self.blank_node_property_list()?;
            self.skip_ws();
            // `[ ... ] .` with no outer predicates is legal.
            if self.peek() == Some('.') {
                return Ok(());
            }
            node
        } else {
            self.resource_term()?
        };
        self.predicate_object_list(&subject)?;
        Ok(())
    }

    fn predicate_object_list(&mut self, subject: &Term) -> RdfResult<()> {
        loop {
            self.skip_ws();
            let predicate = if self.try_keyword("a") {
                Term::iri(rdf::TYPE)
            } else {
                let t = self.resource_term()?;
                if t.as_iri().is_none() {
                    return Err(self.err("predicate must be an IRI"));
                }
                t
            };
            loop {
                let object = self.object_term()?;
                self.graph
                    .insert(Triple::new(subject.clone(), predicate.clone(), object));
                self.skip_ws();
                if self.peek() == Some(',') {
                    self.bump();
                } else {
                    break;
                }
            }
            self.skip_ws();
            if self.peek() == Some(';') {
                self.bump();
                self.skip_ws();
                // A dangling `;` before `.` or `]` is allowed.
                if matches!(self.peek(), Some('.' | ']')) {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    /// Subject/predicate position: IRI, prefixed name, or labelled blank.
    fn resource_term(&mut self) -> RdfResult<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::iri(&self.iri_ref()?)),
            Some('_') if self.peek2() == Some(':') => self.blank_label(),
            Some('(') => self.collection(),
            Some(_) => self.prefixed_name(),
            None => Err(self.err("expected a term, found end of input")),
        }
    }

    fn object_term(&mut self) -> RdfResult<Term> {
        self.skip_ws();
        match self.peek() {
            Some('<') => Ok(Term::iri(&self.iri_ref()?)),
            Some('"' | '\'') => self.string_literal(),
            Some('[') => self.blank_node_property_list(),
            Some('(') => self.collection(),
            Some('_') if self.peek2() == Some(':') => self.blank_label(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => self.numeric_literal(),
            Some(_) => {
                if self.try_keyword("true") {
                    return Ok(Term::boolean(true));
                }
                if self.try_keyword("false") {
                    return Ok(Term::boolean(false));
                }
                self.prefixed_name()
            }
            None => Err(self.err("expected an object, found end of input")),
        }
    }

    fn iri_ref(&mut self) -> RdfResult<String> {
        self.expect('<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let raw = self.input[start..self.pos].to_string();
                self.bump();
                return Ok(self.resolve_iri(&raw));
            }
            if c.is_whitespace() {
                return Err(self.err("whitespace inside IRI"));
            }
            self.bump();
        }
        Err(self.err("unterminated IRI"))
    }

    fn resolve_iri(&self, raw: &str) -> String {
        if raw.contains("://") || raw.starts_with("urn:") || raw.starts_with("mailto:") {
            return raw.to_string();
        }
        match &self.base {
            Some(base) if !raw.is_empty() => {
                if let Some(frag) = raw.strip_prefix('#') {
                    let stem = base.split('#').next().unwrap_or(base);
                    format!("{stem}#{frag}")
                } else {
                    // Join relative reference onto the base directory.
                    let dir_end = base.rfind('/').map_or(base.len(), |i| i + 1);
                    format!("{}{}", &base[..dir_end], raw)
                }
            }
            Some(base) => base.clone(),
            None => raw.to_string(),
        }
    }

    fn prefixed_name(&mut self) -> RdfResult<Term> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !c.is_whitespace() && !matches!(c, ';' | ',' | ')' | ']' | '(' | '[' | '"' | '\''))
        {
            // A '.' can terminate a statement; only consume it when followed
            // by a name character (dotted locals like `app:Site.004` are
            // legal PN_LOCALs).
            if self.peek() == Some('.')
                && !self
                    .peek2()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-')
            {
                break;
            }
            self.bump();
        }
        let token = &self.input[start..self.pos];
        if token.is_empty() {
            return Err(self.err("expected a prefixed name"));
        }
        let Some((prefix, _local)) = token.split_once(':') else {
            return Err(self.err(format!("expected a prefixed name, found {token:?}")));
        };
        match self.prefixes.expand(token) {
            Some(iri) => Ok(Term::iri(&iri)),
            None => Err(RdfError::UndefinedPrefix {
                prefix: prefix.to_string(),
                line: self.line,
            }),
        }
    }

    fn blank_label(&mut self) -> RdfResult<Term> {
        self.bump(); // _
        self.bump(); // :
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("empty blank node label"));
        }
        Ok(Term::blank(&self.input[start..self.pos]))
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::blank(&format!("t{}", self.blank_counter))
    }

    fn blank_node_property_list(&mut self) -> RdfResult<Term> {
        self.expect('[')?;
        let node = self.fresh_blank();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(node);
        }
        self.predicate_object_list(&node)?;
        self.expect(']')?;
        Ok(node)
    }

    fn collection(&mut self) -> RdfResult<Term> {
        self.expect('(')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(')') {
                self.bump();
                break;
            }
            items.push(self.object_term()?);
        }
        // Build the rdf:first/rdf:rest chain.
        let mut tail = Term::iri(rdf::NIL);
        for item in items.into_iter().rev() {
            let cell = self.fresh_blank();
            self.graph
                .insert(Triple::new(cell.clone(), Term::iri(rdf::FIRST), item));
            self.graph
                .insert(Triple::new(cell.clone(), Term::iri(rdf::REST), tail));
            tail = cell;
        }
        Ok(tail)
    }

    fn numeric_literal(&mut self) -> RdfResult<Term> {
        let start = self.pos;
        if matches!(self.peek(), Some('+' | '-')) {
            self.bump();
        }
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' if !saw_dot && !saw_exp => {
                    // A trailing '.' is the statement terminator.
                    if self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                        saw_dot = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                'e' | 'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some('+' | '-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let lex = &self.input[start..self.pos];
        if lex.is_empty() || lex == "+" || lex == "-" {
            return Err(self.err("malformed numeric literal"));
        }
        let dt = if saw_exp {
            xsd::DOUBLE
        } else if saw_dot {
            xsd::DECIMAL
        } else {
            xsd::INTEGER
        };
        Ok(Term::typed(lex, dt))
    }

    fn string_literal(&mut self) -> RdfResult<Term> {
        let quote = self.peek().unwrap();
        let triple_quoted = self.input[self.pos..].starts_with(&quote.to_string().repeat(3));
        let mut value = String::new();
        if triple_quoted {
            for _ in 0..3 {
                self.bump();
            }
            let end = quote.to_string().repeat(3);
            loop {
                if self.input[self.pos..].starts_with(&end) {
                    for _ in 0..3 {
                        self.bump();
                    }
                    break;
                }
                match self.bump() {
                    None => return Err(self.err("unterminated triple-quoted string")),
                    Some('\\') => value.push(self.escape_char()?),
                    Some(c) => value.push(c),
                }
            }
        } else {
            self.bump();
            loop {
                match self.bump() {
                    None => return Err(self.err("unterminated string")),
                    Some(c) if c == quote => break,
                    Some('\\') => value.push(self.escape_char()?),
                    Some('\n') => return Err(self.err("newline in single-quoted string")),
                    Some(c) => value.push(c),
                }
            }
        }
        // Suffix: @lang or ^^datatype
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    self.bump();
                }
                if self.pos == start {
                    return Err(self.err("empty language tag"));
                }
                Ok(Term::Literal(Literal::lang_string(
                    &value,
                    &self.input[start..self.pos],
                )))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                self.skip_ws();
                let dt = match self.peek() {
                    Some('<') => self.iri_ref()?,
                    _ => match self.prefixed_name()? {
                        Term::Iri(iri) => iri.to_string(),
                        _ => return Err(self.err("datatype must be an IRI")),
                    },
                };
                Ok(Term::typed(&value, &dt))
            }
            _ => Ok(Term::string(&value)),
        }
    }

    fn escape_char(&mut self) -> RdfResult<char> {
        match self.bump() {
            Some('n') => Ok('\n'),
            Some('r') => Ok('\r'),
            Some('t') => Ok('\t'),
            Some('b') => Ok('\u{8}'),
            Some('f') => Ok('\u{c}'),
            Some('"') => Ok('"'),
            Some('\'') => Ok('\''),
            Some('\\') => Ok('\\'),
            Some('u') => self.unicode_escape(4),
            Some('U') => self.unicode_escape(8),
            other => Err(self.err(format!("bad string escape \\{other:?}"))),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> RdfResult<char> {
        let start = self.pos;
        for _ in 0..digits {
            if self.bump().is_none() {
                return Err(self.err("truncated unicode escape"));
            }
        }
        let hex = &self.input[start..self.pos];
        u32::from_str_radix(hex, 16)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| self.err(format!("bad unicode escape {hex}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::rdfs;

    #[test]
    fn parses_prefixes_and_a() {
        let g = parse(
            "@prefix ex: <urn:ex#> .\n@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
             ex:dog a ex:Animal ; rdfs:label \"Dog\" .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.has(
            &Term::iri("urn:ex#dog"),
            &Term::iri(rdf::TYPE),
            &Term::iri("urn:ex#Animal")
        ));
        assert!(g.has(
            &Term::iri("urn:ex#dog"),
            &Term::iri(rdfs::LABEL),
            &Term::string("Dog")
        ));
    }

    #[test]
    fn object_and_predicate_lists() {
        let g = parse("@prefix e: <urn:e#> . e:s e:p e:o1 , e:o2 ; e:q e:o3 .").unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(
            g.objects(&Term::iri("urn:e#s"), &Term::iri("urn:e#p"))
                .len(),
            2
        );
    }

    #[test]
    fn numeric_and_boolean_shorthand() {
        let g =
            parse("@prefix e: <urn:e#> . e:s e:i 42 ; e:d 3.25 ; e:x 1.0e3 ; e:b true .").unwrap();
        let s = Term::iri("urn:e#s");
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#i"))
                .unwrap()
                .as_literal()
                .unwrap()
                .as_integer(),
            Some(42)
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#d"))
                .unwrap()
                .as_literal()
                .unwrap()
                .datatype(),
            xsd::DECIMAL
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#x"))
                .unwrap()
                .as_literal()
                .unwrap()
                .datatype(),
            xsd::DOUBLE
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#b"))
                .unwrap()
                .as_literal()
                .unwrap()
                .as_boolean(),
            Some(true)
        );
    }

    #[test]
    fn negative_numbers_parse() {
        let g = parse("@prefix e: <urn:e#> . e:s e:p -7 ; e:q -2.5 .").unwrap();
        let s = Term::iri("urn:e#s");
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#p"))
                .unwrap()
                .as_literal()
                .unwrap()
                .as_integer(),
            Some(-7)
        );
        assert_eq!(
            g.object(&s, &Term::iri("urn:e#q"))
                .unwrap()
                .as_literal()
                .unwrap()
                .as_double(),
            Some(-2.5)
        );
    }

    #[test]
    fn blank_node_property_lists() {
        let g = parse("@prefix e: <urn:e#> . e:s e:p [ e:q e:o ; e:r \"v\" ] .").unwrap();
        assert_eq!(g.len(), 3);
        let inner = g
            .object(&Term::iri("urn:e#s"), &Term::iri("urn:e#p"))
            .unwrap();
        assert!(inner.is_blank());
        assert!(g.has(&inner, &Term::iri("urn:e#q"), &Term::iri("urn:e#o")));
    }

    #[test]
    fn bare_blank_node_subject() {
        let g = parse("@prefix e: <urn:e#> . [ e:p e:o ] .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn collections_build_first_rest_chains() {
        let g = parse("@prefix e: <urn:e#> . e:s e:list ( e:a e:b ) .").unwrap();
        let head = g
            .object(&Term::iri("urn:e#s"), &Term::iri("urn:e#list"))
            .unwrap();
        let first = g.object(&head, &Term::iri(rdf::FIRST)).unwrap();
        assert_eq!(first, Term::iri("urn:e#a"));
        let rest = g.object(&head, &Term::iri(rdf::REST)).unwrap();
        let second = g.object(&rest, &Term::iri(rdf::FIRST)).unwrap();
        assert_eq!(second, Term::iri("urn:e#b"));
        assert_eq!(
            g.object(&rest, &Term::iri(rdf::REST)).unwrap(),
            Term::iri(rdf::NIL)
        );
    }

    #[test]
    fn empty_collection_is_nil() {
        let g = parse("@prefix e: <urn:e#> . e:s e:list () .").unwrap();
        assert_eq!(
            g.object(&Term::iri("urn:e#s"), &Term::iri("urn:e#list"))
                .unwrap(),
            Term::iri(rdf::NIL)
        );
    }

    #[test]
    fn base_resolution() {
        let g = parse("@base <http://x.org/data/> . <item1> <p> <#frag> .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject, Term::iri("http://x.org/data/item1"));
        assert_eq!(t.object, Term::iri("http://x.org/data/#frag"));
    }

    #[test]
    fn sparql_style_directives() {
        let g = parse("PREFIX e: <urn:e#>\ne:s e:p e:o .").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn triple_quoted_strings_keep_newlines() {
        let g = parse("@prefix e: <urn:e#> . e:s e:p \"\"\"line1\nline2\"\"\" .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical(), "line1\nline2");
    }

    #[test]
    fn lang_and_datatype_suffixes() {
        let g = parse(
            "@prefix e: <urn:e#> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             e:s e:p \"x\"@en-US , \"5\"^^xsd:integer .",
        )
        .unwrap();
        let objs = g.objects(&Term::iri("urn:e#s"), &Term::iri("urn:e#p"));
        assert_eq!(objs.len(), 2);
        assert!(objs
            .iter()
            .any(|o| o.as_literal().unwrap().lang() == Some("en-us")));
        assert!(objs
            .iter()
            .any(|o| o.as_literal().unwrap().as_integer() == Some(5)));
    }

    #[test]
    fn undefined_prefix_is_reported() {
        let err = parse("a:s a:p a:o .").unwrap_err();
        assert!(matches!(err, RdfError::UndefinedPrefix { prefix, .. } if prefix == "a"));
    }

    #[test]
    fn comments_are_skipped() {
        let g = parse("# header\n@prefix e: <urn:e#> . # trailing\ne:s e:p e:o . # done").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn serialize_then_parse_is_identity() {
        let mut g = Graph::new();
        let prefixes = PrefixMap::common();
        g.add(
            Term::iri("http://grdf.org/ontology#Feature"),
            Term::iri(rdf::TYPE),
            Term::iri("http://www.w3.org/2002/07/owl#Class"),
        );
        g.add(
            Term::iri("http://grdf.org/ontology#Feature"),
            Term::iri(rdfs::LABEL),
            Term::string("Feature"),
        );
        g.add(Term::iri("urn:x"), Term::iri("urn:p"), Term::integer(7));
        g.add(Term::iri("urn:x"), Term::iri("urn:p"), Term::double(2.5));
        g.add(Term::blank("b"), Term::iri("urn:p"), Term::boolean(false));
        let text = serialize(&g, &prefixes);
        let g2 = parse(&text).unwrap();
        assert_eq!(g2.len(), g.len(), "serialized:\n{text}");
        for t in g.iter() {
            if t.subject.is_blank() {
                continue; // label may differ; count equality covers it
            }
            assert!(g2.contains(&t), "missing {t} in:\n{text}");
        }
    }

    #[test]
    fn serializer_uses_a_and_semicolons() {
        let mut g = Graph::new();
        g.add(Term::iri("urn:s"), Term::iri(rdf::TYPE), Term::iri("urn:C"));
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::string("v"));
        let text = serialize(&g, &PrefixMap::new());
        assert!(text.contains("<urn:s> a <urn:C> ;"), "{text}");
    }

    #[test]
    fn dangling_semicolon_is_tolerated() {
        let g = parse("@prefix e: <urn:e#> . e:s e:p e:o ; .").unwrap();
        assert_eq!(g.len(), 1);
    }
}
