//! Per-triple visibility labels: the storage half of the label-compilation
//! IR (ROADMAP item 1, Accumulo/GeoMesa cell-level visibility model).
//!
//! A [`VisBitset`] records which *roles* (by dense index) may see a triple;
//! a [`TripleLabels`] table maps interned id-triples to deduplicated label
//! classes. Policy compilation lives in `grdf-security::labels`; this module
//! only knows about bits and ids so the graph crate stays policy-agnostic.
//!
//! Visibility check at scan time is a single bitset intersection: a session
//! resolves its role(s) to an authorization [`VisBitset`] once, then each
//! triple costs one `intersects` call — O(words) per triple, zero per-role
//! state.

use std::collections::HashMap;

use crate::graph::TermId;

/// A fixed-width bitset over role indices. Width is owned by the enclosing
/// [`TripleLabels`] (all bitsets in one table share it); the bitset itself
/// just stores words so it can be hashed and deduplicated cheaply.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VisBitset {
    words: Vec<u64>,
}

impl VisBitset {
    /// An empty bitset sized for `width` bits (all hidden).
    #[must_use]
    pub fn new(width: usize) -> Self {
        VisBitset {
            words: vec![0u64; width.div_ceil(64)],
        }
    }

    /// Set bit `i`. Grows the word vector if needed so callers can build
    /// bitsets incrementally without pre-sizing.
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        let w = i / 64;
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << (i % 64)) != 0)
    }

    /// Whether any bit is set in both `self` and `other`.
    #[must_use]
    pub fn intersects(&self, other: &VisBitset) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Union `other` into `self`; returns true if any bit changed.
    pub fn union_with(&mut self, other: &VisBitset) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    /// True if every set bit of `self` is also set in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &VisBitset) -> bool {
        self.words.iter().enumerate().all(|(i, w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Indices of all set bits, ascending.
    #[must_use]
    pub fn iter_ones(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, w) in self.words.iter().enumerate() {
            let mut word = *w;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push(wi * 64 + bit);
                word &= word - 1;
            }
        }
        out
    }
}

/// Index of a deduplicated label class within a [`TripleLabels`] table.
pub type LabelId = u32;

/// Per-triple visibility table over interned id-triples.
///
/// Label *classes* (distinct bitsets) are deduplicated: real policy sets
/// produce a handful of classes over millions of triples, so the per-triple
/// cost is one `u32` plus the map entry. A triple with no entry is hidden
/// from every role (deny-by-default).
///
/// The table is stamped with the graph `generation` it was compiled against
/// so gates can detect staleness after updates.
#[derive(Debug, Clone, Default)]
pub struct TripleLabels {
    width: usize,
    generation: u64,
    classes: Vec<VisBitset>,
    class_ids: HashMap<VisBitset, LabelId>,
    map: HashMap<(TermId, TermId, TermId), LabelId>,
}

impl TripleLabels {
    /// New empty table for `width` role bits, stamped with `generation`.
    #[must_use]
    pub fn new(width: usize, generation: u64) -> Self {
        TripleLabels {
            width,
            generation,
            classes: Vec::new(),
            class_ids: HashMap::new(),
            map: HashMap::new(),
        }
    }

    /// Number of role bits this table was compiled for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Graph generation the labels were compiled against.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of labeled triples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no triple is labeled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct label classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Intern `bits` as a label class and assign it to the id-triple.
    /// Returns the (possibly pre-existing) class id. Empty bitsets are not
    /// stored: absence already means hidden-from-all.
    pub fn insert(&mut self, s: TermId, p: TermId, o: TermId, bits: &VisBitset) -> Option<LabelId> {
        if bits.is_empty() {
            self.map.remove(&(s, p, o));
            return None;
        }
        let id = if let Some(id) = self.class_ids.get(bits) {
            *id
        } else {
            let id = u32::try_from(self.classes.len()).unwrap_or(u32::MAX);
            self.classes.push(bits.clone());
            self.class_ids.insert(bits.clone(), id);
            id
        };
        self.map.insert((s, p, o), id);
        Some(id)
    }

    /// Label class id of an id-triple, if labeled.
    #[must_use]
    pub fn label_of(&self, s: TermId, p: TermId, o: TermId) -> Option<LabelId> {
        self.map.get(&(s, p, o)).copied()
    }

    /// The bitset for a label class id.
    #[must_use]
    pub fn class(&self, id: LabelId) -> Option<&VisBitset> {
        self.classes.get(id as usize)
    }

    /// Scan-time check: is the id-triple visible under `auths`?
    /// Unlabeled triples are hidden (deny-by-default).
    #[must_use]
    pub fn visible(&self, s: TermId, p: TermId, o: TermId, auths: &VisBitset) -> bool {
        self.label_of(s, p, o)
            .and_then(|id| self.class(id))
            .is_some_and(|bits| bits.intersects(auths))
    }

    /// Bitset of an id-triple, if labeled.
    #[must_use]
    pub fn bits_of(&self, s: TermId, p: TermId, o: TermId) -> Option<&VisBitset> {
        self.label_of(s, p, o).and_then(|id| self.class(id))
    }

    /// Iterate all labeled id-triples with their class ids.
    pub fn iter(&self) -> impl Iterator<Item = (&(TermId, TermId, TermId), LabelId)> {
        self.map.iter().map(|(k, v)| (k, *v))
    }

    /// Seal this table into a [`LabelColumn`] aligned with `graph`'s
    /// primary scan order — the columnar companion the filtered scan zips
    /// against without any per-triple hash lookup.
    #[must_use]
    pub fn to_column(&self, graph: &crate::graph::Graph) -> LabelColumn {
        let mut col = Vec::with_capacity(graph.len());
        graph.for_each_match_ids(None, None, None, |s, p, o| {
            col.push(self.label_of(s, p, o).unwrap_or(NO_LABEL));
        });
        LabelColumn {
            generation: graph.generation(),
            classes: self.classes.clone(),
            col,
        }
    }
}

/// Sentinel class id marking an unlabeled (hidden-from-all) triple in a
/// [`LabelColumn`].
pub const NO_LABEL: LabelId = LabelId::MAX;

/// Label-class ids stored as a column parallel to a graph's primary scan
/// order. A filtered scan resolves the authorization bitset against the
/// (few) label classes once, then reads one `u32` per scanned triple —
/// the Accumulo-style cell visibility check without per-triple hashing.
///
/// The column is positional: it is only valid against the exact graph
/// state it was sealed from, checked via [`LabelColumn::matches`]
/// (generation + length). Mutating the graph invalidates it.
#[derive(Debug, Clone, Default)]
pub struct LabelColumn {
    generation: u64,
    classes: Vec<VisBitset>,
    col: Vec<LabelId>,
}

impl LabelColumn {
    /// Whether this column is still aligned with `graph`.
    #[must_use]
    pub fn matches(&self, graph: &crate::graph::Graph) -> bool {
        self.generation == graph.generation() && self.col.len() == graph.len()
    }

    /// Number of labeled positions (non-sentinel entries).
    #[must_use]
    pub fn labeled(&self) -> usize {
        self.col.iter().filter(|&&id| id != NO_LABEL).count()
    }

    /// The id-triples visible under `auths`, in scan order: the class
    /// table intersects `auths` once per *class*, the scan then does one
    /// column load and one bool test per triple.
    #[must_use]
    pub fn visible_ids(
        &self,
        graph: &crate::graph::Graph,
        auths: &VisBitset,
    ) -> Vec<(TermId, TermId, TermId)> {
        debug_assert!(self.matches(graph), "stale label column");
        let vis: Vec<bool> = self.classes.iter().map(|c| c.intersects(auths)).collect();
        let mut out = Vec::new();
        let mut i = 0;
        graph.for_each_match_ids(None, None, None, |s, p, o| {
            if self
                .col
                .get(i)
                .is_some_and(|&id| id != NO_LABEL && vis.get(id as usize).copied() == Some(true))
            {
                out.push((s, p, o));
            }
            i += 1;
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_intersect() {
        let mut a = VisBitset::new(3);
        let mut b = VisBitset::new(3);
        a.set(0);
        a.set(2);
        b.set(1);
        assert!(!a.intersects(&b));
        b.set(2);
        assert!(a.intersects(&b));
        assert!(a.get(2) && !a.get(1));
        assert_eq!(a.count_ones(), 2);
        assert_eq!(a.iter_ones(), vec![0, 2]);
    }

    #[test]
    fn bitset_grows_past_word_boundary() {
        let mut a = VisBitset::new(1);
        a.set(130);
        assert!(a.get(130));
        assert!(!a.get(129));
        let mut b = VisBitset::new(200);
        b.set(130);
        assert!(a.intersects(&b));
        assert!(a.is_subset_of(&b));
    }

    #[test]
    fn union_reports_change() {
        let mut a = VisBitset::new(2);
        let mut b = VisBitset::new(2);
        b.set(1);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.get(1));
    }

    #[test]
    fn labels_dedup_classes() {
        let mut t = TripleLabels::new(2, 7);
        let mut bits = VisBitset::new(2);
        bits.set(0);
        let a = t.insert(1, 2, 3, &bits);
        let b = t.insert(4, 2, 3, &bits);
        assert_eq!(a, b);
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.generation(), 7);

        let mut other = VisBitset::new(2);
        other.set(1);
        t.insert(5, 2, 3, &other);
        assert_eq!(t.class_count(), 2);

        let mut auth = VisBitset::new(2);
        auth.set(0);
        assert!(t.visible(1, 2, 3, &auth));
        assert!(!t.visible(5, 2, 3, &auth));
        assert!(!t.visible(9, 9, 9, &auth), "unlabeled means hidden");
    }

    #[test]
    fn empty_bits_not_stored() {
        let mut t = TripleLabels::new(2, 0);
        let empty = VisBitset::new(2);
        assert_eq!(t.insert(1, 2, 3, &empty), None);
        assert!(t.is_empty());
    }
}
