//! N-Triples: the line-oriented exchange syntax.

use crate::error::{RdfError, RdfResult};
use crate::graph::Graph;
use crate::term::{escape_literal, Literal, Term, Triple};
use crate::vocab::xsd;

/// Serialize a graph as N-Triples, one triple per line, in index order.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parse an N-Triples document into a graph.
pub fn parse(input: &str) -> RdfResult<Graph> {
    let mut g = Graph::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut p = LineParser {
            line,
            pos: 0,
            line_no,
        };
        let subject = p.term()?;
        p.skip_ws();
        let predicate = p.term()?;
        p.skip_ws();
        let object = p.term()?;
        p.skip_ws();
        p.expect('.')?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.err("trailing content after '.'"));
        }
        if !subject.is_resource() {
            return Err(p.err("subject must be an IRI or blank node"));
        }
        if subject.is_blank() && subject.as_blank() == Some("") {
            return Err(p.err("empty blank node label"));
        }
        if predicate.as_iri().is_none() {
            return Err(p.err("predicate must be an IRI"));
        }
        g.insert(Triple::new(subject, predicate, object));
    }
    Ok(g)
}

struct LineParser<'a> {
    line: &'a str,
    pos: usize,
    line_no: u32,
}

impl LineParser<'_> {
    fn err(&self, message: &str) -> RdfError {
        RdfError::Syntax {
            line: self.line_no,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.line[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.line.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c == ' ' || c == '\t') {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> RdfResult<()> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {c:?}")))
        }
    }

    fn term(&mut self) -> RdfResult<Term> {
        match self.peek() {
            Some('<') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '>' {
                        let iri = &self.line[start..self.pos];
                        self.bump();
                        return Ok(Term::iri(iri));
                    }
                    self.bump();
                }
                Err(self.err("unterminated IRI"))
            }
            Some('_') => {
                self.bump();
                self.expect(':')?;
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-')
                {
                    self.bump();
                }
                Ok(Term::blank(&self.line[start..self.pos]))
            }
            Some('"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string literal")),
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => s.push('\n'),
                            Some('r') => s.push('\r'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('u') => s.push(self.unicode_escape(4)?),
                            Some('U') => s.push(self.unicode_escape(8)?),
                            other => {
                                return Err(self.err(&format!("bad escape \\{other:?}")));
                            }
                        },
                        Some(c) => s.push(c),
                    }
                }
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let start = self.pos;
                        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-')
                        {
                            self.bump();
                        }
                        if self.pos == start {
                            return Err(self.err("empty language tag"));
                        }
                        Ok(Term::Literal(Literal::lang_string(
                            &s,
                            &self.line[start..self.pos],
                        )))
                    }
                    Some('^') => {
                        self.bump();
                        self.expect('^')?;
                        self.expect('<')?;
                        let start = self.pos;
                        while matches!(self.peek(), Some(c) if c != '>') {
                            self.bump();
                        }
                        let dt = self.line[start..self.pos].to_string();
                        self.expect('>')?;
                        Ok(Term::typed(&s, &dt))
                    }
                    _ => Ok(Term::Literal(Literal::typed(&s, xsd::STRING))),
                }
            }
            other => Err(self.err(&format!("unexpected {other:?} at start of term"))),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> RdfResult<char> {
        let start = self.pos;
        for _ in 0..digits {
            if self.bump().is_none() {
                return Err(self.err("truncated unicode escape"));
            }
        }
        let hex = &self.line[start..self.pos];
        u32::from_str_radix(hex, 16)
            .ok()
            .and_then(char::from_u32)
            .ok_or_else(|| self.err(&format!("bad unicode escape \\u{hex}")))
    }
}

/// Re-export of the literal escaping used by `Display` (kept here so both
/// directions live in one module conceptually).
pub fn escape(s: &str) -> String {
    escape_literal(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_graph() {
        let mut g = Graph::new();
        g.add(
            Term::iri("urn:s"),
            Term::iri("urn:p"),
            Term::string("hello \"world\"\n"),
        );
        g.add(Term::iri("urn:s"), Term::iri("urn:p"), Term::integer(42));
        g.add(Term::blank("b1"), Term::iri("urn:p"), Term::iri("urn:o"));
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn parses_comments_and_blanks() {
        let g = parse("# a comment\n\n<urn:s> <urn:p> _:x .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parses_lang_literal() {
        let g = parse("<urn:s> <urn:p> \"chat\"@fr .").unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lang(), Some("fr"));
    }

    #[test]
    fn parses_typed_literal() {
        let g = parse(&format!("<urn:s> <urn:p> \"5\"^^<{}> .", xsd::INTEGER)).unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().as_integer(), Some(5));
    }

    #[test]
    fn parses_unicode_escapes() {
        let g = parse(r#"<urn:s> <urn:p> "A\U0001F600" ."#).unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.object.as_literal().unwrap().lexical(), "A😀");
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse("\"lit\" <urn:p> <urn:o> .").is_err());
    }

    #[test]
    fn rejects_blank_predicate() {
        assert!(parse("<urn:s> _:p <urn:o> .").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse("<urn:s> <urn:p> <urn:o>").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("<urn:s> <urn:p> <urn:o> . extra").is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse("<urn:s> <urn:p> <urn:o> .\nbad line .").unwrap_err();
        match err {
            RdfError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}
