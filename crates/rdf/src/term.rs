//! RDF terms: IRIs, blank nodes, literals, and triples.
//!
//! Terms use `Arc<str>` internally so cloning is a reference-count bump;
//! graphs additionally intern terms into dense ids (see [`crate::graph`]).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::vocab::xsd;

/// An RDF literal: lexical form plus either a language tag or a datatype.
///
/// Following RDF 1.1, a plain literal is represented as `xsd:string` with no
/// language tag; `Literal::datatype()` therefore always returns an IRI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    /// `Some(tag)` for language-tagged strings (datatype rdf:langString).
    lang: Option<Arc<str>>,
    /// Datatype IRI; `None` means `xsd:string` (saves an allocation for the
    /// overwhelmingly common case).
    datatype: Option<Arc<str>>,
}

impl Literal {
    /// A plain (xsd:string) literal.
    pub fn string(lexical: &str) -> Literal {
        Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// A language-tagged string. The tag is lower-cased (BCP 47 tags are
    /// case-insensitive).
    pub fn lang_string(lexical: &str, lang: &str) -> Literal {
        Literal {
            lexical: lexical.into(),
            lang: Some(lang.to_ascii_lowercase().into()),
            datatype: None,
        }
    }

    /// A typed literal with an explicit datatype IRI.
    pub fn typed(lexical: &str, datatype: &str) -> Literal {
        if datatype == xsd::STRING {
            return Literal::string(lexical);
        }
        Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Literal {
        Literal::typed(&value.to_string(), xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Literal {
        Literal::typed(&format_double(value), xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Literal {
        Literal::typed(if value { "true" } else { "false" }, xsd::BOOLEAN)
    }

    /// An `xsd:dateTime` literal from a preformatted lexical form.
    pub fn date_time(lexical: &str) -> Literal {
        Literal::typed(lexical, xsd::DATE_TIME)
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The language tag, if this is a language-tagged string.
    pub fn lang(&self) -> Option<&str> {
        self.lang.as_deref()
    }

    /// The datatype IRI (always defined; `rdf:langString` for tagged
    /// strings, `xsd:string` when untyped).
    pub fn datatype(&self) -> &str {
        if self.lang.is_some() {
            crate::vocab::rdf::LANG_STRING
        } else {
            self.datatype.as_deref().unwrap_or(xsd::STRING)
        }
    }

    /// Parse as `i64` when the datatype is a (signed) integer type.
    pub fn as_integer(&self) -> Option<i64> {
        match self.datatype() {
            xsd::INTEGER | xsd::LONG | xsd::INT | xsd::NON_NEGATIVE_INTEGER => {
                self.lexical.trim().parse().ok()
            }
            _ => None,
        }
    }

    /// Parse as `f64` when the datatype is numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self.datatype() {
            xsd::DOUBLE | xsd::FLOAT | xsd::DECIMAL => self.lexical.trim().parse().ok(),
            xsd::INTEGER | xsd::LONG | xsd::INT | xsd::NON_NEGATIVE_INTEGER => {
                self.lexical.trim().parse::<i64>().ok().map(|v| v as f64)
            }
            _ => None,
        }
    }

    /// Parse as `bool` when the datatype is `xsd:boolean`.
    pub fn as_boolean(&self) -> Option<bool> {
        if self.datatype() != xsd::BOOLEAN {
            return None;
        }
        match self.lexical.trim() {
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            _ => None,
        }
    }
}

/// Format a double the way XSD canonical form expects finite values; keeps
/// integral doubles distinguishable from integers (`1` → `1.0`).
fn format_double(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// An RDF term: IRI, blank node, or literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An IRI reference, stored absolute.
    Iri(Arc<str>),
    /// A blank node with a local label.
    Blank(Arc<str>),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// IRI term from a string.
    pub fn iri(iri: &str) -> Term {
        Term::Iri(iri.into())
    }

    /// Blank node term with the given label (without `_:`).
    pub fn blank(label: &str) -> Term {
        Term::Blank(label.into())
    }

    /// Plain string literal term.
    pub fn string(s: &str) -> Term {
        Term::Literal(Literal::string(s))
    }

    /// Typed literal term.
    pub fn typed(lexical: &str, datatype: &str) -> Term {
        Term::Literal(Literal::typed(lexical, datatype))
    }

    /// Integer literal term.
    pub fn integer(v: i64) -> Term {
        Term::Literal(Literal::integer(v))
    }

    /// Double literal term.
    pub fn double(v: f64) -> Term {
        Term::Literal(Literal::double(v))
    }

    /// Boolean literal term.
    pub fn boolean(v: bool) -> Term {
        Term::Literal(Literal::boolean(v))
    }

    /// The IRI string when this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// The literal when this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The blank-node label when this term is a blank node.
    pub fn as_blank(&self) -> Option<&str> {
        match self {
            Term::Blank(b) => Some(b),
            _ => None,
        }
    }

    /// True for IRIs and blank nodes (legal subjects).
    pub fn is_resource(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }
}

impl fmt::Display for Term {
    /// N-Triples-style rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal(l) => {
                write!(f, "\"{}\"", escape_literal(l.lexical()))?;
                if let Some(lang) = l.lang() {
                    write!(f, "@{lang}")
                } else if l.datatype() != xsd::STRING {
                    write!(f, "^^<{}>", l.datatype())
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Escape a literal lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Ordering for deterministic output: IRIs < blanks < literals, then lexical.
impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Iri(_) => 0,
                Term::Blank(_) => 1,
                Term::Literal(_) => 2,
            }
        }
        rank(self)
            .cmp(&rank(other))
            .then_with(|| match (self, other) {
                (Term::Iri(a), Term::Iri(b)) => a.cmp(b),
                (Term::Blank(a), Term::Blank(b)) => a.cmp(b),
                (Term::Literal(a), Term::Literal(b)) => a.cmp(b),
                _ => Ordering::Equal,
            })
    }
}

/// An RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject: IRI or blank node.
    pub subject: Term,
    /// Predicate: IRI.
    pub predicate: Term,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Construct a triple. Debug builds assert the RDF term constraints
    /// (subject not a literal, predicate an IRI).
    pub fn new(subject: Term, predicate: Term, object: Term) -> Triple {
        debug_assert!(
            subject.is_resource(),
            "triple subject must not be a literal"
        );
        debug_assert!(
            matches!(predicate, Term::Iri(_)),
            "triple predicate must be an IRI"
        );
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::rdf as rdfv;

    #[test]
    fn plain_literal_is_xsd_string() {
        let l = Literal::string("hi");
        assert_eq!(l.datatype(), xsd::STRING);
        assert_eq!(l.lang(), None);
    }

    #[test]
    fn typed_string_collapses_to_plain() {
        assert_eq!(Literal::typed("x", xsd::STRING), Literal::string("x"));
    }

    #[test]
    fn lang_string_datatype_is_langstring_and_tag_lowercased() {
        let l = Literal::lang_string("bonjour", "FR");
        assert_eq!(l.lang(), Some("fr"));
        assert_eq!(l.datatype(), rdfv::LANG_STRING);
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Literal::integer(42).as_integer(), Some(42));
        assert_eq!(Literal::integer(42).as_double(), Some(42.0));
        assert_eq!(Literal::double(2.5).as_double(), Some(2.5));
        assert_eq!(Literal::double(2.5).as_integer(), None);
        assert_eq!(Literal::boolean(true).as_boolean(), Some(true));
        assert_eq!(Literal::typed("1", xsd::BOOLEAN).as_boolean(), Some(true));
        assert_eq!(
            Literal::string("7").as_integer(),
            None,
            "untyped is not numeric"
        );
    }

    #[test]
    fn double_formatting_keeps_decimal_point() {
        assert_eq!(Literal::double(3.0).lexical(), "3.0");
        assert_eq!(Literal::double(0.25).lexical(), "0.25");
    }

    #[test]
    fn term_display_is_ntriples_shaped() {
        assert_eq!(Term::iri("urn:a").to_string(), "<urn:a>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::string("x\"y\n").to_string(), "\"x\\\"y\\n\"");
        assert_eq!(
            Term::integer(5).to_string(),
            format!("\"5\"^^<{}>", xsd::INTEGER)
        );
        assert_eq!(
            Term::Literal(Literal::lang_string("hi", "en")).to_string(),
            "\"hi\"@en"
        );
    }

    #[test]
    fn term_ordering_groups_kinds() {
        let mut v = [
            Term::string("z"),
            Term::blank("a"),
            Term::iri("urn:b"),
            Term::iri("urn:a"),
        ];
        v.sort();
        assert_eq!(v[0], Term::iri("urn:a"));
        assert_eq!(v[1], Term::iri("urn:b"));
        assert!(v[2].is_blank());
        assert!(matches!(v[3], Term::Literal(_)));
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(Term::iri("urn:s"), Term::iri("urn:p"), Term::string("o"));
        assert_eq!(t.to_string(), "<urn:s> <urn:p> \"o\" .");
    }

    #[test]
    #[should_panic(expected = "subject")]
    #[cfg(debug_assertions)]
    fn literal_subject_asserts() {
        let _ = Triple::new(Term::string("bad"), Term::iri("urn:p"), Term::string("o"));
    }
}
