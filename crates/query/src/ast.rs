//! Query abstract syntax.

use grdf_rdf::term::Term;

/// A term position in a pattern: concrete term or variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermOrVar {
    /// A concrete RDF term.
    Term(Term),
    /// A variable (name without `?`).
    Var(String),
}

impl TermOrVar {
    /// Variable helper.
    pub fn var(name: &str) -> TermOrVar {
        TermOrVar::Var(name.to_string())
    }

    /// IRI helper.
    pub fn iri(iri: &str) -> TermOrVar {
        TermOrVar::Term(Term::iri(iri))
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, TermOrVar::Var(_))
    }
}

/// One triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermOrVar,
    /// Predicate position.
    pub predicate: TermOrVar,
    /// Object position.
    pub object: TermOrVar,
}

impl TriplePattern {
    /// Build a pattern.
    pub fn new(subject: TermOrVar, predicate: TermOrVar, object: TermOrVar) -> TriplePattern {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// Number of concrete (non-variable) positions — a cheap selectivity
    /// proxy used for join ordering.
    pub fn bound_count(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .iter()
            .filter(|t| !t.is_var())
            .count()
    }

    /// Variables mentioned by this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|t| match t {
                TermOrVar::Var(v) => Some(v.as_str()),
                TermOrVar::Term(_) => None,
            })
            .collect()
    }
}

/// Filter / expression language.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant term.
    Const(Term),
    /// A variable reference.
    Var(String),
    /// `a = b`.
    Eq(Box<Expr>, Box<Expr>),
    /// `a != b`.
    Ne(Box<Expr>, Box<Expr>),
    /// `a < b` (numeric when both sides are numeric, else lexical).
    Lt(Box<Expr>, Box<Expr>),
    /// `a <= b`.
    Le(Box<Expr>, Box<Expr>),
    /// `a > b`.
    Gt(Box<Expr>, Box<Expr>),
    /// `a >= b`.
    Ge(Box<Expr>, Box<Expr>),
    /// `a && b`.
    And(Box<Expr>, Box<Expr>),
    /// `a || b`.
    Or(Box<Expr>, Box<Expr>),
    /// `!a`.
    Not(Box<Expr>),
    /// `BOUND(?v)`.
    Bound(String),
    /// `CONTAINS(STR(?v), "needle")` collapsed to a builtin.
    Contains(Box<Expr>, Box<Expr>),
    /// `STRSTARTS(STR(?v), "prefix")`.
    StrStarts(Box<Expr>, Box<Expr>),
    /// `grdf:intersectsBox(?f, x0, y0, x1, y1)` — does the feature's
    /// spatial extent intersect the box?
    IntersectsBox {
        /// Variable bound to the feature subject.
        feature: String,
        /// Box west edge.
        x0: f64,
        /// Box south edge.
        y0: f64,
        /// Box east edge.
        x1: f64,
        /// Box north edge.
        y1: f64,
    },
    /// `grdf:within(?a, ?b)` — is `?a`'s extent within `?b`'s?
    Within {
        /// Inner feature variable.
        inner: String,
        /// Outer feature variable.
        outer: String,
    },
    /// `grdf:distance(?a, ?b)` — planar distance between feature extents'
    /// centers (numeric-valued, used inside comparisons).
    Distance {
        /// First feature variable.
        a: String,
        /// Second feature variable.
        b: String,
    },
    /// `EXISTS { ... }` — true when the pattern has at least one solution
    /// under the current bindings.
    Exists(Box<Pattern>),
    /// `NOT EXISTS { ... }`.
    NotExists(Box<Pattern>),
}

/// A SPARQL property path.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyPath {
    /// A direct predicate IRI.
    Iri(Term),
    /// `^p` — traverse backwards.
    Inverse(Box<PropertyPath>),
    /// `p/q` — sequence.
    Sequence(Box<PropertyPath>, Box<PropertyPath>),
    /// `p|q` — alternative.
    Alternative(Box<PropertyPath>, Box<PropertyPath>),
    /// `p+` — one or more steps.
    OneOrMore(Box<PropertyPath>),
    /// `p*` — zero or more steps.
    ZeroOrMore(Box<PropertyPath>),
}

impl PropertyPath {
    /// The predicate IRI when this path is a single direct step.
    pub fn as_iri(&self) -> Option<&Term> {
        match self {
            PropertyPath::Iri(t) => Some(t),
            _ => None,
        }
    }
}

/// Graph patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// A conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// A property-path constraint between two terms.
    Path {
        /// Subject position.
        subject: TermOrVar,
        /// The path expression.
        path: PropertyPath,
        /// Object position.
        object: TermOrVar,
    },
    /// Nested group (sequence of patterns, all must hold).
    Group(Vec<Pattern>),
    /// Left join.
    Optional(Box<Pattern>),
    /// Alternation.
    Union(Box<Pattern>, Box<Pattern>),
    /// Constraint on bindings.
    Filter(Expr),
}

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

/// One aggregate projection: `(FUNC(DISTINCT? ?v) AS ?alias)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Deduplicate the aggregated values first.
    pub distinct: bool,
    /// The aggregated variable; `None` means `COUNT(*)`.
    pub var: Option<String>,
    /// Output variable name.
    pub alias: String,
}

/// Kind of query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// Projection; empty `vars` + empty `aggregates` means `SELECT *`.
    Select {
        /// Projected plain variable names (must appear in GROUP BY when
        /// aggregates are present).
        vars: Vec<String>,
        /// Aggregate projections.
        aggregates: Vec<Aggregate>,
        /// Deduplicate rows.
        distinct: bool,
    },
    /// Boolean query.
    Ask,
    /// Graph template instantiation.
    Construct {
        /// The template triple patterns.
        template: Vec<TriplePattern>,
    },
}

/// Sort key direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Order {
    /// Ascending by variable.
    Asc(String),
    /// Descending by variable.
    Desc(String),
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select/Ask/Construct.
    pub kind: QueryKind,
    /// The WHERE clause.
    pub pattern: Pattern,
    /// GROUP BY variables (meaningful only with aggregates).
    pub group_by: Vec<String>,
    /// ORDER BY keys.
    pub order: Vec<Order>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_count_and_variables() {
        let p = TriplePattern::new(
            TermOrVar::var("s"),
            TermOrVar::iri("urn:p"),
            TermOrVar::var("o"),
        );
        assert_eq!(p.bound_count(), 1);
        assert_eq!(p.variables(), vec!["s", "o"]);
    }

    #[test]
    fn term_or_var_helpers() {
        assert!(TermOrVar::var("x").is_var());
        assert!(!TermOrVar::iri("urn:x").is_var());
    }
}
