//! Spatial evaluation support: extracting a feature's extent from its GRDF
//! triples so the `grdf:*` filter builtins can run against the graph.

use grdf_geometry::coord::parse_coord_list;
use grdf_geometry::envelope::Envelope;
use grdf_geometry::wkt;
use grdf_rdf::graph::Graph;
use grdf_rdf::term::Term;
use grdf_rdf::vocab::grdf as ns;

/// Spatial extent of the feature `subject`, from (in priority order) its
/// geometry node's WKT, the geometry node's coordinate list, or its
/// `isBoundedBy` envelope.
pub fn feature_envelope(graph: &Graph, subject: &Term) -> Option<Envelope> {
    if let Some(gnode) = graph.object(subject, &Term::iri(&ns::iri("hasGeometry"))) {
        if let Some(env) = node_envelope(graph, &gnode) {
            return Some(env);
        }
    }
    let bnode = graph.object(subject, &Term::iri(&ns::iri("isBoundedBy")))?;
    node_envelope(graph, &bnode)
}

fn node_envelope(graph: &Graph, node: &Term) -> Option<Envelope> {
    if let Some(w) = graph.object(node, &Term::iri(&ns::iri("asWKT"))) {
        if let Some(g) = w.as_literal().and_then(|l| wkt::parse_wkt(l.lexical())) {
            if let Some(env) = g.envelope() {
                return Some(env);
            }
        }
    }
    let coords_text = graph.object(node, &Term::iri(&ns::iri("coordinates")))?;
    let coords = parse_coord_list(coords_text.as_literal()?.lexical(), 2)?;
    Envelope::of_coords(&coords)
}

/// Planar distance between the centers of two features' extents.
pub fn feature_distance(graph: &Graph, a: &Term, b: &Term) -> Option<f64> {
    let ea = feature_envelope(graph, a)?;
    let eb = feature_envelope(graph, b)?;
    Some(ea.center().distance_2d(&eb.center()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_feature::feature::Feature;
    use grdf_feature::rdf_codec::encode_feature;
    use grdf_geometry::coord::Coord;
    use grdf_geometry::primitives::{LineString, Point};

    fn graph_with_two_features() -> (Graph, Term, Term) {
        let mut g = Graph::new();
        let mut a = Feature::new("urn:a", "Stream");
        a.set_geometry(
            LineString::new(vec![Coord::xy(0.0, 0.0), Coord::xy(10.0, 10.0)])
                .unwrap()
                .into(),
        );
        let sa = encode_feature(&mut g, &a);
        let mut b = Feature::new("urn:b", "Site");
        b.set_geometry(Point::new(105.0, 5.0).into());
        let sb = encode_feature(&mut g, &b);
        (g, sa, sb)
    }

    #[test]
    fn envelope_from_geometry_wkt() {
        let (g, sa, _) = graph_with_two_features();
        let env = feature_envelope(&g, &sa).unwrap();
        assert_eq!(env.min, Coord::xy(0.0, 0.0));
        assert_eq!(env.max, Coord::xy(10.0, 10.0));
    }

    #[test]
    fn distance_between_extent_centers() {
        let (g, sa, sb) = graph_with_two_features();
        let d = feature_distance(&g, &sa, &sb).unwrap();
        // Centers: (5,5) and (105,5) → 100.
        assert!((d - 100.0).abs() < 1e-9, "{d}");
    }

    #[test]
    fn missing_geometry_yields_none() {
        let g = Graph::new();
        assert!(feature_envelope(&g, &Term::iri("urn:none")).is_none());
        assert!(feature_distance(&g, &Term::iri("urn:a"), &Term::iri("urn:b")).is_none());
    }

    #[test]
    fn bounded_by_fallback() {
        use grdf_feature::bounding::BoundingShape;
        let mut g = Graph::new();
        let mut f = Feature::new("urn:c", "Zone");
        f.bounded_by =
            BoundingShape::Envelope(Envelope::new(Coord::xy(1.0, 1.0), Coord::xy(3.0, 3.0)));
        let s = encode_feature(&mut g, &f);
        let env = feature_envelope(&g, &s).unwrap();
        assert_eq!(env.center(), Coord::xy(2.0, 2.0));
    }
}
