//! Query evaluation: BGP joins, filters, optional/union, solution
//! modifiers, and the three result forms.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

use grdf_rdf::graph::Graph;
use grdf_rdf::term::{Term, Triple};
use grdf_runtime::{Deadline, DeadlineExceeded};

use crate::ast::{Expr, Order, Pattern, Query, QueryKind, TermOrVar, TriplePattern};
use crate::parser::{parse_query, ParseError};
use crate::spatial::{feature_distance, feature_envelope};

/// One solution: variable name → bound term.
pub type Bindings = BTreeMap<String, Term>;

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text did not parse.
    Parse(String),
    /// The request's deadline expired mid-evaluation; evaluation was
    /// cancelled cooperatively and no partial result is returned.
    DeadlineExceeded,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "query parse error: {m}"),
            QueryError::DeadlineExceeded => f.write_str("query deadline exceeded"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e.to_string())
    }
}

impl From<DeadlineExceeded> for QueryError {
    fn from(_: DeadlineExceeded) -> Self {
        QueryError::DeadlineExceeded
    }
}

/// Result of executing a query.
// One `QueryResult` exists per executed query and lives on the stack
// until consumed — the size skew vs `Boolean` (the columnar `Graph`
// header is ~272 bytes) never multiplies across a collection, so
// boxing the CONSTRUCT graph would tax every caller for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT: projected variable names and solution rows.
    Select {
        /// Projection (resolved; `SELECT *` lists all seen variables).
        vars: Vec<String>,
        /// Solutions in order.
        rows: Vec<Bindings>,
    },
    /// ASK.
    Boolean(bool),
    /// CONSTRUCT.
    Graph(Graph),
}

impl QueryResult {
    /// The SELECT rows (empty for other result kinds).
    pub fn select_rows(&self) -> &[Bindings] {
        match self {
            QueryResult::Select { rows, .. } => rows,
            _ => &[],
        }
    }

    /// The boolean of an ASK (`None` otherwise).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The constructed graph, when this was a CONSTRUCT.
    pub fn into_graph(self) -> Option<Graph> {
        match self {
            QueryResult::Graph(g) => Some(g),
            _ => None,
        }
    }
}

/// Parse and execute `query_text` over `graph` without a deadline.
pub fn execute(graph: &Graph, query_text: &str) -> Result<QueryResult, QueryError> {
    execute_with_deadline(graph, query_text, &Deadline::never())
}

/// Parse and execute `query_text` over `graph`, polling `deadline` inside
/// the join and closure loops; returns [`QueryError::DeadlineExceeded`]
/// once the budget is spent.
pub fn execute_with_deadline(
    graph: &Graph,
    query_text: &str,
    deadline: &Deadline,
) -> Result<QueryResult, QueryError> {
    let q = {
        let _span = grdf_obs::span("query.parse");
        parse_query(query_text)?
    };
    execute_query_with_deadline(graph, &q, deadline)
}

/// Sort rows in place by the ORDER BY keys.
fn apply_order(rows: &mut [Bindings], order: &[Order]) {
    if order.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for key in order {
            let (var, desc) = match key {
                Order::Asc(v) => (v, false),
                Order::Desc(v) => (v, true),
            };
            let ord = compare_terms(a.get(var), b.get(var));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

/// Apply OFFSET/LIMIT.
fn apply_slice(rows: Vec<Bindings>, offset: usize, limit: Option<usize>) -> Vec<Bindings> {
    rows.into_iter()
        .skip(offset)
        .take(limit.unwrap_or(usize::MAX))
        .collect()
}

/// Execute a pre-parsed query without a deadline.
pub fn execute_query(graph: &Graph, query: &Query) -> QueryResult {
    execute_query_with_deadline(graph, query, &Deadline::never())
        .expect("a never-expiring deadline cannot cancel evaluation")
}

/// Execute a pre-parsed query under a cooperative deadline.
pub fn execute_query_with_deadline(
    graph: &Graph,
    query: &Query,
    deadline: &Deadline,
) -> Result<QueryResult, QueryError> {
    let raw = eval_pattern(graph, &query.pattern, vec![Bindings::new()], deadline)?;

    // Aggregate queries: grouping happens first; ORDER/OFFSET/LIMIT apply
    // to the aggregated rows.
    if let QueryKind::Select {
        vars, aggregates, ..
    } = &query.kind
    {
        if !aggregates.is_empty() {
            let QueryResult::Select {
                vars: out_vars,
                mut rows,
            } = aggregate_select(vars, aggregates, &query.group_by, raw)
            else {
                unreachable!("aggregate_select returns Select");
            };
            apply_order(&mut rows, &query.order);
            let rows = apply_slice(rows, query.offset, query.limit);
            return Ok(QueryResult::Select {
                vars: out_vars,
                rows,
            });
        }
    }

    // Non-aggregate path: modifiers apply to the solution sequence.
    let mut solutions = raw;
    apply_order(&mut solutions, &query.order);
    let solutions = apply_slice(solutions, query.offset, query.limit);

    Ok(match &query.kind {
        QueryKind::Ask => QueryResult::Boolean(!solutions.is_empty()),
        QueryKind::Select { vars, distinct, .. } => {
            let vars = if vars.is_empty() {
                // SELECT *: every variable seen, sorted for determinism.
                let mut all: Vec<String> = solutions
                    .iter()
                    .flat_map(|b| b.keys().cloned())
                    .collect::<HashSet<_>>()
                    .into_iter()
                    .collect();
                all.sort();
                all
            } else {
                vars.clone()
            };
            let mut rows: Vec<Bindings> = solutions
                .into_iter()
                .map(|b| {
                    vars.iter()
                        .filter_map(|v| b.get(v).map(|t| (v.clone(), t.clone())))
                        .collect()
                })
                .collect();
            if *distinct {
                let mut seen: HashSet<String> = HashSet::new();
                rows.retain(|r| seen.insert(format!("{r:?}")));
            }
            QueryResult::Select { vars, rows }
        }
        QueryKind::Construct { template } => {
            let mut g = Graph::new();
            for b in &solutions {
                for t in template {
                    let (Some(s), Some(p), Some(o)) = (
                        resolve(&t.subject, b),
                        resolve(&t.predicate, b),
                        resolve(&t.object, b),
                    ) else {
                        continue;
                    };
                    if s.is_resource() && matches!(p, Term::Iri(_)) {
                        g.insert(Triple::new(s, p, o));
                    }
                }
            }
            QueryResult::Graph(g)
        }
    })
}

/// Grouped aggregation: partition solutions by the GROUP BY key (one
/// global group when absent) and compute each aggregate per group.
fn aggregate_select(
    vars: &[String],
    aggregates: &[crate::ast::Aggregate],
    group_by: &[String],
    solutions: Vec<Bindings>,
) -> QueryResult {
    use crate::ast::AggFunc;
    use std::collections::BTreeMap;

    let mut groups: BTreeMap<Vec<Option<Term>>, Vec<Bindings>> = BTreeMap::new();
    if group_by.is_empty() {
        groups.insert(Vec::new(), solutions);
    } else {
        for b in solutions {
            let key: Vec<Option<Term>> = group_by.iter().map(|v| b.get(v).cloned()).collect();
            groups.entry(key).or_default().push(b);
        }
    }

    let mut out_vars: Vec<String> = vars.to_vec();
    out_vars.extend(aggregates.iter().map(|a| a.alias.clone()));

    let mut rows: Vec<Bindings> = Vec::with_capacity(groups.len());
    for (key, members) in groups {
        let mut row = Bindings::new();
        for (v, k) in group_by.iter().zip(key) {
            if let (true, Some(term)) = (vars.contains(v), k) {
                row.insert(v.clone(), term);
            }
        }
        for agg in aggregates {
            // Collect the aggregated values of this group.
            let mut values: Vec<Term> = match &agg.var {
                None => members.iter().map(|_| Term::boolean(true)).collect(), // COUNT(*)
                Some(v) => members.iter().filter_map(|b| b.get(v).cloned()).collect(),
            };
            if agg.distinct {
                let mut seen = HashSet::new();
                values.retain(|t| seen.insert(t.clone()));
            }
            let numeric: Vec<f64> = values
                .iter()
                .filter_map(|t| t.as_literal().and_then(grdf_rdf::Literal::as_double))
                .collect();
            let result = match agg.func {
                AggFunc::Count => Some(Term::integer(values.len() as i64)),
                AggFunc::Sum => Some(Term::double(numeric.iter().sum())),
                AggFunc::Avg => {
                    if numeric.is_empty() {
                        None
                    } else {
                        Some(Term::double(
                            numeric.iter().sum::<f64>() / numeric.len() as f64,
                        ))
                    }
                }
                // MIN/MAX compare numerically when values are numeric;
                // plain term order otherwise.
                AggFunc::Min => values
                    .iter()
                    .min_by(|a, b| compare_terms(Some(a), Some(b)))
                    .cloned(),
                AggFunc::Max => values
                    .iter()
                    .max_by(|a, b| compare_terms(Some(a), Some(b)))
                    .cloned(),
            };
            if let Some(r) = result {
                row.insert(agg.alias.clone(), r);
            }
        }
        rows.push(row);
    }
    QueryResult::Select {
        vars: out_vars,
        rows,
    }
}

fn resolve(t: &TermOrVar, b: &Bindings) -> Option<Term> {
    match t {
        TermOrVar::Term(t) => Some(t.clone()),
        TermOrVar::Var(v) => b.get(v).cloned(),
    }
}

fn eval_pattern(
    graph: &Graph,
    pattern: &Pattern,
    input: Vec<Bindings>,
    deadline: &Deadline,
) -> Result<Vec<Bindings>, DeadlineExceeded> {
    match pattern {
        Pattern::Bgp(triples) => eval_bgp(graph, triples, input, deadline),
        Pattern::Path {
            subject,
            path,
            object,
        } => {
            let mut out = Vec::new();
            for binding in input {
                deadline.check()?;
                let s = resolve(subject, &binding);
                let o = resolve(object, &binding);
                for (ps, po) in path_pairs(graph, path, s.as_ref(), o.as_ref(), deadline)? {
                    let mut b = binding.clone();
                    if bind(&mut b, subject, &ps) && bind(&mut b, object, &po) {
                        out.push(b);
                    }
                }
            }
            Ok(out)
        }
        Pattern::Group(parts) => {
            let mut acc = input;
            for part in parts {
                acc = eval_pattern(graph, part, acc, deadline)?;
            }
            Ok(acc)
        }
        Pattern::Optional(inner) => {
            let mut out = Vec::new();
            for b in input {
                deadline.check()?;
                let extended = eval_pattern(graph, inner, vec![b.clone()], deadline)?;
                if extended.is_empty() {
                    out.push(b);
                } else {
                    out.extend(extended);
                }
            }
            Ok(out)
        }
        Pattern::Union(l, r) => {
            let mut out = eval_pattern(graph, l, input.clone(), deadline)?;
            out.extend(eval_pattern(graph, r, input, deadline)?);
            Ok(out)
        }
        Pattern::Filter(e) => {
            let rows: Vec<Bindings> = input
                .into_iter()
                .filter(|b| {
                    eval_expr(graph, e, b, deadline).and_then(EvalValue::truthy) == Some(true)
                })
                .collect();
            // EXISTS/NOT EXISTS sub-evaluation swallows expiry into a
            // `None` filter value; expiry latches, so this check surfaces
            // it before any partial row set escapes.
            deadline.check()?;
            Ok(rows)
        }
    }
}

/// Cardinality-driven greedy join order. Each candidate pattern is scored
/// with [`Graph::estimate`] over its constant positions (an exact count
/// from the index, not a heuristic), and the planner repeatedly picks the
/// cheapest pattern — preferring ones connected to an already-bound
/// variable so the join stays a chain of index probes instead of a cross
/// product. Variables bound by earlier patterns count as connections but
/// not as constants: their values aren't known at plan time. The choice
/// depends only on the pattern set, the initially bound variables, and
/// index statistics, so planning is a pure (and separately timed) phase
/// ahead of the join loop.
fn plan_bgp<'a>(
    graph: &Graph,
    triples: &'a [TriplePattern],
    mut bound_vars: HashSet<String>,
) -> Vec<&'a TriplePattern> {
    fn constant(t: &TermOrVar) -> Option<&Term> {
        match t {
            TermOrVar::Term(term) => Some(term),
            TermOrVar::Var(_) => None,
        }
    }
    let mut remaining: Vec<&TriplePattern> = triples.iter().collect();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let cardinality = graph.estimate(
                    constant(&t.subject),
                    constant(&t.predicate),
                    constant(&t.object),
                );
                let connected = t.variables().iter().any(|v| bound_vars.contains(*v));
                // Disconnected patterns sort after connected ones; ties
                // break on estimated cardinality, then input order.
                (i, (!connected, cardinality))
            })
            .min_by_key(|&(_, key)| key)
            .expect("non-empty");
        let pattern = remaining.remove(idx);
        for v in pattern.variables() {
            bound_vars.insert(v.to_string());
        }
        order.push(pattern);
    }
    order
}

fn eval_bgp(
    graph: &Graph,
    triples: &[TriplePattern],
    input: Vec<Bindings>,
    deadline: &Deadline,
) -> Result<Vec<Bindings>, DeadlineExceeded> {
    // Top-level BGPs (the hot path) run on the id-columnar engine: terms
    // are interned once, the join works on `TermId` rows, and terms are
    // cloned only when the surviving rows materialize back to bindings.
    if input.len() == 1 && input[0].is_empty() && !triples.is_empty() {
        return eval_bgp_ids(graph, triples, deadline);
    }
    // Input bindings also count as bound, conservatively using the first
    // solution's keys.
    let mut solutions = input;
    let bound_vars: HashSet<String> = solutions
        .first()
        .map(|b| b.keys().cloned().collect())
        .unwrap_or_default();
    let order = {
        let _span = grdf_obs::span("query.plan");
        plan_bgp(graph, triples, bound_vars)
    };

    let _span = grdf_obs::span("query.join");
    for pattern in order {
        let mut next = Vec::new();
        for binding in &solutions {
            deadline.check()?;
            match_one(graph, pattern, binding, &mut next);
        }
        solutions = next;
        if solutions.is_empty() {
            break;
        }
    }
    grdf_obs::add("query.join.rows", solutions.len() as u64);
    Ok(solutions)
}

/// One position of a lowered triple pattern: an interned constant or a
/// variable index into the BGP's variable table.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    Const(TermId),
    Var(usize),
}

/// A triple pattern lowered to id space.
#[derive(Clone, Copy)]
struct IdPattern {
    s: Slot,
    p: Slot,
    o: Slot,
}

impl IdPattern {
    fn slots(&self) -> [Slot; 3] {
        [self.s, self.p, self.o]
    }
}

use grdf_rdf::graph::TermId;

/// Lower a BGP to id patterns plus the variable name table. `None` means
/// some constant term was never interned by this graph, so the
/// conjunction can match nothing at all.
fn lower_bgp(graph: &Graph, triples: &[TriplePattern]) -> Option<(Vec<IdPattern>, Vec<String>)> {
    let mut vars: Vec<String> = Vec::new();
    let mut lower = |t: &TermOrVar| -> Option<Slot> {
        match t {
            TermOrVar::Term(term) => graph.term_id(term).map(Slot::Const),
            TermOrVar::Var(v) => Some(Slot::Var(vars.iter().position(|x| x == v).unwrap_or_else(
                || {
                    vars.push(v.clone());
                    vars.len() - 1
                },
            ))),
        }
    };
    let mut pats = Vec::with_capacity(triples.len());
    for t in triples {
        pats.push(IdPattern {
            s: lower(&t.subject)?,
            p: lower(&t.predicate)?,
            o: lower(&t.object)?,
        });
    }
    Some((pats, vars))
}

/// Greedy plan over lowered patterns. Cardinality comes from the exact
/// index ranges ([`Graph::estimate`] semantics) and, for patterns joined
/// through an already-bound variable on a constant predicate, is refined
/// by the per-predicate run statistics to the expected per-probe fan-out
/// (`triples / distinct key values`) — a chain probe over a functional
/// property scores far below its raw triple count.
fn plan_ids(graph: &Graph, pats: &[IdPattern], nvars: usize) -> Vec<usize> {
    let term = |slot: Slot| match slot {
        Slot::Const(id) => Some(graph.term_of(id)),
        Slot::Var(_) => None,
    };
    let mut bound = vec![false; nvars];
    let mut remaining: Vec<usize> = (0..pats.len()).collect();
    let mut order = Vec::with_capacity(pats.len());
    while !remaining.is_empty() {
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &pi)| {
                let pat = &pats[pi];
                let connected = pat
                    .slots()
                    .iter()
                    .any(|s| matches!(s, Slot::Var(v) if bound[*v]));
                let mut card = graph.estimate(term(pat.s), term(pat.p), term(pat.o));
                if connected {
                    if let Slot::Const(p) = pat.p {
                        let st = graph.pred_stats(p);
                        let fan_out = |keys: usize| (st.triples / keys.max(1)).max(1);
                        if matches!(pat.s, Slot::Var(v) if bound[v]) {
                            card = card.min(fan_out(st.distinct_subjects));
                        } else if matches!(pat.o, Slot::Var(v) if bound[v]) {
                            card = card.min(fan_out(st.distinct_objects));
                        }
                    }
                }
                (i, (!connected, card))
            })
            .min_by_key(|&(_, key)| key)
            .expect("non-empty");
        let pi = remaining.remove(idx);
        for s in pats[pi].slots() {
            if let Slot::Var(v) = s {
                bound[v] = true;
            }
        }
        order.push(pi);
    }
    order
}

/// First index in `col[lo..]` holding a value `>= key` (strict=false) or
/// `> key` (strict=true): exponential probe from `lo`, then binary search
/// in the bracketed window. Sub-linear when successive keys land close
/// together — the merge-join inner step.
fn gallop(col: &[TermId], lo: usize, key: TermId, strict: bool) -> usize {
    let past = |v: TermId| if strict { v > key } else { v >= key };
    if lo >= col.len() || past(col[lo]) {
        return lo;
    }
    let mut step = 1;
    let mut base = lo;
    while base + step < col.len() && !past(col[base + step]) {
        base += step;
        step <<= 1;
    }
    let hi = (base + step + 1).min(col.len());
    base + 1 + col[base + 1..hi].partition_point(|&v| !past(v))
}

/// Id-columnar BGP evaluation: rows of `TermId` joined pattern-by-pattern
/// in plan order. Patterns joined through a bound object on a clean
/// predicate run use a galloping sorted merge over the zero-copy POS
/// slices; disconnected patterns scan once and cross; everything else
/// falls back to per-row sorted index probes. Terms materialize once at
/// the end.
fn eval_bgp_ids(
    graph: &Graph,
    triples: &[TriplePattern],
    deadline: &Deadline,
) -> Result<Vec<Bindings>, DeadlineExceeded> {
    let Some((pats, vars)) = lower_bgp(graph, triples) else {
        return Ok(Vec::new()); // an unknown constant matches nothing
    };
    let order = {
        let _span = grdf_obs::span("query.plan");
        plan_ids(graph, &pats, vars.len())
    };

    let _span = grdf_obs::span("query.join");
    // Column layout grows as patterns bind variables.
    let mut col_of: Vec<Option<usize>> = vec![None; vars.len()];
    let mut col_var: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<TermId>> = vec![Vec::new()];

    for pi in order {
        let pat = &pats[pi];
        // Resolve each position against the current column layout.
        #[derive(Clone, Copy)]
        enum P {
            Const(TermId),
            Bound(usize),
            New,
        }
        let mut emits: Vec<(usize, Option<usize>)> = Vec::new(); // (component, check col)
        let mut resolved = [P::New; 3];
        for (ci, slot) in pat.slots().into_iter().enumerate() {
            resolved[ci] = match slot {
                Slot::Const(id) => P::Const(id),
                Slot::Var(v) => {
                    if let Some(c) = col_of[v] {
                        P::Bound(c)
                    } else {
                        // First occurrence binds a fresh column; a repeat
                        // inside the same pattern checks against it.
                        let repeat = emits
                            .iter()
                            .find(|&&(c0, _)| matches!(pat.slots()[c0], Slot::Var(v0) if v0 == v));
                        if let Some(&(c0, _)) = repeat {
                            let col = col_var.len() + emits.iter().position(|e| e.0 == c0).unwrap();
                            emits.push((ci, Some(col)));
                        } else {
                            col_of[v] = Some(
                                col_var.len() + emits.iter().filter(|e| e.1.is_none()).count(),
                            );
                            emits.push((ci, None));
                        }
                        P::New
                    }
                }
            };
        }
        let probe = |row: &[TermId], ci: usize| -> Option<TermId> {
            match resolved[ci] {
                P::Const(id) => Some(id),
                P::Bound(c) => Some(row[c]),
                P::New => None,
            }
        };
        let emit_row =
            |row: &[TermId], s: TermId, p: TermId, o: TermId, next: &mut Vec<Vec<TermId>>| {
                let comp = [s, p, o];
                let mut r = Vec::with_capacity(row.len() + emits.len());
                r.extend_from_slice(row);
                for &(ci, check) in &emits {
                    match check {
                        None => r.push(comp[ci]),
                        Some(col) => {
                            if r[col] != comp[ci] {
                                return;
                            }
                        }
                    }
                }
                next.push(r);
            };

        let bound_cols = resolved.iter().any(|p| matches!(p, P::Bound(_)));
        let mut next: Vec<Vec<TermId>> = Vec::new();

        // Merge-join fast path: constant predicate with a clean run
        // slice, joined through the bound object column. Rows sort by
        // the key and the POS slice gallops forward in lockstep.
        let merge = match (resolved[1], resolved[2]) {
            (P::Const(pid), P::Bound(oc)) if !matches!(resolved[0], P::Bound(_)) => graph
                .pred_slices(pid)
                .map(|(objs, subs)| (pid, oc, objs, subs)),
            _ => None,
        };
        if let Some((pid, oc, objs, subs)) = merge {
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            idx.sort_unstable_by_key(|&i| rows[i][oc]);
            let mut lo = 0;
            for (n, &i) in idx.iter().enumerate() {
                if n % 1024 == 0 {
                    deadline.check()?;
                }
                let key = rows[i][oc];
                lo = gallop(objs, lo, key, false);
                let hi = gallop(objs, lo, key, true);
                match resolved[0] {
                    P::New => {
                        for &s in &subs[lo..hi] {
                            emit_row(&rows[i], s, pid, key, &mut next);
                        }
                    }
                    P::Const(sid) => {
                        if subs[lo..hi].binary_search(&sid).is_ok() {
                            emit_row(&rows[i], sid, pid, key, &mut next);
                        }
                    }
                    P::Bound(_) => unreachable!("excluded above"),
                }
            }
        } else if bound_cols {
            // Generic probe: sort rows by the first bound column so
            // successive index probes touch adjacent ranges.
            let sort_key = (0..3).find_map(|ci| match resolved[ci] {
                P::Bound(c) => Some(c),
                _ => None,
            });
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            if let Some(c) = sort_key {
                idx.sort_unstable_by_key(|&i| rows[i][c]);
            }
            for &i in &idx {
                deadline.check()?;
                let row = &rows[i];
                graph.for_each_match_ids(probe(row, 0), probe(row, 1), probe(row, 2), |s, p, o| {
                    emit_row(row, s, p, o, &mut next);
                });
            }
        } else {
            // No join column: the match set is row-independent. Scan
            // once, then cross with the current rows.
            deadline.check()?;
            let mut matches: Vec<(TermId, TermId, TermId)> = Vec::new();
            graph.for_each_match_ids(probe(&[], 0), probe(&[], 1), probe(&[], 2), |s, p, o| {
                matches.push((s, p, o));
            });
            for row in &rows {
                deadline.check()?;
                for &(s, p, o) in &matches {
                    emit_row(row, s, p, o, &mut next);
                }
            }
        }

        for &(ci, check) in &emits {
            if check.is_none() {
                if let Slot::Var(v) = pat.slots()[ci] {
                    col_var.push(v);
                }
            }
        }
        rows = next;
        if rows.is_empty() {
            break;
        }
    }

    grdf_obs::add("query.join.rows", rows.len() as u64);
    Ok(rows
        .into_iter()
        .map(|r| {
            col_var
                .iter()
                .zip(r)
                .map(|(&v, id)| (vars[v].clone(), graph.term_of(id).clone()))
                .collect()
        })
        .collect())
}

fn match_one(graph: &Graph, t: &TriplePattern, binding: &Bindings, out: &mut Vec<Bindings>) {
    let s = resolve(&t.subject, binding);
    let p = resolve(&t.predicate, binding);
    let o = resolve(&t.object, binding);
    graph.for_each_match(s.as_ref(), p.as_ref(), o.as_ref(), |found| {
        let mut b = binding.clone();
        let ok = bind(&mut b, &t.subject, &found.subject)
            && bind(&mut b, &t.predicate, &found.predicate)
            && bind(&mut b, &t.object, &found.object);
        if ok {
            out.push(b);
        }
    });
}

/// Enumerate `(start, end)` pairs satisfying a property path, under
/// optional endpoint constraints. Recursive closure operators use BFS when
/// one endpoint is bound and pair-set iteration otherwise.
fn path_pairs(
    graph: &Graph,
    path: &crate::ast::PropertyPath,
    s: Option<&Term>,
    o: Option<&Term>,
    deadline: &Deadline,
) -> Result<Vec<(Term, Term)>, DeadlineExceeded> {
    use crate::ast::PropertyPath as P;
    Ok(match path {
        P::Iri(p) => {
            let mut out = Vec::new();
            graph.for_each_match(s, Some(p), o, |t| out.push((t.subject, t.object)));
            out
        }
        P::Inverse(inner) => path_pairs(graph, inner, o, s, deadline)?
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect(),
        P::Alternative(l, r) => {
            let mut out = path_pairs(graph, l, s, o, deadline)?;
            let seen: HashSet<(Term, Term)> = out.iter().cloned().collect();
            out.extend(
                path_pairs(graph, r, s, o, deadline)?
                    .into_iter()
                    .filter(|p| !seen.contains(p)),
            );
            out
        }
        P::Sequence(a, b) => {
            let mut out = Vec::new();
            let mut seen = HashSet::new();
            if s.is_some() || o.is_none() {
                // Forward: expand `a` from the (possibly unbound) start.
                for (sa, mid) in path_pairs(graph, a, s, None, deadline)? {
                    deadline.check()?;
                    if !mid.is_resource() {
                        continue;
                    }
                    for (_, ob) in path_pairs(graph, b, Some(&mid), o, deadline)? {
                        if seen.insert((sa.clone(), ob.clone())) {
                            out.push((sa.clone(), ob));
                        }
                    }
                }
            } else {
                // Backward: only the object is bound.
                for (mid, ob) in path_pairs(graph, b, None, o, deadline)? {
                    deadline.check()?;
                    for (sa, _) in path_pairs(graph, a, None, Some(&mid), deadline)? {
                        if seen.insert((sa.clone(), ob.clone())) {
                            out.push((sa, ob.clone()));
                        }
                    }
                }
            }
            out
        }
        P::OneOrMore(inner) => closure_pairs(graph, inner, s, o, false, deadline)?,
        P::ZeroOrMore(inner) => closure_pairs(graph, inner, s, o, true, deadline)?,
    })
}

/// Transitive closure of a path, optionally reflexive.
fn closure_pairs(
    graph: &Graph,
    inner: &crate::ast::PropertyPath,
    s: Option<&Term>,
    o: Option<&Term>,
    reflexive: bool,
    deadline: &Deadline,
) -> Result<Vec<(Term, Term)>, DeadlineExceeded> {
    let mut out: Vec<(Term, Term)> = Vec::new();
    let emit_from = |start: &Term, out: &mut Vec<(Term, Term)>| -> Result<(), DeadlineExceeded> {
        // BFS over the inner path from `start`.
        let mut reached: HashSet<Term> = HashSet::new();
        let mut frontier = vec![start.clone()];
        if reflexive {
            reached.insert(start.clone());
        }
        while let Some(cur) = frontier.pop() {
            deadline.check()?;
            for (_, next) in path_pairs(graph, inner, Some(&cur), None, deadline)? {
                if reached.insert(next.clone()) && next.is_resource() {
                    frontier.push(next);
                }
            }
        }
        for r in reached {
            if o.is_none_or(|oo| *oo == r) {
                out.push((start.clone(), r));
            }
        }
        Ok(())
    };

    match (s, o) {
        (Some(start), _) => emit_from(start, &mut out)?,
        (None, Some(end)) => {
            // Reverse BFS via the inverse path, then flip.
            let inv = crate::ast::PropertyPath::Inverse(Box::new(inner.clone()));
            for (e, sfound) in closure_pairs(graph, &inv, Some(end), None, reflexive, deadline)? {
                debug_assert_eq!(&e, end);
                out.push((sfound, e));
            }
        }
        (None, None) => {
            // All starting points: every subject of an inner step.
            let mut starts: HashSet<Term> = HashSet::new();
            for (a, _) in path_pairs(graph, inner, None, None, deadline)? {
                starts.insert(a);
            }
            for start in starts {
                deadline.check()?;
                emit_from(&start, &mut out)?;
            }
        }
    }
    Ok(out)
}

fn bind(b: &mut Bindings, slot: &TermOrVar, value: &Term) -> bool {
    match slot {
        TermOrVar::Term(_) => true,
        TermOrVar::Var(v) => {
            if let Some(existing) = b.get(v) {
                existing == value
            } else {
                b.insert(v.clone(), value.clone());
                true
            }
        }
    }
}

/// Expression evaluation values.
enum EvalValue {
    Bool(bool),
    Num(f64),
    Term(Term),
}

impl EvalValue {
    fn truthy(self) -> Option<bool> {
        match self {
            EvalValue::Bool(b) => Some(b),
            EvalValue::Num(n) => Some(n != 0.0),
            EvalValue::Term(t) => t.as_literal().and_then(grdf_rdf::Literal::as_boolean),
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            EvalValue::Num(n) => Some(*n),
            EvalValue::Term(t) => {
                let l = t.as_literal()?;
                // xsd:dateTime/xsd:date compare chronologically, via epoch
                // seconds.
                if matches!(
                    l.datatype(),
                    grdf_rdf::vocab::xsd::DATE_TIME | grdf_rdf::vocab::xsd::DATE
                ) {
                    return grdf_feature::time::TimeInstant::parse(l.lexical())
                        .map(|t| t.epoch_seconds as f64);
                }
                l.as_double()
            }
            EvalValue::Bool(_) => None,
        }
    }

    fn as_text(&self) -> Option<String> {
        match self {
            EvalValue::Term(Term::Literal(l)) => Some(l.lexical().to_string()),
            EvalValue::Term(Term::Iri(i)) => Some(i.to_string()),
            EvalValue::Term(Term::Blank(b)) => Some(format!("_:{b}")),
            EvalValue::Num(n) => Some(n.to_string()),
            EvalValue::Bool(b) => Some(b.to_string()),
        }
    }
}

fn eval_expr(graph: &Graph, e: &Expr, b: &Bindings, deadline: &Deadline) -> Option<EvalValue> {
    match e {
        Expr::Const(t) => Some(EvalValue::Term(t.clone())),
        Expr::Var(v) => b.get(v).cloned().map(EvalValue::Term),
        Expr::Bound(v) => Some(EvalValue::Bool(b.contains_key(v))),
        Expr::Not(inner) => {
            let v = eval_expr(graph, inner, b, deadline)?.truthy()?;
            Some(EvalValue::Bool(!v))
        }
        Expr::And(l, r) => {
            let lv = eval_expr(graph, l, b, deadline)?.truthy()?;
            if !lv {
                return Some(EvalValue::Bool(false));
            }
            Some(EvalValue::Bool(eval_expr(graph, r, b, deadline)?.truthy()?))
        }
        Expr::Or(l, r) => {
            let lv = eval_expr(graph, l, b, deadline)?.truthy()?;
            if lv {
                return Some(EvalValue::Bool(true));
            }
            Some(EvalValue::Bool(eval_expr(graph, r, b, deadline)?.truthy()?))
        }
        Expr::Eq(l, r) => compare(graph, l, r, b, deadline, |o| o == Ordering::Equal),
        Expr::Ne(l, r) => compare(graph, l, r, b, deadline, |o| o != Ordering::Equal),
        Expr::Lt(l, r) => compare(graph, l, r, b, deadline, |o| o == Ordering::Less),
        Expr::Le(l, r) => compare(graph, l, r, b, deadline, |o| o != Ordering::Greater),
        Expr::Gt(l, r) => compare(graph, l, r, b, deadline, |o| o == Ordering::Greater),
        Expr::Ge(l, r) => compare(graph, l, r, b, deadline, |o| o != Ordering::Less),
        Expr::Contains(l, r) => {
            let hay = eval_expr(graph, l, b, deadline)?.as_text()?;
            let needle = eval_expr(graph, r, b, deadline)?.as_text()?;
            Some(EvalValue::Bool(hay.contains(&needle)))
        }
        Expr::StrStarts(l, r) => {
            let hay = eval_expr(graph, l, b, deadline)?.as_text()?;
            let prefix = eval_expr(graph, r, b, deadline)?.as_text()?;
            Some(EvalValue::Bool(hay.starts_with(&prefix)))
        }
        Expr::IntersectsBox {
            feature,
            x0,
            y0,
            x1,
            y1,
        } => {
            let f = b.get(feature)?;
            let env = feature_envelope(graph, f)?;
            let query = grdf_geometry::envelope::Envelope::new(
                grdf_geometry::coord::Coord::xy(*x0, *y0),
                grdf_geometry::coord::Coord::xy(*x1, *y1),
            );
            Some(EvalValue::Bool(env.intersects(&query)))
        }
        Expr::Within { inner, outer } => {
            let fi = b.get(inner)?;
            let fo = b.get(outer)?;
            let ei = feature_envelope(graph, fi)?;
            let eo = feature_envelope(graph, fo)?;
            Some(EvalValue::Bool(eo.contains_envelope(&ei)))
        }
        Expr::Distance { a, b: bb } => {
            let fa = b.get(a)?;
            let fb = b.get(bb)?;
            Some(EvalValue::Num(feature_distance(graph, fa, fb)?))
        }
        Expr::Exists(p) => {
            let found = !eval_pattern(graph, p, vec![b.clone()], deadline)
                .ok()?
                .is_empty();
            Some(EvalValue::Bool(found))
        }
        Expr::NotExists(p) => {
            let found = !eval_pattern(graph, p, vec![b.clone()], deadline)
                .ok()?
                .is_empty();
            Some(EvalValue::Bool(!found))
        }
    }
}

fn compare(
    graph: &Graph,
    l: &Expr,
    r: &Expr,
    b: &Bindings,
    deadline: &Deadline,
    test: fn(Ordering) -> bool,
) -> Option<EvalValue> {
    let lv = eval_expr(graph, l, b, deadline)?;
    let rv = eval_expr(graph, r, b, deadline)?;
    // Numeric comparison when both sides are numeric.
    if let (Some(ln), Some(rn)) = (lv.as_num(), rv.as_num()) {
        return Some(EvalValue::Bool(test(ln.partial_cmp(&rn)?)));
    }
    let ls = lv.as_text()?;
    let rs = rv.as_text()?;
    Some(EvalValue::Bool(test(ls.cmp(&rs))))
}

fn compare_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let nx = x.as_literal().and_then(grdf_rdf::Literal::as_double);
            let ny = y.as_literal().and_then(grdf_rdf::Literal::as_double);
            match (nx, ny) {
                (Some(nx), Some(ny)) => nx.partial_cmp(&ny).unwrap_or(Ordering::Equal),
                _ => x.cmp(y),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::turtle;

    fn data() -> Graph {
        turtle::parse(
            r#"@prefix app: <http://grdf.org/app#> .
               @prefix grdf: <http://grdf.org/ontology#> .
               app:s1 a app:ChemSite ; app:hasSiteName "North Texas Energy" ; app:risk 7 .
               app:s2 a app:ChemSite ; app:hasSiteName "Trinity Chemical" ; app:risk 3 .
               app:s3 a app:Stream ; app:hasSiteName "White Rock Creek" .
               app:s1 app:near app:s3 .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn basic_select() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?n WHERE { ?s a app:ChemSite ; app:hasSiteName ?n . }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 2);
    }

    #[test]
    fn join_across_patterns() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?sname ?tname WHERE {
               ?s app:near ?t .
               ?s app:hasSiteName ?sname .
               ?t app:hasSiteName ?tname .
             }",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["sname"], Term::string("North Texas Energy"));
        assert_eq!(rows[0]["tname"], Term::string("White Rock Creek"));
    }

    #[test]
    fn planner_orders_by_cardinality_not_text_order() {
        // Adversarial ordering: the textually-first pattern matches 60
        // triples, the textually-last matches one. Both have the same
        // bound-position count, so the old static heuristic kept text
        // order; the index-backed planner must put the rare one first.
        let mut g = Graph::new();
        let common = Term::iri("urn:p#common");
        let rare = Term::iri("urn:p#rare");
        for i in 0..60 {
            g.add(
                Term::iri(&format!("urn:s#{i}")),
                common.clone(),
                Term::iri(&format!("urn:o#{i}")),
            );
        }
        g.add(Term::iri("urn:s#7"), rare.clone(), Term::iri("urn:o#x"));
        let patterns = vec![
            TriplePattern::new(
                TermOrVar::var("s"),
                TermOrVar::Term(common.clone()),
                TermOrVar::var("o"),
            ),
            TriplePattern::new(
                TermOrVar::var("s"),
                TermOrVar::Term(rare.clone()),
                TermOrVar::var("v"),
            ),
        ];
        let order = plan_bgp(&g, &patterns, HashSet::new());
        assert_eq!(
            order[0].predicate,
            TermOrVar::Term(rare),
            "most selective pattern must be joined first"
        );
        assert_eq!(order[1].predicate, TermOrVar::Term(common));
    }

    #[test]
    fn planner_prefers_connected_patterns_over_cheaper_cross_products() {
        let mut g = Graph::new();
        let rare = Term::iri("urn:p#rare");
        let mid = Term::iri("urn:p#mid");
        let tiny = Term::iri("urn:p#tiny-island");
        g.add(Term::iri("urn:s#1"), rare.clone(), Term::iri("urn:o#1"));
        for i in 0..10 {
            g.add(
                Term::iri(&format!("urn:s#{i}")),
                mid.clone(),
                Term::iri(&format!("urn:m#{i}")),
            );
        }
        g.add(Term::iri("urn:z#1"), tiny.clone(), Term::iri("urn:z#2"));
        g.add(Term::iri("urn:z#3"), tiny.clone(), Term::iri("urn:z#4"));
        // ?s rare ?o (1 triple) seeds; ?s mid ?m (10) shares ?s; the tiny
        // pattern (2 triples) is cheaper but shares no variable — picking
        // it second would force a cross product.
        let patterns = vec![
            TriplePattern::new(
                TermOrVar::var("s"),
                TermOrVar::Term(mid.clone()),
                TermOrVar::var("m"),
            ),
            TriplePattern::new(
                TermOrVar::var("a"),
                TermOrVar::Term(tiny.clone()),
                TermOrVar::var("b"),
            ),
            TriplePattern::new(
                TermOrVar::var("s"),
                TermOrVar::Term(rare.clone()),
                TermOrVar::var("o"),
            ),
        ];
        let order = plan_bgp(&g, &patterns, HashSet::new());
        assert_eq!(order[0].predicate, TermOrVar::Term(rare));
        assert_eq!(
            order[1].predicate,
            TermOrVar::Term(mid),
            "connected pattern beats a cheaper disconnected one"
        );
        assert_eq!(order[2].predicate, TermOrVar::Term(tiny));
    }

    #[test]
    fn filter_numeric() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE { ?s app:risk ?r . FILTER(?r > 5) }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 1);
    }

    #[test]
    fn filter_string_builtins() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE { ?s app:hasSiteName ?n . FILTER(CONTAINS(?n, \"Creek\")) }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 1);
        let r2 = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE { ?s app:hasSiteName ?n . FILTER(STRSTARTS(?n, \"North\")) }",
        )
        .unwrap();
        assert_eq!(r2.select_rows().len(), 1);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s ?r WHERE { ?s app:hasSiteName ?n . OPTIONAL { ?s app:risk ?r } }",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows.iter().filter(|b| b.contains_key("r")).count(), 2);
    }

    #[test]
    fn union_combines() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE { { ?s a app:ChemSite } UNION { ?s a app:Stream } }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 3);
    }

    #[test]
    fn ask_true_false() {
        let g = data();
        assert_eq!(
            execute(
                &g,
                "PREFIX app: <http://grdf.org/app#> ASK { app:s1 a app:ChemSite }"
            )
            .unwrap()
            .as_bool(),
            Some(true)
        );
        assert_eq!(
            execute(
                &g,
                "PREFIX app: <http://grdf.org/app#> ASK { app:s1 a app:Stream }"
            )
            .unwrap()
            .as_bool(),
            Some(false)
        );
    }

    #[test]
    fn construct_builds_graph() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             CONSTRUCT { ?s app:label ?n } WHERE { ?s app:hasSiteName ?n }",
        )
        .unwrap();
        let g = r.into_graph().unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn order_limit_offset() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?n WHERE { ?s app:hasSiteName ?n } ORDER BY ?n LIMIT 2",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["n"], Term::string("North Texas Energy"));
        let r2 = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?n WHERE { ?s app:hasSiteName ?n } ORDER BY DESC(?n) OFFSET 1 LIMIT 1",
        )
        .unwrap();
        assert_eq!(r2.select_rows()[0]["n"], Term::string("Trinity Chemical"));
    }

    #[test]
    fn numeric_order_by() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?r WHERE { ?s app:risk ?r } ORDER BY DESC(?r)",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows[0]["r"].as_literal().unwrap().as_integer(), Some(7));
    }

    #[test]
    fn distinct_dedups() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT DISTINCT ?t WHERE { ?s a ?t }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 2);
    }

    #[test]
    fn select_star_collects_vars() {
        let r = execute(&data(), "SELECT * WHERE { ?s ?p ?o } LIMIT 1").unwrap();
        match r {
            QueryResult::Select { vars, rows } => {
                assert_eq!(vars, vec!["o", "p", "s"]);
                assert_eq!(rows.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spatial_filter_end_to_end() {
        use grdf_feature::feature::Feature;
        use grdf_feature::rdf_codec::encode_feature;
        use grdf_geometry::coord::Coord;
        use grdf_geometry::primitives::{LineString, Point};

        let mut g = Graph::new();
        let mut stream = Feature::new("urn:stream", "Stream");
        stream.set_geometry(
            LineString::new(vec![Coord::xy(0.0, 0.0), Coord::xy(50.0, 50.0)])
                .unwrap()
                .into(),
        );
        encode_feature(&mut g, &stream);
        let mut far_site = Feature::new("urn:far", "ChemSite");
        far_site.set_geometry(Point::new(500.0, 500.0).into());
        encode_feature(&mut g, &far_site);
        let mut near_site = Feature::new("urn:near", "ChemSite");
        near_site.set_geometry(Point::new(30.0, 20.0).into());
        encode_feature(&mut g, &near_site);

        let r = execute(
            &g,
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?f WHERE { ?f a app:ChemSite . FILTER(grdf:intersectsBox(?f, 0, 0, 100, 100)) }",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["f"], Term::iri("urn:near"));

        // Distance filter: the near site is within 60 of the stream.
        let r2 = execute(
            &g,
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?f WHERE {
               ?s a app:Stream . ?f a app:ChemSite .
               FILTER(grdf:distance(?f, ?s) < 60)
             }",
        )
        .unwrap();
        assert_eq!(r2.select_rows().len(), 1);
    }

    #[test]
    fn bound_filter() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE { ?s app:hasSiteName ?n . OPTIONAL { ?s app:risk ?r } FILTER(!BOUND(?r)) }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 1, "only the stream lacks risk");
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            execute(&data(), "NOT A QUERY"),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn datetime_filters_compare_chronologically() {
        let g = turtle::parse(
            r#"@prefix app: <http://grdf.org/app#> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               app:o1 app:at "2026-07-06T08:00:00Z"^^xsd:dateTime .
               app:o2 app:at "2026-07-06T09:30:00Z"^^xsd:dateTime .
               app:o3 app:at "2026-07-05T23:00:00Z"^^xsd:dateTime .
            "#,
        )
        .unwrap();
        let r = execute(
            &g,
            r#"PREFIX app: <http://grdf.org/app#>
               PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?o WHERE {
                 ?o app:at ?t .
                 FILTER(?t >= "2026-07-06T00:00:00Z"^^xsd:dateTime)
               }"#,
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 2, "only same-day observations");
    }

    #[test]
    fn count_star_and_count_var() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT (COUNT(*) AS ?n) WHERE { ?s a app:ChemSite }",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["n"], Term::integer(2));

        let r2 = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT (COUNT(DISTINCT ?t) AS ?kinds) WHERE { ?s a ?t }",
        )
        .unwrap();
        assert_eq!(r2.select_rows()[0]["kinds"], Term::integer(2));
    }

    #[test]
    fn sum_avg_min_max() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT (SUM(?r) AS ?total) (AVG(?r) AS ?mean) (MIN(?r) AS ?lo) (MAX(?r) AS ?hi)
             WHERE { ?s app:risk ?r }",
        )
        .unwrap();
        let row = &r.select_rows()[0];
        assert_eq!(row["total"].as_literal().unwrap().as_double(), Some(10.0));
        assert_eq!(row["mean"].as_literal().unwrap().as_double(), Some(5.0));
        assert_eq!(row["lo"].as_literal().unwrap().as_integer(), Some(3));
        assert_eq!(row["hi"].as_literal().unwrap().as_integer(), Some(7));
    }

    #[test]
    fn order_and_limit_apply_after_aggregation() {
        // Regression: LIMIT must bound the aggregated rows, not truncate
        // the solution multiset before grouping.
        let g = turtle::parse(
            r"@prefix e: <urn:e#> .
               e:o1 e:of e:g1 ; e:v 1 . e:o2 e:of e:g1 ; e:v 2 .
               e:o3 e:of e:g1 ; e:v 3 . e:o4 e:of e:g2 ; e:v 10 .
               e:o5 e:of e:g2 ; e:v 20 .
            ",
        )
        .unwrap();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#>
             SELECT ?grp (COUNT(?o) AS ?n) (AVG(?v) AS ?mean)
             WHERE { ?o e:of ?grp ; e:v ?v }
             GROUP BY ?grp ORDER BY DESC(?mean) LIMIT 1",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["grp"], Term::iri("urn:e#g2"));
        assert_eq!(rows[0]["n"].as_literal().unwrap().as_integer(), Some(2));
        assert_eq!(
            rows[0]["mean"].as_literal().unwrap().as_double(),
            Some(15.0)
        );
    }

    #[test]
    fn group_by_partitions() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?t ORDER BY DESC(?n)",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 2);
        let by_type: std::collections::HashMap<String, i64> = rows
            .iter()
            .map(|r| {
                (
                    r["t"].as_iri().unwrap().to_string(),
                    r["n"].as_literal().unwrap().as_integer().unwrap(),
                )
            })
            .collect();
        assert_eq!(by_type["http://grdf.org/app#ChemSite"], 2);
        assert_eq!(by_type["http://grdf.org/app#Stream"], 1);
    }

    fn river_graph() -> Graph {
        turtle::parse(
            r#"@prefix e: <urn:e#> .
               e:r1 e:flowsInto e:r2 . e:r2 e:flowsInto e:r3 . e:r3 e:flowsInto e:sea .
               e:r4 e:flowsInto e:r3 .
               e:r1 e:name "Headwater" . e:sea e:name "Gulf" .
               e:obsA e:observes e:r1 .
            "#,
        )
        .unwrap()
    }

    #[test]
    fn path_one_or_more_transitive() {
        let g = river_graph();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?x WHERE { e:r1 e:flowsInto+ ?x }",
        )
        .unwrap();
        let mut got: Vec<&Term> = r.select_rows().iter().map(|b| &b["x"]).collect();
        got.sort();
        assert_eq!(got.len(), 3, "{got:?}"); // r2, r3, sea
        assert!(got.contains(&&Term::iri("urn:e#sea")));
        assert!(!got.contains(&&Term::iri("urn:e#r1")), "not reflexive");
    }

    #[test]
    fn path_zero_or_more_is_reflexive() {
        let g = river_graph();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?x WHERE { e:r1 e:flowsInto* ?x }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 4); // r1 + 3 downstream
    }

    #[test]
    fn path_inverse() {
        let g = river_graph();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?up WHERE { e:r3 ^e:flowsInto ?up }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 2); // r2 and r4
    }

    #[test]
    fn path_sequence_and_alternative() {
        let g = river_graph();
        // Name of whatever r2 flows into.
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?n WHERE { e:r3 e:flowsInto/e:name ?n }",
        )
        .unwrap();
        assert_eq!(r.select_rows()[0]["n"], Term::string("Gulf"));
        // Alternative: things related to r1 by either property.
        let r2 = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?x WHERE { ?x (e:observes|e:flowsInto) e:r1 }",
        )
        .unwrap();
        assert_eq!(r2.select_rows().len(), 1); // obsA observes r1; nothing flows into r1
    }

    #[test]
    fn path_bound_object_reverse_closure() {
        let g = river_graph();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?src WHERE { ?src e:flowsInto+ e:sea }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 4, "every river reaches the sea");
    }

    #[test]
    fn path_composes_with_bgp() {
        let g = river_graph();
        // Which named feature is transitively downstream of r1?
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT ?n WHERE { e:r1 e:flowsInto+ ?x . ?x e:name ?n }",
        )
        .unwrap();
        assert_eq!(r.select_rows().len(), 1);
        assert_eq!(r.select_rows()[0]["n"], Term::string("Gulf"));
    }

    #[test]
    fn exists_and_not_exists() {
        // Streams with no risk assessment (NOT EXISTS) — the kind of
        // completeness probe middleware runs after aggregation.
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE {
               ?s app:hasSiteName ?n .
               FILTER(NOT EXISTS { ?s app:risk ?r })
             }",
        )
        .unwrap();
        let rows = r.select_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["s"], Term::iri("http://grdf.org/app#s3"));

        let r2 = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE {
               ?s app:hasSiteName ?n .
               FILTER(EXISTS { ?s app:near ?t })
             }",
        )
        .unwrap();
        assert_eq!(r2.select_rows().len(), 1);
        assert_eq!(
            r2.select_rows()[0]["s"],
            Term::iri("http://grdf.org/app#s1")
        );
    }

    #[test]
    fn exists_uses_outer_bindings() {
        // The inner pattern must be correlated with the outer ?s, not a
        // free-floating ask.
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?s WHERE {
               ?s a app:ChemSite .
               FILTER(NOT EXISTS { ?s app:near ?x })
             }",
        )
        .unwrap();
        // s1 is near s3; s2 is near nothing.
        assert_eq!(r.select_rows().len(), 1);
        assert_eq!(r.select_rows()[0]["s"], Term::iri("http://grdf.org/app#s2"));
    }

    #[test]
    fn min_max_compare_numerically_not_lexically() {
        let g = turtle::parse("@prefix e: <urn:e#> . e:a e:v 9.6 . e:b e:v 10.1 . e:c e:v 2.0 .")
            .unwrap();
        let r = execute(
            &g,
            "PREFIX e: <urn:e#> SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s e:v ?v }",
        )
        .unwrap();
        let row = &r.select_rows()[0];
        assert_eq!(row["lo"].as_literal().unwrap().as_double(), Some(2.0));
        assert_eq!(
            row["hi"].as_literal().unwrap().as_double(),
            Some(10.1),
            "lexical comparison would pick 9.6"
        );
    }

    #[test]
    fn empty_group_aggregates() {
        let r = execute(
            &data(),
            "PREFIX app: <http://grdf.org/app#>
             SELECT (COUNT(?s) AS ?n) WHERE { ?s a app:Nonexistent }",
        )
        .unwrap();
        assert_eq!(r.select_rows()[0]["n"], Term::integer(0));
    }

    #[test]
    fn projecting_ungrouped_vars_with_aggregates_is_an_error() {
        assert!(execute(&data(), "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o }",).is_err());
        assert!(execute(&data(), "SELECT ?s WHERE { ?s ?p ?o } GROUP BY ?s").is_err());
    }
}
