//! SPARQL-subset query engine over GRDF graphs.
//!
//! The paper's aggregation story ends at "middleware creates a layered view
//! by combining the two result-sets fetched from hydrology and chemical
//! site data stores" (§7.1) — which requires a query language over the
//! merged graph. No SPARQL engine exists in the allowed dependency set, so
//! this crate implements the needed subset:
//!
//! * `SELECT` (with `DISTINCT`, `ORDER BY`, `LIMIT`/`OFFSET`), `ASK`, and
//!   `CONSTRUCT`;
//! * basic graph patterns with greedy most-selective-first join ordering;
//! * `FILTER` expressions (comparisons, arithmetic-free boolean algebra,
//!   `BOUND`, `STR`, `REGEX`-free `CONTAINS`/`STRSTARTS`);
//! * `OPTIONAL` (left join) and `UNION`;
//! * geospatial builtins evaluated against GRDF-encoded geometry:
//!   `grdf:intersectsBox(?f, x0, y0, x1, y1)`, `grdf:within(?f, ?g)` and
//!   `grdf:distance(?f, ?g)`.
//!
//! # Example
//!
//! ```
//! use grdf_query::execute;
//! use grdf_rdf::turtle;
//!
//! let g = turtle::parse(
//!     "@prefix app: <http://grdf.org/app#> .
//!      app:s1 a app:ChemSite ; app:hasSiteName \"NT Energy\" .",
//! ).unwrap();
//! let rows = execute(&g,
//!     "PREFIX app: <http://grdf.org/app#>
//!      SELECT ?name WHERE { ?s a app:ChemSite ; app:hasSiteName ?name . }",
//! ).unwrap();
//! assert_eq!(rows.select_rows().len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod parser;
pub mod spatial;

pub use ast::{Expr, Pattern, Query, QueryKind, TermOrVar, TriplePattern};
pub use eval::{
    execute, execute_query, execute_query_with_deadline, execute_with_deadline, Bindings,
    QueryError, QueryResult,
};
