//! Recursive-descent parser for the SPARQL subset.

use std::fmt;

use grdf_rdf::namespace::PrefixMap;
use grdf_rdf::term::{Literal, Term};
use grdf_rdf::vocab::{rdf, xsd};

use crate::ast::{
    AggFunc, Aggregate, Expr, Order, Pattern, Query, QueryKind, TermOrVar, TriplePattern,
};

/// Parse error with a byte-offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Approximate byte offset.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Solution modifiers: `(group_by, order, limit, offset)`.
type Modifiers = (Vec<String>, Vec<Order>, Option<usize>, usize);

/// Parse a query string.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        prefixes: PrefixMap::common(),
    };
    p.query()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    prefixes: PrefixMap,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.input.len(),
                }
            } else {
                return;
            }
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    /// Case-insensitive keyword match.
    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if r.len() >= kw.len() && r[..kw.len()].eq_ignore_ascii_case(kw) {
            let after = r[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn punct(&mut self, p: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(p) {
            self.pos += p.len();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}")))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        // Prologue.
        while self.keyword("PREFIX") {
            self.skip_ws();
            let name_end = self
                .rest()
                .find(':')
                .ok_or_else(|| self.err("expected ':' in PREFIX"))?;
            let name = self.rest()[..name_end].trim().to_string();
            self.pos += name_end + 1;
            let iri = self.iri_ref()?;
            self.prefixes.insert(&name, &iri);
        }

        let query = if self.keyword("SELECT") {
            let distinct = self.keyword("DISTINCT");
            let mut vars = Vec::new();
            let mut aggregates = Vec::new();
            self.skip_ws();
            if self.punct("*") {
                // SELECT * — empty projection list.
            } else {
                loop {
                    self.skip_ws();
                    if self.rest().starts_with('(') {
                        aggregates.push(self.aggregate()?);
                        continue;
                    }
                    match self.try_variable() {
                        Some(v) => vars.push(v),
                        None => break,
                    }
                }
                if vars.is_empty() && aggregates.is_empty() {
                    return Err(self.err("SELECT needs '*', variables, or aggregates"));
                }
            }
            let _ = self.keyword("WHERE");
            let pattern = self.group()?;
            let (group_by, order, limit, offset) = self.modifiers()?;
            if !group_by.is_empty() && aggregates.is_empty() {
                return Err(self.err("GROUP BY requires aggregate projections"));
            }
            for v in &vars {
                if !aggregates.is_empty() && !group_by.contains(v) {
                    return Err(self.err(format!(
                        "projected variable ?{v} must appear in GROUP BY alongside aggregates"
                    )));
                }
            }
            Query {
                kind: QueryKind::Select {
                    vars,
                    aggregates,
                    distinct,
                },
                pattern,
                group_by,
                order,
                limit,
                offset,
            }
        } else if self.keyword("ASK") {
            let _ = self.keyword("WHERE");
            let pattern = self.group()?;
            Query {
                kind: QueryKind::Ask,
                pattern,
                group_by: Vec::new(),
                order: Vec::new(),
                limit: None,
                offset: 0,
            }
        } else if self.keyword("CONSTRUCT") {
            self.expect_punct("{")?;
            let template = self.triples_until_close()?;
            let _ = self.keyword("WHERE");
            let pattern = self.group()?;
            let (group_by, order, limit, offset) = self.modifiers()?;
            if !group_by.is_empty() {
                return Err(self.err("GROUP BY is not supported in CONSTRUCT"));
            }
            Query {
                kind: QueryKind::Construct { template },
                pattern,
                group_by,
                order,
                limit,
                offset,
            }
        } else {
            return Err(self.err("expected SELECT, ASK or CONSTRUCT"));
        };

        if !self.at_end() {
            return Err(self.err(format!(
                "unexpected trailing input: {:?}",
                &self.rest()[..self.rest().len().min(20)]
            )));
        }
        Ok(query)
    }

    /// `(FUNC(DISTINCT? ?v | *) AS ?alias)`.
    fn aggregate(&mut self) -> Result<Aggregate, ParseError> {
        self.expect_punct("(")?;
        let func = if self.keyword("COUNT") {
            AggFunc::Count
        } else if self.keyword("SUM") {
            AggFunc::Sum
        } else if self.keyword("AVG") {
            AggFunc::Avg
        } else if self.keyword("MIN") {
            AggFunc::Min
        } else if self.keyword("MAX") {
            AggFunc::Max
        } else {
            return Err(self.err("expected an aggregate function"));
        };
        self.expect_punct("(")?;
        let distinct = self.keyword("DISTINCT");
        self.skip_ws();
        let var = if self.punct("*") {
            if func != AggFunc::Count {
                return Err(self.err("'*' is only valid in COUNT"));
            }
            None
        } else {
            Some(
                self.try_variable()
                    .ok_or_else(|| self.err("expected a variable in aggregate"))?,
            )
        };
        self.expect_punct(")")?;
        if !self.keyword("AS") {
            return Err(self.err("expected AS in aggregate projection"));
        }
        let alias = self
            .try_variable()
            .ok_or_else(|| self.err("expected an alias variable after AS"))?;
        self.expect_punct(")")?;
        Ok(Aggregate {
            func,
            distinct,
            var,
            alias,
        })
    }

    fn modifiers(&mut self) -> Result<Modifiers, ParseError> {
        let mut group_by = Vec::new();
        if self.keyword("GROUP") {
            if !self.keyword("BY") {
                return Err(self.err("expected BY after GROUP"));
            }
            while let Some(v) = self.try_variable() {
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY needs at least one variable"));
            }
        }
        let mut order = Vec::new();
        if self.keyword("ORDER") {
            if !self.keyword("BY") {
                return Err(self.err("expected BY after ORDER"));
            }
            loop {
                if self.keyword("DESC") {
                    self.expect_punct("(")?;
                    let v = self
                        .try_variable()
                        .ok_or_else(|| self.err("expected variable"))?;
                    self.expect_punct(")")?;
                    order.push(Order::Desc(v));
                } else if self.keyword("ASC") {
                    self.expect_punct("(")?;
                    let v = self
                        .try_variable()
                        .ok_or_else(|| self.err("expected variable"))?;
                    self.expect_punct(")")?;
                    order.push(Order::Asc(v));
                } else if let Some(v) = self.try_variable() {
                    order.push(Order::Asc(v));
                } else {
                    break;
                }
            }
            if order.is_empty() {
                return Err(self.err("ORDER BY needs at least one key"));
            }
        }
        let mut limit = None;
        let mut offset = 0;
        loop {
            if self.keyword("LIMIT") {
                limit = Some(self.number_usize()?);
            } else if self.keyword("OFFSET") {
                offset = self.number_usize()?;
            } else {
                break;
            }
        }
        Ok((group_by, order, limit, offset))
    }

    fn number_usize(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let end = self
            .rest()
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest().len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let n = self.rest()[..end]
            .parse()
            .map_err(|_| self.err("bad number"))?;
        self.pos += end;
        Ok(n)
    }

    fn group(&mut self) -> Result<Pattern, ParseError> {
        self.expect_punct("{")?;
        let mut parts: Vec<Pattern> = Vec::new();
        loop {
            self.skip_ws();
            if self.punct("}") {
                break;
            }
            if self.keyword("OPTIONAL") {
                let inner = self.group()?;
                parts.push(Pattern::Optional(Box::new(inner)));
                let _ = self.punct(".");
                continue;
            }
            if self.keyword("FILTER") {
                self.expect_punct("(")?;
                let e = self.expr()?;
                self.expect_punct(")")?;
                parts.push(Pattern::Filter(e));
                let _ = self.punct(".");
                continue;
            }
            self.skip_ws();
            if self.rest().starts_with('{') {
                let left = self.group()?;
                if self.keyword("UNION") {
                    let mut node = left;
                    loop {
                        let right = self.group()?;
                        node = Pattern::Union(Box::new(node), Box::new(right));
                        if !self.keyword("UNION") {
                            break;
                        }
                    }
                    parts.push(node);
                } else {
                    parts.push(left);
                }
                let _ = self.punct(".");
                continue;
            }
            // A triples block (may contain property-path patterns).
            parts.extend(self.triples_block()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Pattern::Group(parts)
        })
    }

    /// Triple patterns up to (not consuming) `}` or the next keyword clause.
    /// Plain triples are collected into one BGP; property-path constraints
    /// become separate [`Pattern::Path`] parts.
    fn triples_block(&mut self) -> Result<Vec<Pattern>, ParseError> {
        let mut bgp = Vec::new();
        let mut paths = Vec::new();
        loop {
            let subject = self.term_or_var()?;
            self.pred_obj_list(&subject, &mut bgp, Some(&mut paths))?;
            let had_dot = self.punct(".");
            self.skip_ws();
            if self.rest().starts_with('}')
                || self.rest().starts_with('{')
                || self.peek_keyword("OPTIONAL")
                || self.peek_keyword("FILTER")
                || !had_dot
            {
                break;
            }
            if self.rest().is_empty() {
                break;
            }
        }
        let mut parts = Vec::new();
        if !bgp.is_empty() || paths.is_empty() {
            parts.push(Pattern::Bgp(bgp));
        }
        parts.extend(paths);
        Ok(parts)
    }

    /// Template triples inside `CONSTRUCT { ... }` — consumes the `}`.
    /// Property paths are not allowed in templates.
    fn triples_until_close(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.punct("}") {
                return Ok(out);
            }
            let subject = self.term_or_var()?;
            self.pred_obj_list(&subject, &mut out, None)?;
            let _ = self.punct(".");
        }
    }

    /// Parse `predicate object (, object)* (; ...)*`. When `paths` is
    /// `Some`, the predicate position accepts property-path syntax;
    /// non-trivial paths are emitted there instead of into `out`.
    fn pred_obj_list(
        &mut self,
        subject: &TermOrVar,
        out: &mut Vec<TriplePattern>,
        mut paths: Option<&mut Vec<Pattern>>,
    ) -> Result<(), ParseError> {
        use crate::ast::PropertyPath;
        loop {
            // Predicate: a variable, or a (possibly one-step) path.
            enum Pred {
                Plain(TermOrVar),
                Path(PropertyPath),
            }
            let predicate = if self.keyword("a") {
                Pred::Plain(TermOrVar::iri(rdf::TYPE))
            } else if let Some(v) = self.try_variable() {
                Pred::Plain(TermOrVar::Var(v))
            } else if paths.is_some() {
                match self.property_path()? {
                    PropertyPath::Iri(t) => Pred::Plain(TermOrVar::Term(t)),
                    complex => Pred::Path(complex),
                }
            } else {
                Pred::Plain(self.term_or_var()?)
            };
            loop {
                let object = self.term_or_var()?;
                match &predicate {
                    Pred::Plain(p) => {
                        out.push(TriplePattern::new(subject.clone(), p.clone(), object));
                    }
                    Pred::Path(path) => {
                        paths
                            .as_deref_mut()
                            .expect("complex paths only parsed when allowed")
                            .push(Pattern::Path {
                                subject: subject.clone(),
                                path: path.clone(),
                                object,
                            });
                    }
                }
                if !self.punct(",") {
                    break;
                }
            }
            if !self.punct(";") {
                return Ok(());
            }
            self.skip_ws();
            if self.rest().starts_with(['.', '}']) {
                return Ok(()); // dangling ';'
            }
        }
    }

    // --- property paths ----------------------------------------------------

    /// `path := seq ('|' seq)*`
    fn property_path(&mut self) -> Result<crate::ast::PropertyPath, ParseError> {
        use crate::ast::PropertyPath;
        let mut left = self.path_sequence()?;
        loop {
            self.skip_ws();
            // Don't confuse `|` with `||` (filters never reach here, but be
            // strict anyway).
            if self.rest().starts_with('|') && !self.rest().starts_with("||") {
                self.pos += 1;
                let right = self.path_sequence()?;
                left = PropertyPath::Alternative(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// `seq := elt ('/' elt)*`
    fn path_sequence(&mut self) -> Result<crate::ast::PropertyPath, ParseError> {
        use crate::ast::PropertyPath;
        let mut left = self.path_elt()?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('/') {
                self.pos += 1;
                let right = self.path_elt()?;
                left = PropertyPath::Sequence(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    /// `elt := '^'? primary ('+'|'*')?`
    fn path_elt(&mut self) -> Result<crate::ast::PropertyPath, ParseError> {
        use crate::ast::PropertyPath;
        self.skip_ws();
        let inverse = if self.rest().starts_with('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut p = self.path_primary()?;
        self.skip_ws();
        if self.rest().starts_with('+') {
            self.pos += 1;
            p = PropertyPath::OneOrMore(Box::new(p));
        } else if self.rest().starts_with('*') {
            self.pos += 1;
            p = PropertyPath::ZeroOrMore(Box::new(p));
        }
        if inverse {
            p = PropertyPath::Inverse(Box::new(p));
        }
        Ok(p)
    }

    /// `primary := 'a' | <iri> | prefixed | '(' path ')'`
    fn path_primary(&mut self) -> Result<crate::ast::PropertyPath, ParseError> {
        use crate::ast::PropertyPath;
        self.skip_ws();
        if self.rest().starts_with('(') {
            self.pos += 1;
            let inner = self.property_path()?;
            self.expect_punct(")")?;
            return Ok(inner);
        }
        if self.keyword("a") {
            return Ok(PropertyPath::Iri(Term::iri(rdf::TYPE)));
        }
        if self.rest().starts_with('<') {
            return Ok(PropertyPath::Iri(Term::iri(&self.iri_ref()?)));
        }
        // Prefixed name, stopping at path operators too.
        let end = self
            .rest()
            .find(|c: char| {
                c.is_whitespace()
                    || matches!(
                        c,
                        ';' | ',' | '.' | ')' | '}' | '{' | '(' | '/' | '|' | '+' | '*' | '^'
                    )
            })
            .unwrap_or(self.rest().len());
        let token = self.rest()[..end].trim_end_matches('.');
        if token.is_empty() || !token.contains(':') {
            return Err(self.err("expected a property path element"));
        }
        match self.prefixes.expand(token) {
            Some(iri) => {
                self.pos += token.len();
                Ok(PropertyPath::Iri(Term::iri(&iri)))
            }
            None => Err(self.err(format!("unknown prefix in {token:?}"))),
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        r.len() >= kw.len()
            && r[..kw.len()].eq_ignore_ascii_case(kw)
            && r[kw.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
    }

    fn try_variable(&mut self) -> Option<String> {
        self.skip_ws();
        let r = self.rest();
        if !r.starts_with('?') && !r.starts_with('$') {
            return None;
        }
        let body = &r[1..];
        let end = body
            .find(|c: char| !c.is_alphanumeric() && c != '_')
            .unwrap_or(body.len());
        if end == 0 {
            return None;
        }
        let name = body[..end].to_string();
        self.pos += 1 + end;
        Some(name)
    }

    fn iri_ref(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if !self.rest().starts_with('<') {
            return Err(self.err("expected '<'"));
        }
        let close = self
            .rest()
            .find('>')
            .ok_or_else(|| self.err("unterminated IRI"))?;
        let iri = self.rest()[1..close].to_string();
        self.pos += close + 1;
        Ok(iri)
    }

    fn term_or_var(&mut self) -> Result<TermOrVar, ParseError> {
        self.skip_ws();
        if let Some(v) = self.try_variable() {
            return Ok(TermOrVar::Var(v));
        }
        Ok(TermOrVar::Term(self.term()?))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        let r = self.rest();
        if r.starts_with('<') {
            return Ok(Term::iri(&self.iri_ref()?));
        }
        if r.starts_with('"') {
            return self.string_literal();
        }
        if r.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+') {
            return self.numeric_literal();
        }
        if self.keyword("true") {
            return Ok(Term::boolean(true));
        }
        if self.keyword("false") {
            return Ok(Term::boolean(false));
        }
        if r.starts_with("_:") {
            self.pos += 2;
            let end = self
                .rest()
                .find(|c: char| !c.is_alphanumeric() && c != '_')
                .unwrap_or(self.rest().len());
            let label = self.rest()[..end].to_string();
            self.pos += end;
            return Ok(Term::blank(&label));
        }
        // Prefixed name.
        let end = self
            .rest()
            .find(|c: char| {
                c.is_whitespace() || matches!(c, ';' | ',' | '.' | ')' | '}' | '{' | '(')
            })
            .unwrap_or(self.rest().len());
        let token = &self.rest()[..end];
        // Allow trailing '.' as statement end.
        let token = token.trim_end_matches('.');
        if token.contains(':') {
            if let Some(iri) = self.prefixes.expand(token) {
                self.pos += token.len();
                return Ok(Term::iri(&iri));
            }
            return Err(self.err(format!("unknown prefix in {token:?}")));
        }
        Err(self.err(format!("expected a term, found {token:?}")))
    }

    fn string_literal(&mut self) -> Result<Term, ParseError> {
        debug_assert!(self.rest().starts_with('"'));
        self.pos += 1;
        let mut s = String::new();
        loop {
            let c = self
                .rest()
                .chars()
                .next()
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += c.len_utf8();
            match c {
                '"' => break,
                '\\' => {
                    let e = self
                        .rest()
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += e.len_utf8();
                    s.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                }
                other => s.push(other),
            }
        }
        // Suffix.
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = if self.rest().starts_with('<') {
                self.iri_ref()?
            } else {
                match self.term()? {
                    Term::Iri(i) => i.to_string(),
                    _ => return Err(self.err("datatype must be an IRI")),
                }
            };
            return Ok(Term::typed(&s, &dt));
        }
        if self.rest().starts_with('@') {
            self.pos += 1;
            let end = self
                .rest()
                .find(|c: char| !c.is_ascii_alphanumeric() && c != '-')
                .unwrap_or(self.rest().len());
            let tag = self.rest()[..end].to_string();
            self.pos += end;
            return Ok(Term::Literal(Literal::lang_string(&s, &tag)));
        }
        Ok(Term::string(&s))
    }

    fn numeric_literal(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.rest().starts_with(['+', '-']) {
            self.pos += 1;
        }
        let mut saw_dot = false;
        while let Some(c) = self.rest().chars().next() {
            match c {
                '0'..='9' => self.pos += 1,
                '.' if !saw_dot
                    && self.rest()[1..]
                        .chars()
                        .next()
                        .is_some_and(|d| d.is_ascii_digit()) =>
                {
                    saw_dot = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let lex = &self.input[start..self.pos];
        if lex.is_empty() || lex == "-" || lex == "+" {
            return Err(self.err("bad number"));
        }
        Ok(if saw_dot {
            Term::typed(lex, xsd::DECIMAL)
        } else {
            Term::typed(lex, xsd::INTEGER)
        })
    }

    fn parse_f64(&mut self) -> Result<f64, ParseError> {
        let t = self.numeric_literal()?;
        t.as_literal()
            .and_then(|l| l.lexical().parse::<f64>().ok())
            .ok_or_else(|| self.err("expected numeric"))
    }

    // --- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.punct("||") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.rel_expr()?;
        while self.punct("&&") {
            let right = self.rel_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.unary_expr()?;
        // Two-char operators first.
        for (op, ctor) in [
            ("!=", Expr::Ne as fn(Box<Expr>, Box<Expr>) -> Expr),
            ("<=", Expr::Le),
            (">=", Expr::Ge),
            ("=", Expr::Eq),
            ("<", Expr::Lt),
            (">", Expr::Gt),
        ] {
            if self.punct(op) {
                let right = self.unary_expr()?;
                return Ok(ctor(Box::new(left), Box::new(right)));
            }
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.rest().starts_with('!') && !self.rest().starts_with("!=") {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.keyword("BOUND") {
            self.expect_punct("(")?;
            let v = self
                .try_variable()
                .ok_or_else(|| self.err("BOUND needs a variable"))?;
            self.expect_punct(")")?;
            return Ok(Expr::Bound(v));
        }
        if self.keyword("NOT") {
            if !self.keyword("EXISTS") {
                return Err(self.err("expected EXISTS after NOT"));
            }
            let inner = self.group()?;
            return Ok(Expr::NotExists(Box::new(inner)));
        }
        if self.keyword("EXISTS") {
            let inner = self.group()?;
            return Ok(Expr::Exists(Box::new(inner)));
        }
        if self.keyword("STR") {
            // STR(x) is the identity in this engine's comparison semantics.
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if self.keyword("CONTAINS") {
            self.expect_punct("(")?;
            let a = self.expr()?;
            self.expect_punct(",")?;
            let b = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Expr::Contains(Box::new(a), Box::new(b)));
        }
        if self.keyword("STRSTARTS") {
            self.expect_punct("(")?;
            let a = self.expr()?;
            self.expect_punct(",")?;
            let b = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Expr::StrStarts(Box::new(a), Box::new(b)));
        }
        // Spatial builtins (accept `grdf:` prefix form).
        for (name, which) in [
            ("grdf:intersectsBox", 0u8),
            ("grdf:within", 1),
            ("grdf:distance", 2),
        ] {
            self.skip_ws();
            if self.rest().starts_with(name) {
                self.pos += name.len();
                self.expect_punct("(")?;
                match which {
                    0 => {
                        let f = self
                            .try_variable()
                            .ok_or_else(|| self.err("intersectsBox needs a variable"))?;
                        self.expect_punct(",")?;
                        let x0 = self.parse_f64()?;
                        self.expect_punct(",")?;
                        let y0 = self.parse_f64()?;
                        self.expect_punct(",")?;
                        let x1 = self.parse_f64()?;
                        self.expect_punct(",")?;
                        let y1 = self.parse_f64()?;
                        self.expect_punct(")")?;
                        return Ok(Expr::IntersectsBox {
                            feature: f,
                            x0,
                            y0,
                            x1,
                            y1,
                        });
                    }
                    1 => {
                        let inner = self
                            .try_variable()
                            .ok_or_else(|| self.err("within needs variables"))?;
                        self.expect_punct(",")?;
                        let outer = self
                            .try_variable()
                            .ok_or_else(|| self.err("within needs variables"))?;
                        self.expect_punct(")")?;
                        return Ok(Expr::Within { inner, outer });
                    }
                    _ => {
                        let a = self
                            .try_variable()
                            .ok_or_else(|| self.err("distance needs variables"))?;
                        self.expect_punct(",")?;
                        let b = self
                            .try_variable()
                            .ok_or_else(|| self.err("distance needs variables"))?;
                        self.expect_punct(")")?;
                        return Ok(Expr::Distance { a, b });
                    }
                }
            }
        }
        if let Some(v) = self.try_variable() {
            return Ok(Expr::Var(v));
        }
        Ok(Expr::Const(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_with_bgp() {
        let q = parse_query(
            "PREFIX app: <urn:app#>\nSELECT ?s ?n WHERE { ?s a app:ChemSite ; app:name ?n . }",
        )
        .unwrap();
        match &q.kind {
            QueryKind::Select { vars, distinct, .. } => {
                assert_eq!(vars, &["s", "n"]);
                assert!(!distinct);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.pattern {
            Pattern::Bgp(ts) => assert_eq!(ts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_star_distinct() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(
            matches!(q.kind, QueryKind::Select { ref vars, distinct: true, .. } if vars.is_empty())
        );
    }

    #[test]
    fn filter_expression() {
        let q = parse_query("SELECT ?s WHERE { ?s <urn:age> ?a . FILTER(?a >= 18 && ?a < 65) }")
            .unwrap();
        match q.pattern {
            Pattern::Group(parts) => {
                assert!(matches!(parts[1], Pattern::Filter(Expr::And(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn optional_and_union() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s a <urn:T> . OPTIONAL { ?s <urn:p> ?v } { ?s <urn:q> ?w } UNION { ?s <urn:r> ?w } }",
        )
        .unwrap();
        match q.pattern {
            Pattern::Group(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(parts[1], Pattern::Optional(_)));
                assert!(matches!(parts[2], Pattern::Union(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn modifiers_parse() {
        let q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?p LIMIT 10 OFFSET 5")
            .unwrap();
        assert_eq!(q.order.len(), 2);
        assert_eq!(q.order[0], Order::Desc("s".into()));
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 5);
    }

    #[test]
    fn ask_and_construct() {
        assert!(matches!(
            parse_query("ASK { <urn:s> <urn:p> <urn:o> }").unwrap().kind,
            QueryKind::Ask
        ));
        let q = parse_query("CONSTRUCT { ?s <urn:linked> ?o } WHERE { ?s <urn:p> ?o }").unwrap();
        match q.kind {
            QueryKind::Construct { template } => assert_eq!(template.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spatial_builtins_parse() {
        let q = parse_query(
            "SELECT ?f WHERE { ?f a <urn:T> . FILTER(grdf:intersectsBox(?f, 0, 0, 10, 10.5)) }",
        )
        .unwrap();
        let found = format!("{:?}", q.pattern);
        assert!(found.contains("IntersectsBox"), "{found}");

        let q2 = parse_query(
            "SELECT ?a WHERE { ?a a <urn:T> . ?b a <urn:T> . FILTER(grdf:distance(?a, ?b) < 100) }",
        )
        .unwrap();
        assert!(format!("{:?}", q2.pattern).contains("Distance"));

        let q3 = parse_query("SELECT ?a WHERE { FILTER(grdf:within(?a, ?b)) }").unwrap();
        assert!(format!("{:?}", q3.pattern).contains("Within"));
    }

    #[test]
    fn literals_in_patterns() {
        let q = parse_query(
            r#"SELECT ?s WHERE { ?s <urn:name> "Dallas" ; <urn:pop> 1300000 ; <urn:area> 882.9 . }"#,
        )
        .unwrap();
        match q.pattern {
            Pattern::Bgp(ts) => {
                assert_eq!(ts.len(), 3);
                assert!(matches!(&ts[0].object, TermOrVar::Term(Term::Literal(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_have_context() {
        let err = parse_query("SELECT WHERE { }").unwrap_err();
        assert!(err.to_string().contains("SELECT"), "{err}");
        assert!(parse_query("FROB { }").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s <urn:p> nope:x }").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query("# find things\nSELECT ?s WHERE { ?s ?p ?o } # done").unwrap();
        assert!(matches!(q.kind, QueryKind::Select { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("ASK { ?s ?p ?o } garbage").is_err());
    }
}
