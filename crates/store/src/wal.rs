//! The append-only, checksummed write-ahead log.
//!
//! ## Record framing
//!
//! ```text
//! [u32 LE payload_len][u32 LE crc32(payload)][payload bytes]
//! ```
//!
//! ## Corruption taxonomy (the load-bearing part)
//!
//! Replaying a segment classifies damage by *position*:
//!
//! * **Torn tail** — the file ends mid-record (fewer than 8 header bytes
//!   left, or the promised payload runs past EOF), or the final record's
//!   CRC fails and nothing after it parses. This is what a crash during an
//!   append leaves behind; the tail is truncated and recovery proceeds
//!   with the surviving prefix.
//! * **Interior corruption** — a record's CRC fails but at least one
//!   *later* offset parses as a valid record. Bytes were damaged at rest
//!   (bit rot, bad sector); replaying past the hole would serve a
//!   silently-holed graph, so replay fails closed with
//!   [`StoreError::CorruptInterior`].
//!
//! The resynchronization scan that distinguishes the two walks forward
//! byte-by-byte looking for any offset where `[len][crc][payload]` checks
//! out. That is O(n·m) worst case, but it only runs after a CRC failure —
//! the happy path is a single linear pass.

use std::sync::Arc;

use crate::backend::StorageBackend;
use crate::StoreError;
use grdf_rdf::codec::crc32;

/// Record header size: `u32` length + `u32` CRC.
pub const RECORD_HEADER: usize = 8;

/// Cap on a single record's payload; a length field above this is treated
/// as corruption, not an allocation request.
pub const MAX_RECORD: u32 = 1 << 30;

/// When to fsync the log after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush after every record — maximum durability, minimum throughput.
    Always,
    /// Flush after every `n` records (and rely on the OS in between).
    EveryN(u32),
    /// Never flush explicitly — the OS decides; a crash may lose the
    /// recently-appended suffix but never corrupts what was flushed.
    Never,
}

/// Frame `payload` into `[len][crc][payload]` bytes.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// An append handle over one WAL segment file.
#[derive(Debug)]
pub struct Wal {
    backend: Arc<dyn StorageBackend>,
    path: String,
    policy: FsyncPolicy,
    since_sync: u32,
    len: u64,
    records: u64,
}

impl Wal {
    /// Open `path` for appending (the segment need not exist yet).
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        path: impl Into<String>,
        policy: FsyncPolicy,
    ) -> Result<Wal, StoreError> {
        let path = path.into();
        let len = if backend.exists(&path) {
            backend.len(&path).map_err(StoreError::io(&path))?
        } else {
            0
        };
        Ok(Wal {
            backend,
            path,
            policy,
            since_sync: 0,
            len,
            records: 0,
        })
    }

    /// Current byte length of the segment.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.records
    }

    /// The segment file name.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Append one framed record, honoring the fsync policy. Any failure
    /// means the tail state of the file is unknown — the caller must stop
    /// using the log (fail closed) until recovery re-opens it.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        assert!(
            payload.len() as u64 <= u64::from(MAX_RECORD),
            "WAL record exceeds MAX_RECORD"
        );
        let frame = frame_record(payload);
        self.backend
            .append(&self.path, &frame)
            .map_err(StoreError::io(&self.path))?;
        self.len += frame.len() as u64;
        self.records += 1;
        grdf_obs::incr("store.wal.append");
        grdf_obs::add("store.wal.bytes", frame.len() as u64);
        let flush = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                self.since_sync >= n.max(1)
            }
            FsyncPolicy::Never => false,
        };
        if flush {
            self.since_sync = 0;
            self.backend
                .sync(&self.path)
                .map_err(StoreError::io(&self.path))?;
            grdf_obs::incr("store.wal.fsync");
        }
        Ok(())
    }
}

/// The status of one framed record slot found while walking a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordStatus {
    /// CRC checks out.
    Valid {
        /// Byte offset of the record header.
        offset: u64,
        /// Payload length.
        len: u32,
    },
    /// CRC mismatch.
    BadCrc {
        /// Byte offset of the record header.
        offset: u64,
    },
    /// The file ends inside this record (header or payload).
    Torn {
        /// Byte offset where the incomplete record starts.
        offset: u64,
    },
}

/// The outcome of replaying one segment.
#[derive(Debug)]
pub struct Replay {
    /// Payloads of the valid prefix, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (the truncation point).
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn/corrupt tail), zero when clean.
    pub tail_bytes: u64,
}

/// Walk `bytes` and report every record slot. Never fails: corruption
/// shows up as `BadCrc`/`Torn` entries.
pub fn walk(bytes: &[u8]) -> Vec<RecordStatus> {
    let mut out = Vec::new();
    let mut pos: usize = 0;
    while pos < bytes.len() {
        match parse_at(bytes, pos) {
            Parsed::Valid { len } => {
                out.push(RecordStatus::Valid {
                    offset: pos as u64,
                    len,
                });
                pos += RECORD_HEADER + len as usize;
            }
            Parsed::BadCrc { len } => {
                out.push(RecordStatus::BadCrc { offset: pos as u64 });
                pos += RECORD_HEADER + len as usize;
            }
            Parsed::Torn => {
                out.push(RecordStatus::Torn { offset: pos as u64 });
                break;
            }
        }
    }
    out
}

enum Parsed {
    Valid { len: u32 },
    BadCrc { len: u32 },
    Torn,
}

fn parse_at(bytes: &[u8], pos: usize) -> Parsed {
    let Some(header) = bytes.get(pos..pos + RECORD_HEADER) else {
        return Parsed::Torn;
    };
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_RECORD {
        // An absurd length is indistinguishable from garbage; treat the
        // slot as torn so the resync scan decides tail-vs-interior.
        return Parsed::Torn;
    }
    let start = pos + RECORD_HEADER;
    let Some(payload) = bytes.get(start..start + len as usize) else {
        return Parsed::Torn;
    };
    if crc32(payload) == crc {
        Parsed::Valid { len }
    } else {
        Parsed::BadCrc { len }
    }
}

/// True if any offset in `bytes[from..]` parses as a CRC-valid record —
/// the resynchronization scan that upgrades a bad tail to interior
/// corruption.
fn any_valid_record_after(bytes: &[u8], from: usize) -> bool {
    (from..bytes.len()).any(|pos| matches!(parse_at(bytes, pos), Parsed::Valid { .. }))
}

/// Replay the segment at `path`: collect the valid payload prefix,
/// classify any damage (see the module docs), and report the truncation
/// point. A missing segment replays as empty.
pub fn replay(backend: &dyn StorageBackend, path: &str) -> Result<Replay, StoreError> {
    if !backend.exists(path) {
        return Ok(Replay {
            payloads: Vec::new(),
            valid_len: 0,
            tail_bytes: 0,
        });
    }
    let bytes = backend.read(path).map_err(StoreError::io(path))?;
    let mut payloads = Vec::new();
    let mut pos: usize = 0;
    loop {
        if pos >= bytes.len() {
            // Clean end exactly at a record boundary.
            return Ok(Replay {
                payloads,
                valid_len: pos as u64,
                tail_bytes: 0,
            });
        }
        match parse_at(&bytes, pos) {
            Parsed::Valid { len } => {
                let start = pos + RECORD_HEADER;
                payloads.push(bytes[start..start + len as usize].to_vec());
                pos += RECORD_HEADER + len as usize;
            }
            Parsed::BadCrc { len } => {
                // Either damage at rest (interior) or a torn final write
                // whose garbage happens to include the old header. If
                // anything after this slot still parses, data beyond the
                // hole exists — fail closed.
                if any_valid_record_after(&bytes, pos + 1) {
                    return Err(StoreError::CorruptInterior {
                        path: path.to_string(),
                        offset: pos as u64,
                    });
                }
                let _ = len;
                return Ok(Replay {
                    payloads,
                    valid_len: pos as u64,
                    tail_bytes: (bytes.len() - pos) as u64,
                });
            }
            Parsed::Torn => {
                if any_valid_record_after(&bytes, pos + 1) {
                    return Err(StoreError::CorruptInterior {
                        path: path.to_string(),
                        offset: pos as u64,
                    });
                }
                return Ok(Replay {
                    payloads,
                    valid_len: pos as u64,
                    tail_bytes: (bytes.len() - pos) as u64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn seed_log(backend: &Arc<MemBackend>, path: &str, payloads: &[&[u8]]) {
        let mut wal = Wal::open(
            Arc::clone(backend) as Arc<dyn StorageBackend>,
            path,
            FsyncPolicy::Always,
        )
        .unwrap();
        for p in payloads {
            wal.append(p).unwrap();
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let b = Arc::new(MemBackend::new());
        seed_log(&b, "wal", &[b"one", b"two", b"three"]);
        let r = replay(&*b, "wal").unwrap();
        assert_eq!(
            r.payloads,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert_eq!(r.tail_bytes, 0);
        assert_eq!(r.valid_len, b.len("wal").unwrap());
    }

    #[test]
    fn missing_segment_replays_empty() {
        let b = MemBackend::new();
        let r = replay(&b, "absent").unwrap();
        assert!(r.payloads.is_empty());
        assert_eq!(r.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let b = Arc::new(MemBackend::new());
        seed_log(&b, "wal", &[b"alpha", b"beta"]);
        let full = b.read("wal").unwrap();
        let first_len = RECORD_HEADER as u64 + 5;
        for cut in 0..full.len() {
            let b2 = MemBackend::new();
            b2.write_all("wal", &full[..cut]).unwrap();
            let r = replay(&b2, "wal").unwrap();
            let expect_records = if (cut as u64) < first_len {
                0
            } else if (cut as u64) < full.len() as u64 {
                1
            } else {
                2
            };
            assert_eq!(r.payloads.len(), expect_records, "cut at {cut}");
            assert_eq!(r.valid_len + r.tail_bytes, cut as u64, "cut at {cut}");
        }
    }

    #[test]
    fn interior_bit_flip_fails_closed() {
        let b = Arc::new(MemBackend::new());
        seed_log(&b, "wal", &[b"alpha", b"beta", b"gamma"]);
        // Flip a payload bit of the *first* record: records 2..3 still
        // parse, so this must be interior corruption.
        b.flip_bit("wal", RECORD_HEADER, 0x01);
        match replay(&*b, "wal") {
            Err(StoreError::CorruptInterior { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected CorruptInterior, got {other:?}"),
        }
    }

    #[test]
    fn final_record_bit_flip_is_a_truncatable_tail() {
        let b = Arc::new(MemBackend::new());
        seed_log(&b, "wal", &[b"alpha", b"beta"]);
        let len = b.len("wal").unwrap();
        // Flip a bit in the last payload byte: nothing valid follows, so
        // the damaged record is dropped as a corrupt tail.
        b.flip_bit("wal", usize::try_from(len).unwrap() - 1, 0x80);
        let r = replay(&*b, "wal").unwrap();
        assert_eq!(r.payloads, vec![b"alpha".to_vec()]);
        assert!(r.tail_bytes > 0);
    }

    #[test]
    fn walk_reports_statuses() {
        let b = Arc::new(MemBackend::new());
        seed_log(&b, "wal", &[b"alpha", b"beta"]);
        b.flip_bit("wal", RECORD_HEADER, 0x01);
        let bytes = b.read("wal").unwrap();
        let statuses = walk(&bytes);
        assert_eq!(statuses.len(), 2);
        assert!(matches!(statuses[0], RecordStatus::BadCrc { offset: 0 }));
        assert!(matches!(statuses[1], RecordStatus::Valid { .. }));
    }

    #[test]
    fn every_n_policy_syncs_periodically() {
        let b = Arc::new(MemBackend::new());
        let mut wal = Wal::open(
            Arc::clone(&b) as Arc<dyn StorageBackend>,
            "wal",
            FsyncPolicy::EveryN(3),
        )
        .unwrap();
        for i in 0..7 {
            wal.append(format!("r{i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.appended(), 7);
        // Behavioral check is in the fault-injection suite; here we just
        // confirm appends under EveryN replay cleanly.
        assert_eq!(replay(&*b, "wal").unwrap().payloads.len(), 7);
    }
}
