//! # grdf-store — crash-safe durability for GRDF
//!
//! The paper's Fig. 3 centers on an *Onto repository* feeding G-SACS; this
//! crate makes that repository survive a crash. Three layers:
//!
//! * [`backend`] — an injectable [`StorageBackend`] (real files, in-memory,
//!   crash-at-byte-N, seeded fault injection) so every durability path is
//!   testable deterministically.
//! * [`wal`] — an append-only, CRC32-checksummed write-ahead log with
//!   torn-tail truncation and fail-closed interior-corruption detection.
//! * [`checkpoint`] — atomic, footer-checksummed snapshots of the base
//!   graph + policy set in the canonical `grdf_rdf::codec` encoding.
//!
//! [`DurableStore`] composes them: G-SACS appends every accepted update
//! batch to the WAL *before* mutating its in-memory state (the write-ahead
//! invariant), checkpoints rotate by WAL-size threshold, and
//! [`DurableStore::recover`] rebuilds the exact pre-crash base graph and
//! policy set from the newest valid checkpoint plus the surviving WAL
//! prefix — refusing to serve (never serving a silently-holed graph) when
//! corruption is interior rather than a torn tail.

pub mod backend;
pub mod checkpoint;
pub mod store;
pub mod wal;

pub use backend::{CrashBackend, FaultyBackend, FsBackend, MemBackend, StorageBackend};
pub use store::{
    bump_boot, read_boot, recover, verify, DurableStore, Recovered, StoreConfig, VerifyReport,
};
pub use wal::FsyncPolicy;

use std::fmt;
use std::io;

use grdf_rdf::codec::{self, CodecError};
use grdf_rdf::term::Triple;

/// A typed durability failure. Everything fails closed: no variant is
/// recoverable by ignoring it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed (message keeps the `io::Error` text; the
    /// variant stays `Clone`/`Eq` for test assertions).
    Io {
        /// Store-relative file name.
        path: String,
        /// Stringified `io::Error`.
        message: String,
    },
    /// A WAL record failed its CRC **and** later records still parse:
    /// damage is in the middle of the log, so replaying past it would
    /// serve a graph with a silent hole. The store refuses to recover.
    CorruptInterior {
        /// Segment file name.
        path: String,
        /// Byte offset of the damaged record.
        offset: u64,
    },
    /// A checkpoint file failed its footer CRC or structural decode.
    CorruptCheckpoint {
        /// Checkpoint file name.
        path: String,
        /// The underlying codec failure.
        source: CodecError,
    },
    /// A WAL record's payload decoded to garbage (valid CRC, bad content —
    /// e.g. a foreign file at the WAL path).
    Codec(CodecError),
    /// No valid checkpoint exists to recover from.
    NoCheckpoint,
    /// A WAL segment needed to bridge a checkpoint fallback is missing;
    /// recovering without it would silently lose the ops it held.
    MissingWal {
        /// The missing segment's sequence number.
        seq: u64,
    },
    /// A prior append failed, so the log tail state is unknown; the store
    /// rejects further writes until re-opened through recovery.
    Poisoned,
}

impl StoreError {
    /// Adapter for `io::Result` call sites: `.map_err(StoreError::io(path))`.
    pub fn io(path: &str) -> impl FnOnce(io::Error) -> StoreError + '_ {
        move |e| StoreError::Io {
            path: path.to_string(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "i/o failure on {path}: {message}"),
            StoreError::CorruptInterior { path, offset } => write!(
                f,
                "interior corruption in {path} at byte {offset}: refusing to serve a holed graph"
            ),
            StoreError::CorruptCheckpoint { path, source } => {
                write!(f, "corrupt checkpoint {path}: {source}")
            }
            StoreError::Codec(e) => write!(f, "undecodable record payload: {e}"),
            StoreError::NoCheckpoint => write!(f, "no valid checkpoint to recover from"),
            StoreError::MissingWal { seq } => {
                write!(
                    f,
                    "wal segment {seq} is missing; recovery would lose its ops"
                )
            }
            StoreError::Poisoned => {
                write!(
                    f,
                    "store poisoned by an earlier append failure; re-open to recover"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// Logged operations
// ---------------------------------------------------------------------------

/// One graph mutation as recorded in the WAL. `grdf-security` converts its
/// `UpdateOp` into this (the store crate sits *below* the security crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoggedOp {
    /// Insert a triple into the base graph.
    Insert(Triple),
    /// Remove a triple from the base graph.
    Delete(Triple),
}

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;

/// Encode an update batch (all ops of one accepted `UpdateRequest`) as one
/// WAL record payload, so a batch replays atomically or not at all.
pub fn encode_batch(ops: &[LoggedOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ops.len() * 32 + 4);
    codec::write_varint(ops.len() as u64, &mut out);
    for op in ops {
        match op {
            LoggedOp::Insert(t) => {
                out.push(OP_INSERT);
                codec::encode_triple(t, &mut out);
            }
            LoggedOp::Delete(t) => {
                out.push(OP_DELETE);
                codec::encode_triple(t, &mut out);
            }
        }
    }
    out
}

/// Decode one WAL record payload back to its batch.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<LoggedOp>, CodecError> {
    let mut pos = 0;
    let count = codec::read_varint(payload, &mut pos)?;
    let count = usize::try_from(count).map_err(|_| CodecError::Truncated)?;
    if count > payload.len() {
        return Err(CodecError::Truncated);
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let &tag = payload.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        let triple = codec::decode_triple(payload, &mut pos)?;
        ops.push(match tag {
            OP_INSERT => LoggedOp::Insert(triple),
            OP_DELETE => LoggedOp::Delete(triple),
            other => return Err(CodecError::BadTag(other)),
        });
    }
    if pos != payload.len() {
        return Err(CodecError::Truncated);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_rdf::term::Term;

    fn triple(n: u32) -> Triple {
        Triple::new(
            Term::iri(&format!("http://example.org/s{n}")),
            Term::iri("http://example.org/p"),
            Term::integer(i64::from(n)),
        )
    }

    #[test]
    fn batch_round_trips() {
        let ops = vec![
            LoggedOp::Insert(triple(1)),
            LoggedOp::Delete(triple(2)),
            LoggedOp::Insert(triple(3)),
        ];
        let payload = encode_batch(&ops);
        assert_eq!(decode_batch(&payload).unwrap(), ops);
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(&payload[..payload.len() - 1]).is_err());
        let mut bad = payload.clone();
        bad[1] = 0x7E; // unknown op tag
        assert!(decode_batch(&bad).is_err());
    }

    #[test]
    fn empty_batch_round_trips() {
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn store_error_displays_mention_the_failure_site() {
        let e = StoreError::CorruptInterior {
            path: "wal-0".into(),
            offset: 42,
        };
        assert!(e.to_string().contains("wal-0"));
        assert!(e.to_string().contains("42"));
        let io = StoreError::io("boot")(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("boot"));
    }
}
