//! [`DurableStore`] — the composed durability engine: WAL + checkpoints +
//! recovery + the boot counter and audit sink.
//!
//! ## On-disk layout (flat names under the store directory)
//!
//! ```text
//! ckpt-<seq>.grdfck   checkpoint: state through wal segment seq-1
//! wal-<seq>           ops applied after checkpoint seq
//! boot                8-byte LE monotonic boot counter (the run id)
//! audit.jsonl         append-only audit entry sink (JSON lines)
//! ```
//!
//! ## Rotation protocol (crash-safe by ordering)
//!
//! 1. write `ckpt-(N+1).tmp`, fsync, rename to `ckpt-(N+1).grdfck`, fsync;
//! 2. create empty `wal-(N+1)`;
//! 3. GC `ckpt-N` and `wal-N` (and any older leftovers).
//!
//! A crash between any two steps is recoverable: after (1) recovery finds
//! `ckpt-(N+1)` and replays nothing (no `wal-(N+1)` yet); before (1) it
//! finds `ckpt-N` + `wal-N` as before. A bit-rotted `ckpt-(N+1)` falls
//! back to `ckpt-N` *only if* `wal-N` still exists — otherwise recovery
//! fails closed with [`StoreError::MissingWal`] rather than silently
//! losing the ops `wal-N` held.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use grdf_rdf::graph::Graph;

use crate::backend::StorageBackend;
use crate::checkpoint;
use crate::wal::{self, FsyncPolicy, RecordStatus, Wal};
use crate::{decode_batch, encode_batch, LoggedOp, StoreError};

/// File name of WAL segment `seq`.
pub fn wal_name(seq: u64) -> String {
    format!("wal-{seq:016}")
}

/// Parse `wal-<seq>` back to its sequence number.
pub fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.parse().ok()
}

const BOOT_FILE: &str = "boot";
const BOOT_TMP: &str = "boot.tmp";
const AUDIT_FILE: &str = "audit.jsonl";

/// Read the persisted boot counter (0 when the store is fresh).
pub fn read_boot(backend: &dyn StorageBackend) -> Result<u64, StoreError> {
    if !backend.exists(BOOT_FILE) {
        return Ok(0);
    }
    let bytes = backend.read(BOOT_FILE).map_err(StoreError::io(BOOT_FILE))?;
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    Ok(u64::from_le_bytes(buf))
}

/// Increment and persist the boot counter (write-tmp + atomic rename),
/// returning the new value — the run id of this process lifetime.
pub fn bump_boot(backend: &dyn StorageBackend) -> Result<u64, StoreError> {
    let next = read_boot(backend)?.wrapping_add(1);
    backend
        .write_all(BOOT_TMP, &next.to_le_bytes())
        .map_err(StoreError::io(BOOT_TMP))?;
    backend.sync(BOOT_TMP).map_err(StoreError::io(BOOT_TMP))?;
    backend
        .rename(BOOT_TMP, BOOT_FILE)
        .map_err(StoreError::io(BOOT_TMP))?;
    backend.sync(BOOT_FILE).map_err(StoreError::io(BOOT_FILE))?;
    Ok(next)
}

/// Tuning knobs for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// When to fsync the WAL.
    pub fsync: FsyncPolicy,
    /// WAL byte length that triggers a checkpoint rotation.
    pub checkpoint_threshold: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::EveryN(32),
            checkpoint_threshold: 1 << 20,
        }
    }
}

/// What recovery reconstructed.
#[derive(Debug)]
pub struct Recovered {
    /// The base graph (pre-entailment) at the crash point.
    pub base: Graph,
    /// The policy set in its RDF encoding.
    pub policy_graph: Graph,
    /// Sequence of the checkpoint recovery started from.
    pub ckpt_seq: u64,
    /// Update batches replayed from the WAL suffix.
    pub replayed_batches: usize,
    /// Individual ops inside those batches.
    pub replayed_ops: usize,
    /// Bytes of torn/corrupt tail dropped from the final segment.
    pub truncated_bytes: u64,
    /// Checkpoint files that were present but failed verification and
    /// were skipped during fallback.
    pub skipped_checkpoints: usize,
}

struct Inner {
    /// Active segment sequence: `wal-<seq>` receives appends; `ckpt-<seq>`
    /// holds state through `wal-<seq-1>`.
    seq: u64,
    wal: Wal,
    poisoned: bool,
}

/// The durability engine G-SACS mounts when configured `Durability::Wal`.
pub struct DurableStore {
    backend: Arc<dyn StorageBackend>,
    config: StoreConfig,
    run_id: u64,
    inner: Mutex<Inner>,
    audit_lines: AtomicU64,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("run_id", &self.run_id)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Initialize a fresh store: checkpoint 0 of `base` + `policy_graph`,
    /// an empty `wal-0`, boot counter 1. Fails if a checkpoint already
    /// exists (use [`DurableStore::open`] to resume an existing store).
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        config: StoreConfig,
        base: &Graph,
        policy_graph: &Graph,
    ) -> Result<DurableStore, StoreError> {
        if !checkpoint::list_seqs(backend.as_ref())?.is_empty() {
            return Err(StoreError::Io {
                path: checkpoint::file_name(0),
                message: "store already initialized (open it instead)".to_string(),
            });
        }
        checkpoint::write(backend.as_ref(), 0, base, policy_graph)?;
        let wal_path = wal_name(0);
        backend
            .write_all(&wal_path, &[])
            .map_err(StoreError::io(&wal_path))?;
        backend.sync(&wal_path).map_err(StoreError::io(&wal_path))?;
        let run_id = bump_boot(backend.as_ref())?;
        let wal = Wal::open(Arc::clone(&backend), wal_path, config.fsync)?;
        Ok(DurableStore {
            backend,
            config,
            run_id,
            inner: Mutex::new(Inner {
                seq: 0,
                wal,
                poisoned: false,
            }),
            audit_lines: AtomicU64::new(0),
        })
    }

    /// Recover an existing store: newest valid checkpoint + WAL suffix
    /// replay, torn-tail truncation, boot counter bump. Returns the handle
    /// and what was reconstructed (the caller re-materializes entailments).
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        config: StoreConfig,
    ) -> Result<(DurableStore, Recovered), StoreError> {
        let recovered = recover(backend.as_ref())?;
        let final_seq = final_wal_seq(backend.as_ref(), recovered.ckpt_seq)?;
        let wal_path = wal_name(final_seq);
        // Drop the torn/corrupt tail so new appends extend the valid
        // prefix, and make sure the active segment exists.
        if backend.exists(&wal_path) {
            if recovered.truncated_bytes > 0 {
                let replay = wal::replay(backend.as_ref(), &wal_path)?;
                backend
                    .truncate(&wal_path, replay.valid_len)
                    .map_err(StoreError::io(&wal_path))?;
                backend.sync(&wal_path).map_err(StoreError::io(&wal_path))?;
            }
        } else {
            backend
                .write_all(&wal_path, &[])
                .map_err(StoreError::io(&wal_path))?;
        }
        // GC segments and checkpoints older than the recovery base; they
        // are unreachable now.
        gc_below(backend.as_ref(), recovered.ckpt_seq);
        let run_id = bump_boot(backend.as_ref())?;
        grdf_obs::incr("store.recover");
        grdf_obs::add("store.recover.replayed_ops", recovered.replayed_ops as u64);
        grdf_obs::add("store.recover.truncated_bytes", recovered.truncated_bytes);
        let wal = Wal::open(Arc::clone(&backend), wal_path, config.fsync)?;
        Ok((
            DurableStore {
                backend,
                config,
                run_id,
                inner: Mutex::new(Inner {
                    seq: final_seq,
                    wal,
                    poisoned: false,
                }),
                audit_lines: AtomicU64::new(0),
            },
            recovered,
        ))
    }

    /// The run id minted for this process lifetime (monotonic across
    /// restarts of the same store directory).
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// The active checkpoint/WAL sequence number.
    pub fn seq(&self) -> u64 {
        self.inner.lock().expect("store lock").seq
    }

    /// Current byte length of the active WAL segment.
    pub fn wal_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").wal.len()
    }

    /// Whether an earlier append failure has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().expect("store lock").poisoned
    }

    /// Append one accepted update batch to the WAL. **Call before mutating
    /// any in-memory state** — this is the write-ahead invariant. A failure
    /// poisons the store: the on-disk tail is unknown, so every later
    /// append is refused until the store is re-opened through recovery.
    pub fn append_batch(&self, ops: &[LoggedOp]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        let payload = encode_batch(ops);
        if let Err(e) = inner.wal.append(&payload) {
            inner.poisoned = true;
            grdf_obs::incr("store.wal.poisoned");
            return Err(e);
        }
        Ok(())
    }

    /// Whether the active WAL has crossed the checkpoint threshold.
    pub fn should_checkpoint(&self) -> bool {
        self.wal_bytes() >= self.config.checkpoint_threshold
    }

    /// Rotate: snapshot `base` + `policy_graph` as checkpoint `seq+1`,
    /// start `wal-(seq+1)`, GC the superseded segment pair. Returns the
    /// new sequence.
    pub fn checkpoint(&self, base: &Graph, policy_graph: &Graph) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.poisoned {
            return Err(StoreError::Poisoned);
        }
        let next = inner.seq + 1;
        checkpoint::write(self.backend.as_ref(), next, base, policy_graph)?;
        let wal_path = wal_name(next);
        self.backend
            .write_all(&wal_path, &[])
            .map_err(StoreError::io(&wal_path))?;
        self.backend
            .sync(&wal_path)
            .map_err(StoreError::io(&wal_path))?;
        inner.wal = Wal::open(Arc::clone(&self.backend), wal_path, self.config.fsync)?;
        inner.seq = next;
        drop(inner);
        gc_below(self.backend.as_ref(), next);
        Ok(next)
    }

    /// [`DurableStore::checkpoint`] if the threshold is crossed; `None`
    /// otherwise.
    pub fn maybe_checkpoint(
        &self,
        base: &Graph,
        policy_graph: &Graph,
    ) -> Result<Option<u64>, StoreError> {
        if self.should_checkpoint() {
            self.checkpoint(base, policy_graph).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Append one JSON line to the durable audit sink. Audit streaming is
    /// deliberately not fsynced per line (it rides the OS cache); a lost
    /// suffix loses observability, never graph data.
    pub fn append_audit_line(&self, line: &str) -> Result<(), StoreError> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.backend
            .append(AUDIT_FILE, &bytes)
            .map_err(StoreError::io(AUDIT_FILE))?;
        self.audit_lines.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Audit lines streamed through this handle.
    pub fn audit_lines(&self) -> u64 {
        self.audit_lines.load(Ordering::Relaxed)
    }

    /// The backend this store writes through.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }
}

/// The WAL segment appends should continue on after recovering from
/// checkpoint `ckpt_seq`: the newest existing segment at or above it, or
/// `ckpt_seq` itself when none exists yet (crash between rotation steps
/// 1 and 2).
fn final_wal_seq(backend: &dyn StorageBackend, ckpt_seq: u64) -> Result<u64, StoreError> {
    let max = backend
        .list()
        .map_err(StoreError::io("<dir>"))?
        .iter()
        .filter_map(|n| parse_wal_name(n))
        .filter(|&s| s >= ckpt_seq)
        .max();
    Ok(max.unwrap_or(ckpt_seq))
}

/// Delete checkpoints and WAL segments with sequence `< keep` plus any
/// stale `.tmp` staging files. Best-effort: GC failures only leak bytes.
fn gc_below(backend: &dyn StorageBackend, keep: u64) {
    let Ok(names) = backend.list() else { return };
    for name in names {
        let stale = checkpoint::parse_file_name(&name).is_some_and(|s| s < keep)
            || parse_wal_name(&name).is_some_and(|s| s < keep)
            || (name.starts_with("ckpt-") && name.ends_with(".tmp"));
        if stale && backend.delete(&name).is_ok() {
            grdf_obs::incr("store.gc.removed");
        }
    }
}

/// Read-only recovery: reconstruct the state a [`DurableStore::open`]
/// would resume from, without bumping the boot counter or truncating
/// anything. This is what `grdf-cli store recover` prints.
pub fn recover(backend: &dyn StorageBackend) -> Result<Recovered, StoreError> {
    let seqs = checkpoint::list_seqs(backend)?;
    if seqs.is_empty() {
        return Err(StoreError::NoCheckpoint);
    }
    let mut skipped = 0usize;
    let mut chosen = None;
    for &seq in &seqs {
        match checkpoint::load(backend, seq) {
            Ok(ck) => {
                chosen = Some(ck);
                break;
            }
            Err(StoreError::CorruptCheckpoint { .. }) => {
                skipped += 1;
                grdf_obs::incr("store.recover.ckpt_skipped");
            }
            Err(other) => return Err(other),
        }
    }
    let Some(ck) = chosen else {
        return Err(StoreError::NoCheckpoint);
    };

    // Fallback soundness: every WAL segment from the chosen checkpoint up
    // to the newest one must exist, or ops are irrecoverably gone.
    let wal_seqs: Vec<u64> = {
        let mut v: Vec<u64> = backend
            .list()
            .map_err(StoreError::io("<dir>"))?
            .iter()
            .filter_map(|n| parse_wal_name(n))
            .filter(|&s| s >= ck.seq)
            .collect();
        v.sort_unstable();
        v
    };
    if let (Some(&first), Some(&last)) = (wal_seqs.first(), wal_seqs.last()) {
        if first != ck.seq {
            return Err(StoreError::MissingWal { seq: ck.seq });
        }
        for (expect, &got) in (first..=last).zip(wal_seqs.iter()) {
            if expect != got {
                return Err(StoreError::MissingWal { seq: expect });
            }
        }
    }

    let mut base = ck.base;
    let policy_graph = ck.policy_graph;
    let mut replayed_batches = 0usize;
    let mut replayed_ops = 0usize;
    let mut truncated_bytes = 0u64;
    for (i, &seq) in wal_seqs.iter().enumerate() {
        let path = wal_name(seq);
        let replay = wal::replay(backend, &path)?;
        if replay.tail_bytes > 0 && i + 1 < wal_seqs.len() {
            // A rotated-away segment is complete by construction; a torn
            // tail here means interior damage of the overall log.
            return Err(StoreError::CorruptInterior {
                path,
                offset: replay.valid_len,
            });
        }
        truncated_bytes += replay.tail_bytes;
        for payload in &replay.payloads {
            let ops = decode_batch(payload)?;
            replayed_batches += 1;
            replayed_ops += ops.len();
            for op in ops {
                match op {
                    LoggedOp::Insert(t) => {
                        base.insert(t);
                    }
                    LoggedOp::Delete(t) => {
                        base.remove(&t);
                    }
                }
            }
        }
    }
    Ok(Recovered {
        base,
        policy_graph,
        ckpt_seq: ck.seq,
        replayed_batches,
        replayed_ops,
        truncated_bytes,
        skipped_checkpoints: skipped,
    })
}

// ---------------------------------------------------------------------------
// Verification (the CLI's `store verify`)
// ---------------------------------------------------------------------------

/// Status of one checkpoint file.
#[derive(Debug)]
pub struct CkptStatus {
    /// File name.
    pub name: String,
    /// Sequence parsed from the name.
    pub seq: u64,
    /// `None` when valid; the failure text otherwise.
    pub error: Option<String>,
    /// Base-graph triple count (valid checkpoints only).
    pub triples: usize,
}

/// Status of one WAL segment.
#[derive(Debug)]
pub struct WalStatus {
    /// File name.
    pub name: String,
    /// Sequence parsed from the name.
    pub seq: u64,
    /// CRC-valid records.
    pub valid_records: usize,
    /// Records whose CRC failed.
    pub bad_records: usize,
    /// Whether the segment ends mid-record.
    pub torn: bool,
    /// `clean` / `torn_tail` / `corrupt_interior`.
    pub classification: &'static str,
}

/// The full walk `grdf-cli store verify` reports.
#[derive(Debug)]
pub struct VerifyReport {
    /// Persisted boot counter.
    pub boot: u64,
    /// Every checkpoint file, newest first.
    pub checkpoints: Vec<CkptStatus>,
    /// Every WAL segment, ascending.
    pub wals: Vec<WalStatus>,
    /// Whether recovery would succeed from this directory.
    pub recoverable: bool,
    /// The recovery-blocking failure, when not recoverable.
    pub failure: Option<String>,
}

impl VerifyReport {
    /// Stable-key JSON for CI artifacts.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"boot\": {},\n", self.boot));
        out.push_str(&format!("  \"recoverable\": {},\n", self.recoverable));
        match &self.failure {
            Some(f) => out.push_str(&format!("  \"failure\": \"{}\",\n", escape(f))),
            None => out.push_str("  \"failure\": null,\n"),
        }
        out.push_str("  \"checkpoints\": [\n");
        for (i, c) in self.checkpoints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seq\": {}, \"valid\": {}, \"triples\": {}, \"error\": {}}}{}\n",
                escape(&c.name),
                c.seq,
                c.error.is_none(),
                c.triples,
                match &c.error {
                    Some(e) => format!("\"{}\"", escape(e)),
                    None => "null".to_string(),
                },
                if i + 1 < self.checkpoints.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"wal\": [\n");
        for (i, w) in self.wals.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seq\": {}, \"valid_records\": {}, \"bad_records\": {}, \"torn\": {}, \"classification\": \"{}\"}}{}\n",
                escape(&w.name),
                w.seq,
                w.valid_records,
                w.bad_records,
                w.torn,
                w.classification,
                if i + 1 < self.wals.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable rendering for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("boot counter : {}\n", self.boot));
        for c in &self.checkpoints {
            match &c.error {
                None => out.push_str(&format!(
                    "checkpoint   : {} seq={} OK ({} triples)\n",
                    c.name, c.seq, c.triples
                )),
                Some(e) => out.push_str(&format!(
                    "checkpoint   : {} seq={} CORRUPT: {e}\n",
                    c.name, c.seq
                )),
            }
        }
        for w in &self.wals {
            out.push_str(&format!(
                "wal          : {} seq={} {} valid / {} bad{} [{}]\n",
                w.name,
                w.seq,
                w.valid_records,
                w.bad_records,
                if w.torn { " / torn tail" } else { "" },
                w.classification
            ));
        }
        match &self.failure {
            None => out.push_str("verdict      : recoverable\n"),
            Some(f) => out.push_str(&format!("verdict      : NOT RECOVERABLE — {f}\n")),
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Walk every durable artifact in the directory and classify its health.
pub fn verify(backend: &dyn StorageBackend) -> Result<VerifyReport, StoreError> {
    let boot = read_boot(backend)?;
    let mut checkpoints = Vec::new();
    for seq in checkpoint::list_seqs(backend)? {
        match checkpoint::load(backend, seq) {
            Ok(ck) => checkpoints.push(CkptStatus {
                name: checkpoint::file_name(seq),
                seq,
                error: None,
                triples: ck.base.len(),
            }),
            Err(e) => checkpoints.push(CkptStatus {
                name: checkpoint::file_name(seq),
                seq,
                error: Some(e.to_string()),
                triples: 0,
            }),
        }
    }
    let mut wal_names: Vec<(u64, String)> = backend
        .list()
        .map_err(StoreError::io("<dir>"))?
        .into_iter()
        .filter_map(|n| parse_wal_name(&n).map(|s| (s, n)))
        .collect();
    wal_names.sort_unstable();
    let mut wals = Vec::new();
    for (seq, name) in wal_names {
        let bytes = backend.read(&name).map_err(StoreError::io(&name))?;
        let statuses = wal::walk(&bytes);
        let valid_records = statuses
            .iter()
            .filter(|s| matches!(s, RecordStatus::Valid { .. }))
            .count();
        let bad_records = statuses
            .iter()
            .filter(|s| matches!(s, RecordStatus::BadCrc { .. }))
            .count();
        let torn = matches!(statuses.last(), Some(RecordStatus::Torn { .. }));
        let last_valid = statuses
            .iter()
            .rposition(|s| matches!(s, RecordStatus::Valid { .. }));
        let first_damage = statuses
            .iter()
            .position(|s| !matches!(s, RecordStatus::Valid { .. }));
        let classification = match (first_damage, last_valid) {
            (None, _) => "clean",
            (Some(d), Some(v)) if v > d => "corrupt_interior",
            _ => "torn_tail",
        };
        wals.push(WalStatus {
            name,
            seq,
            valid_records,
            bad_records,
            torn,
            classification,
        });
    }
    let failure = match recover(backend) {
        Ok(_) => None,
        Err(e) => Some(e.to_string()),
    };
    Ok(VerifyReport {
        boot,
        checkpoints,
        recoverable: failure.is_none(),
        failure,
        wals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use grdf_rdf::term::{Term, Triple};

    fn triple(n: u32) -> Triple {
        Triple::new(
            Term::iri(&format!("http://example.org/s{n}")),
            Term::iri("http://example.org/p"),
            Term::integer(i64::from(n)),
        )
    }

    fn graph(upto: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..upto {
            g.insert(triple(i));
        }
        g
    }

    fn mk(backend: &Arc<MemBackend>, base: &Graph) -> DurableStore {
        DurableStore::create(
            Arc::clone(backend) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            base,
            &Graph::new(),
        )
        .unwrap()
    }

    #[test]
    fn create_open_round_trip_with_replay() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &graph(3));
        assert_eq!(store.run_id(), 1);
        store
            .append_batch(&[LoggedOp::Insert(triple(10)), LoggedOp::Delete(triple(0))])
            .unwrap();
        store.append_batch(&[LoggedOp::Insert(triple(11))]).unwrap();
        drop(store);

        let (store2, rec) = DurableStore::open(
            Arc::clone(&b) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
        )
        .unwrap();
        assert_eq!(store2.run_id(), 2, "boot counter is monotonic");
        assert_eq!(rec.replayed_batches, 2);
        assert_eq!(rec.replayed_ops, 3);
        let mut expect = graph(3);
        expect.insert(triple(10));
        expect.remove(&triple(0));
        expect.insert(triple(11));
        assert_eq!(rec.base, expect);
    }

    #[test]
    fn checkpoint_rotation_gcs_old_segments() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &graph(2));
        store.append_batch(&[LoggedOp::Insert(triple(7))]).unwrap();
        let mut base = graph(2);
        base.insert(triple(7));
        assert_eq!(store.checkpoint(&base, &Graph::new()).unwrap(), 1);
        assert_eq!(store.seq(), 1);
        // Old pair is gone; new pair exists.
        assert!(!b.exists(&checkpoint::file_name(0)));
        assert!(!b.exists(&wal_name(0)));
        assert!(b.exists(&checkpoint::file_name(1)));
        assert!(b.exists(&wal_name(1)));
        // Ops after the rotation land in the new segment and replay.
        store.append_batch(&[LoggedOp::Insert(triple(8))]).unwrap();
        let rec = recover(&*b).unwrap();
        assert_eq!(rec.ckpt_seq, 1);
        assert_eq!(rec.replayed_ops, 1);
        base.insert(triple(8));
        assert_eq!(rec.base, base);
    }

    #[test]
    fn threshold_triggers_maybe_checkpoint() {
        let b = Arc::new(MemBackend::new());
        let store = DurableStore::create(
            Arc::clone(&b) as Arc<dyn StorageBackend>,
            StoreConfig {
                fsync: FsyncPolicy::Never,
                checkpoint_threshold: 64,
            },
            &Graph::new(),
            &Graph::new(),
        )
        .unwrap();
        assert_eq!(
            store
                .maybe_checkpoint(&Graph::new(), &Graph::new())
                .unwrap(),
            None
        );
        let mut g = Graph::new();
        for i in 0..10 {
            store.append_batch(&[LoggedOp::Insert(triple(i))]).unwrap();
            g.insert(triple(i));
        }
        assert!(store.should_checkpoint());
        assert_eq!(store.maybe_checkpoint(&g, &Graph::new()).unwrap(), Some(1));
        assert!(!store.should_checkpoint());
        let rec = recover(&*b).unwrap();
        assert_eq!(rec.base, g);
        assert_eq!(rec.replayed_ops, 0);
    }

    #[test]
    fn append_failure_poisons_the_store() {
        let b = Arc::new(MemBackend::new());
        let crash = Arc::new(crate::backend::CrashBackend::new(MemBackend::new(), 10_000));
        drop(b);
        let store = DurableStore::create(
            Arc::clone(&crash) as Arc<dyn StorageBackend>,
            StoreConfig {
                fsync: FsyncPolicy::Never,
                checkpoint_threshold: u64::MAX,
            },
            &Graph::new(),
            &Graph::new(),
        )
        .unwrap();
        // Exhaust the budget so the next append tears.
        let big: Vec<LoggedOp> = (0..200).map(|i| LoggedOp::Insert(triple(i))).collect();
        let mut poisoned = false;
        for _ in 0..100 {
            if store.append_batch(&big).is_err() {
                poisoned = true;
                break;
            }
        }
        assert!(poisoned, "crash budget should have fired");
        assert!(store.is_poisoned());
        assert!(matches!(
            store.append_batch(&[LoggedOp::Insert(triple(1))]),
            Err(StoreError::Poisoned)
        ));
        // The torn disk image still recovers to a valid prefix.
        let rec = recover(crash.inner()).unwrap();
        assert!(rec.replayed_batches < 100);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_when_wal_survives() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &graph(2));
        store.append_batch(&[LoggedOp::Insert(triple(5))]).unwrap();
        let mut base = graph(2);
        base.insert(triple(5));
        store.checkpoint(&base, &Graph::new()).unwrap();
        // Resurrect the GC'd predecessor pair to model "GC hadn't run yet",
        // then rot the new checkpoint.
        checkpoint::write(&*b, 0, &graph(2), &Graph::new()).unwrap();
        b.write_all(&wal_name(0), &[]).unwrap();
        {
            let mut w = Wal::open(
                Arc::clone(&b) as Arc<dyn StorageBackend>,
                wal_name(0),
                FsyncPolicy::Never,
            )
            .unwrap();
            w.append(&encode_batch(&[LoggedOp::Insert(triple(5))]))
                .unwrap();
        }
        b.flip_bit(&checkpoint::file_name(1), 20, 0x08);
        let rec = recover(&*b).unwrap();
        assert_eq!(rec.ckpt_seq, 0);
        assert_eq!(rec.skipped_checkpoints, 1);
        assert_eq!(rec.base, base, "fallback replays wal-0 to the same state");
    }

    #[test]
    fn corrupt_checkpoint_with_gcd_wal_fails_closed() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &graph(2));
        store.append_batch(&[LoggedOp::Insert(triple(5))]).unwrap();
        let mut base = graph(2);
        base.insert(triple(5));
        store.checkpoint(&base, &Graph::new()).unwrap();
        // GC already removed wal-0; resurrect only the old checkpoint.
        checkpoint::write(&*b, 0, &graph(2), &Graph::new()).unwrap();
        b.flip_bit(&checkpoint::file_name(1), 20, 0x08);
        match recover(&*b) {
            Err(StoreError::MissingWal { seq: 0 }) => {}
            other => panic!("expected MissingWal, got {other:?}"),
        }
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let b = MemBackend::new();
        assert!(matches!(recover(&b), Err(StoreError::NoCheckpoint)));
    }

    #[test]
    fn create_refuses_an_initialized_dir() {
        let b = Arc::new(MemBackend::new());
        let _ = mk(&b, &Graph::new());
        assert!(DurableStore::create(
            Arc::clone(&b) as Arc<dyn StorageBackend>,
            StoreConfig::default(),
            &Graph::new(),
            &Graph::new(),
        )
        .is_err());
    }

    #[test]
    fn audit_lines_append_and_survive() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &Graph::new());
        store.append_audit_line("{\"a\":1}").unwrap();
        store.append_audit_line("{\"a\":2}").unwrap();
        assert_eq!(store.audit_lines(), 2);
        let sink = b.read("audit.jsonl").unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), "{\"a\":1}\n{\"a\":2}\n");
    }

    #[test]
    fn verify_reports_and_classifies() {
        let b = Arc::new(MemBackend::new());
        let store = mk(&b, &graph(4));
        store.append_batch(&[LoggedOp::Insert(triple(9))]).unwrap();
        let report = verify(&*b).unwrap();
        assert!(report.recoverable);
        assert_eq!(report.boot, 1);
        assert_eq!(report.checkpoints.len(), 1);
        assert_eq!(report.wals.len(), 1);
        assert_eq!(report.wals[0].valid_records, 1);
        assert_eq!(report.wals[0].classification, "clean");
        assert!(report.to_json().contains("\"recoverable\": true"));

        // Torn tail: still recoverable, classified as such.
        b.append(&wal_name(0), &[1, 2, 3]).unwrap();
        let report = verify(&*b).unwrap();
        assert!(report.recoverable);
        assert_eq!(report.wals[0].classification, "torn_tail");

        // Interior damage: not recoverable.
        let store2 = {
            let (s, _) = DurableStore::open(
                Arc::clone(&b) as Arc<dyn StorageBackend>,
                StoreConfig::default(),
            )
            .unwrap();
            s
        };
        store2
            .append_batch(&[LoggedOp::Insert(triple(10))])
            .unwrap();
        store2
            .append_batch(&[LoggedOp::Insert(triple(11))])
            .unwrap();
        b.flip_bit(&wal_name(0), wal::RECORD_HEADER + 1, 0x01);
        let report = verify(&*b).unwrap();
        assert!(!report.recoverable);
        assert_eq!(report.wals[0].classification, "corrupt_interior");
        assert!(report.failure.unwrap().contains("interior"));
    }

    #[test]
    fn boot_counter_survives_and_increments() {
        let b = MemBackend::new();
        assert_eq!(read_boot(&b).unwrap(), 0);
        assert_eq!(bump_boot(&b).unwrap(), 1);
        assert_eq!(bump_boot(&b).unwrap(), 2);
        assert_eq!(read_boot(&b).unwrap(), 2);
    }
}
