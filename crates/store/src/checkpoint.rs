//! Checkpoint snapshots: the base graph + policy graph at a sequence point.
//!
//! ## File layout
//!
//! ```text
//! [magic "GRDC"] [version u8 = 1]
//! [varint seq]
//! [varint base_len]   [canonical graph block]   (grdf_rdf::codec)
//! [varint policy_len] [canonical graph block]
//! [u32 LE crc32 over everything above]          (the footer checksum)
//! ```
//!
//! Checkpoints are written to a `.tmp` name and atomically renamed into
//! place, so a crash mid-write leaves only a garbage `.tmp` that recovery
//! ignores by name. The footer CRC catches damage at rest; each embedded
//! graph block additionally carries its own CRC, so `decode` can tell
//! *which* section rotted.

use grdf_rdf::codec::{crc32, decode_graph, encode_graph, read_varint, write_varint, CodecError};
use grdf_rdf::graph::Graph;

use crate::backend::StorageBackend;
use crate::StoreError;

/// Leading magic of a checkpoint file.
pub const MAGIC: [u8; 4] = *b"GRDC";
/// Current checkpoint format version.
pub const VERSION: u8 = 1;

/// File name of checkpoint `seq`.
pub fn file_name(seq: u64) -> String {
    format!("ckpt-{seq:016}.grdfck")
}

/// Temporary name a checkpoint is staged under before the atomic rename.
pub fn tmp_name(seq: u64) -> String {
    format!("ckpt-{seq:016}.tmp")
}

/// Parse `ckpt-<seq>.grdfck` back to its sequence number.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(".grdfck")?;
    digits.parse().ok()
}

/// A decoded checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    /// The sequence number this snapshot closes over.
    pub seq: u64,
    /// The base graph (repository + instance data, pre-entailment).
    pub base: Graph,
    /// The policy set in its List-8 RDF encoding.
    pub policy_graph: Graph,
}

/// Serialize a checkpoint to bytes.
pub fn encode(seq: u64, base: &Graph, policy_graph: &Graph) -> Vec<u8> {
    let base_block = encode_graph(base);
    let policy_block = encode_graph(policy_graph);
    let mut out = Vec::with_capacity(base_block.len() + policy_block.len() + 64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_varint(seq, &mut out);
    write_varint(base_block.len() as u64, &mut out);
    out.extend_from_slice(&base_block);
    write_varint(policy_block.len() as u64, &mut out);
    out.extend_from_slice(&policy_block);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and fully verify a checkpoint file's bytes.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
    if bytes.len() < MAGIC.len() + 1 + 4 {
        return Err(CodecError::Truncated);
    }
    let (payload, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    let found = crc32(payload);
    if expected != found {
        return Err(CodecError::Checksum { expected, found });
    }
    if payload[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = payload[MAGIC.len()];
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let mut pos = MAGIC.len() + 1;
    let seq = read_varint(payload, &mut pos)?;
    let base = read_block(payload, &mut pos)?;
    let policy_graph = read_block(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(CodecError::Truncated);
    }
    Ok(Checkpoint {
        seq,
        base,
        policy_graph,
    })
}

fn read_block(payload: &[u8], pos: &mut usize) -> Result<Graph, CodecError> {
    let len = read_varint(payload, pos)?;
    let len = usize::try_from(len).map_err(|_| CodecError::Truncated)?;
    let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
    let block = payload.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    decode_graph(block)
}

/// Write checkpoint `seq` atomically: stage to the `.tmp` name, fsync,
/// rename into place, then fsync again so the rename itself is durable.
pub fn write(
    backend: &dyn StorageBackend,
    seq: u64,
    base: &Graph,
    policy_graph: &Graph,
) -> Result<String, StoreError> {
    let bytes = encode(seq, base, policy_graph);
    let tmp = tmp_name(seq);
    let final_name = file_name(seq);
    backend
        .write_all(&tmp, &bytes)
        .map_err(StoreError::io(&tmp))?;
    backend.sync(&tmp).map_err(StoreError::io(&tmp))?;
    backend
        .rename(&tmp, &final_name)
        .map_err(StoreError::io(&tmp))?;
    backend
        .sync(&final_name)
        .map_err(StoreError::io(&final_name))?;
    grdf_obs::incr("store.ckpt.write");
    grdf_obs::add("store.ckpt.bytes", bytes.len() as u64);
    Ok(final_name)
}

/// Load and verify checkpoint `seq`.
pub fn load(backend: &dyn StorageBackend, seq: u64) -> Result<Checkpoint, StoreError> {
    let name = file_name(seq);
    let bytes = backend.read(&name).map_err(StoreError::io(&name))?;
    decode(&bytes).map_err(|source| StoreError::CorruptCheckpoint { path: name, source })
}

/// All checkpoint sequence numbers present, descending (newest first).
/// `.tmp` leftovers are invisible here by construction of the name filter.
pub fn list_seqs(backend: &dyn StorageBackend) -> Result<Vec<u64>, StoreError> {
    let mut seqs: Vec<u64> = backend
        .list()
        .map_err(StoreError::io("<dir>"))?
        .iter()
        .filter_map(|n| parse_file_name(n))
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use grdf_rdf::term::Term;

    fn graph(n: u64) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add(
                Term::iri(&format!("http://example.org/s{i}")),
                Term::iri("http://example.org/p"),
                Term::integer(i64::try_from(i).unwrap()),
            );
        }
        g
    }

    #[test]
    fn encode_decode_round_trip() {
        let base = graph(5);
        let pol = graph(2);
        let bytes = encode(7, &base, &pol);
        let ck = decode(&bytes).unwrap();
        assert_eq!(ck.seq, 7);
        assert_eq!(ck.base, base);
        assert_eq!(ck.policy_graph, pol);
        // Canonical all the way down: re-encode is identical.
        assert_eq!(encode(ck.seq, &ck.base, &ck.policy_graph), bytes);
    }

    #[test]
    fn footer_crc_catches_flips_and_truncation() {
        let bytes = encode(1, &graph(3), &Graph::new());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at {i} accepted");
        }
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn write_is_atomic_and_listable() {
        let b = MemBackend::new();
        let name = write(&b, 3, &graph(4), &graph(1)).unwrap();
        assert_eq!(name, file_name(3));
        assert!(!b.exists(&tmp_name(3)), "tmp must be renamed away");
        write(&b, 5, &graph(6), &graph(1)).unwrap();
        // A stray tmp from a torn checkpoint write is ignored.
        b.write_all(&tmp_name(9), b"garbage").unwrap();
        assert_eq!(list_seqs(&b).unwrap(), vec![5, 3]);
        let ck = load(&b, 5).unwrap();
        assert_eq!(ck.base, graph(6));
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let b = MemBackend::new();
        write(&b, 1, &graph(2), &Graph::new()).unwrap();
        b.flip_bit(&file_name(1), 10, 0x04);
        match load(&b, 1) {
            Err(StoreError::CorruptCheckpoint { .. }) => {}
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(parse_file_name(&file_name(42)), Some(42));
        assert_eq!(parse_file_name("ckpt-0000000000000042.tmp"), None);
        assert_eq!(parse_file_name("wal-0000000000000001"), None);
    }
}
