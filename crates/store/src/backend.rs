//! The injectable storage layer under the WAL and checkpoint files.
//!
//! Everything the durable store does to "disk" goes through
//! [`StorageBackend`], a flat namespace of named byte files. Three
//! implementations:
//!
//! * [`FsBackend`] — real files under a root directory (production).
//! * [`MemBackend`] — a `Mutex<HashMap>` (fast tests, plus direct
//!   corruption handles: [`MemBackend::flip_bit`], [`MemBackend::truncate_raw`]).
//! * [`CrashBackend`] — wraps another backend with a **crash-at-byte-N**
//!   budget: once N bytes have been written, the in-flight write persists
//!   only its surviving prefix and every later operation fails. This models
//!   `kill -9` mid-write for the recovery property suite.
//! * [`FaultyBackend`] — seeded probabilistic short writes and fsync
//!   failures via [`grdf_runtime::SeededDecider`].
//!
//! Contract notes: paths are flat names relative to the store directory
//! (no separators); `append` may persist a *prefix* of the data before
//! failing (torn write) — callers must treat any append error as poisoning
//! the log; `rename` is atomic (all-or-nothing) on every backend.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use grdf_runtime::SeededDecider;

/// A flat, named-file storage abstraction. All methods are `&self`; every
/// backend is internally synchronized.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Read the whole file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Create-or-truncate `name` and write `data`.
    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Append `data` to `name` (creating it if absent). On error a prefix
    /// of `data` may have been persisted (torn write).
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Durably flush `name`.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Delete `name` (ok if absent).
    fn delete(&self, name: &str) -> io::Result<()>;

    /// All file names present, unsorted.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Current length of `name` in bytes.
    fn len(&self, name: &str) -> io::Result<u64>;

    /// Truncate `name` to `len` bytes.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool {
        self.len(name).is_ok()
    }
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// A heap-backed [`StorageBackend`] with direct corruption handles for
/// tests.
#[derive(Debug, Default)]
pub struct MemBackend {
    files: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// XOR `mask` into byte `offset` of `name` (test corruption handle).
    pub fn flip_bit(&self, name: &str, offset: usize, mask: u8) {
        let mut files = self.files.lock().expect("mem backend lock");
        if let Some(data) = files.get_mut(name) {
            if let Some(byte) = data.get_mut(offset) {
                *byte ^= mask;
            }
        }
    }

    /// Truncate `name` to `len` without going through the trait (test
    /// handle; does not error when absent).
    pub fn truncate_raw(&self, name: &str, len: usize) {
        let mut files = self.files.lock().expect("mem backend lock");
        if let Some(data) = files.get_mut(name) {
            data.truncate(len);
        }
    }

    /// A deep copy of the current file map — snapshot "the disk" at a
    /// crash point.
    pub fn clone_files(&self) -> HashMap<String, Vec<u8>> {
        self.files.lock().expect("mem backend lock").clone()
    }

    /// A backend primed with `files` (restore a crash-point snapshot).
    pub fn from_files(files: HashMap<String, Vec<u8>>) -> MemBackend {
        MemBackend {
            files: Mutex::new(files),
        }
    }
}

impl StorageBackend for MemBackend {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("mem backend lock")
            .get(name)
            .cloned()
            .ok_or_else(|| not_found(name))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem backend lock")
            .insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem backend lock")
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem backend lock");
        let data = files.remove(from).ok_or_else(|| not_found(from))?;
        files.insert(to.to_string(), data);
        Ok(())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.files.lock().expect("mem backend lock").remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .files
            .lock()
            .expect("mem backend lock")
            .keys()
            .cloned()
            .collect())
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.files
            .lock()
            .expect("mem backend lock")
            .get(name)
            .map(|d| d.len() as u64)
            .ok_or_else(|| not_found(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem backend lock");
        let data = files.get_mut(name).ok_or_else(|| not_found(name))?;
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < data.len() {
            data.truncate(len);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Real-filesystem backend
// ---------------------------------------------------------------------------

/// A [`StorageBackend`] over real files in one directory.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// A backend rooted at `root`, creating the directory if needed.
    pub fn open(root: impl AsRef<Path>) -> io::Result<FsBackend> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(FsBackend { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StorageBackend for FsBackend {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)
    }
}

// ---------------------------------------------------------------------------
// Crash-at-byte-N backend
// ---------------------------------------------------------------------------

fn crashed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "simulated crash")
}

/// Wraps a backend with a write budget of `crash_after` bytes: the write
/// that crosses the budget persists only the bytes that fit, then this and
/// every later operation fail. Reads keep working so a test can inspect
/// "the disk" — recovery must run against a *fresh* backend over the same
/// files, exactly as a restarted process would.
#[derive(Debug)]
pub struct CrashBackend<B> {
    inner: B,
    remaining: AtomicU64,
    dead: std::sync::atomic::AtomicBool,
}

impl<B: StorageBackend> CrashBackend<B> {
    /// Crash after `crash_after` more bytes are written through this
    /// wrapper.
    pub fn new(inner: B, crash_after: u64) -> CrashBackend<B> {
        CrashBackend {
            inner,
            remaining: AtomicU64::new(crash_after),
            dead: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Whether the crash has fired.
    pub fn crashed(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    fn check(&self) -> io::Result<()> {
        if self.dead.load(Ordering::Relaxed) {
            Err(crashed())
        } else {
            Ok(())
        }
    }

    /// Take up to `want` bytes from the budget; `None` means the full
    /// amount fits. `Some(k)` means only `k` bytes survive and the crash
    /// fires now.
    fn consume(&self, want: u64) -> Option<u64> {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            let (grant, dies) = if want <= cur {
                (want, false)
            } else {
                (cur, true)
            };
            match self.remaining.compare_exchange(
                cur,
                cur - grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if dies {
                        self.dead.store(true, Ordering::Relaxed);
                        return Some(grant);
                    }
                    return None;
                }
                Err(now) => cur = now,
            }
        }
    }
}

impl<B: StorageBackend> StorageBackend for CrashBackend<B> {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.check()?;
        match self.consume(data.len() as u64) {
            None => self.inner.write_all(name, data),
            Some(k) => {
                // Torn overwrite: the file ends up with only the prefix.
                let k = usize::try_from(k).unwrap_or(usize::MAX).min(data.len());
                let _ = self.inner.write_all(name, &data[..k]);
                Err(crashed())
            }
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.check()?;
        match self.consume(data.len() as u64) {
            None => self.inner.append(name, data),
            Some(k) => {
                let k = usize::try_from(k).unwrap_or(usize::MAX).min(data.len());
                let _ = self.inner.append(name, &data[..k]);
                Err(crashed())
            }
        }
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        self.check()?;
        self.inner.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        // Rename is atomic: it either happens before the crash or not at
        // all. No partial state.
        self.check()?;
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.check()?;
        self.inner.delete(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.inner.len(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.check()?;
        self.inner.truncate(name, len)
    }
}

// ---------------------------------------------------------------------------
// Seeded probabilistic faults
// ---------------------------------------------------------------------------

/// Seeded short writes and fsync failures layered over any backend.
///
/// * A *short write* persists a seeded prefix of the data and errors —
///   exactly the torn-write contract of [`StorageBackend::append`].
/// * An *fsync failure* leaves the data written but reports the flush
///   failed (the caller must fail closed: durability is unknown).
#[derive(Debug)]
pub struct FaultyBackend<B> {
    inner: B,
    decider: SeededDecider,
    short_write_rate: f64,
    fsync_fail_rate: f64,
    injected_short: AtomicU64,
    injected_fsync: AtomicU64,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wrap `inner` with seeded fault rates.
    pub fn new(
        inner: B,
        seed: u64,
        short_write_rate: f64,
        fsync_fail_rate: f64,
    ) -> FaultyBackend<B> {
        FaultyBackend {
            inner,
            decider: SeededDecider::new(seed),
            short_write_rate,
            fsync_fail_rate,
            injected_short: AtomicU64::new(0),
            injected_fsync: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// `(short_writes, fsync_failures)` injected so far.
    pub fn injected(&self) -> (u64, u64) {
        (
            self.injected_short.load(Ordering::Relaxed),
            self.injected_fsync.load(Ordering::Relaxed),
        )
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.inner.write_all(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let n = self.decider.next_event();
        if !data.is_empty() && self.decider.fires("append.short", n, self.short_write_rate) {
            self.injected_short.fetch_add(1, Ordering::Relaxed);
            let keep = self.decider.pick("append.len", n, data.len() as u64);
            let keep = usize::try_from(keep).unwrap_or(0);
            let _ = self.inner.append(name, &data[..keep]);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write ({keep}/{} bytes)", data.len()),
            ));
        }
        self.inner.append(name, data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        let n = self.decider.next_event();
        if self.decider.fires("fsync", n, self.fsync_fail_rate) {
            self.injected_fsync.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.inner.len(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_basic_ops() {
        let b = MemBackend::new();
        assert!(!b.exists("x"));
        b.append("x", b"hel").unwrap();
        b.append("x", b"lo").unwrap();
        assert_eq!(b.read("x").unwrap(), b"hello");
        assert_eq!(b.len("x").unwrap(), 5);
        b.truncate("x", 2).unwrap();
        assert_eq!(b.read("x").unwrap(), b"he");
        b.rename("x", "y").unwrap();
        assert!(!b.exists("x") && b.exists("y"));
        b.delete("y").unwrap();
        assert!(b.list().unwrap().is_empty());
        assert!(b.read("y").is_err());
    }

    #[test]
    fn crash_backend_tears_the_crossing_write() {
        let b = CrashBackend::new(MemBackend::new(), 5);
        b.append("f", b"abc").unwrap();
        // This write crosses the 5-byte budget: 2 bytes survive.
        assert!(b.append("f", b"defg").is_err());
        assert!(b.crashed());
        assert_eq!(b.inner().read("f").unwrap(), b"abcde");
        // Everything after the crash fails.
        assert!(b.append("f", b"x").is_err());
        assert!(b.sync("f").is_err());
        assert!(b.rename("f", "g").is_err());
        // ...but reads still reach the disk image.
        assert_eq!(b.read("f").unwrap(), b"abcde");
    }

    #[test]
    fn faulty_backend_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let b = FaultyBackend::new(MemBackend::new(), seed, 0.5, 0.5);
            let mut outcomes = Vec::new();
            for i in 0..20 {
                outcomes.push(b.append("f", format!("rec{i}").as_bytes()).is_ok());
                outcomes.push(b.sync("f").is_ok());
            }
            (outcomes, b.inner().read("f").unwrap_or_default())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds should differ");
        let b = FaultyBackend::new(MemBackend::new(), 7, 1.0, 0.0);
        assert!(b.append("f", b"abcdef").is_err());
        let survived = b.inner().read("f").unwrap_or_default();
        assert!(survived.len() < 6, "short write must persist a prefix");
        assert_eq!(b.injected().0, 1);
    }
}
