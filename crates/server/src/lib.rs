//! Multi-tenant network service layer over G-SACS.
//!
//! A zero-external-dependency HTTP/1.1 server built for overload
//! robustness rather than protocol breadth:
//!
//! * [`http`] — a defensive request/response codec with bounded buffers.
//! * [`quota`] — per-tenant token-bucket admission with jittered
//!   backpressure hints.
//! * [`server`] — the bounded worker pool: connection limits, socket
//!   timeouts, deadline propagation into the engine, graceful drain.
//! * [`transport`] — the [`Conn`]/[`Listener`] abstraction under the
//!   codec and worker pool: real `TcpStream`s in production, in-memory
//!   [`SimConn`]s (partitions, stalls, torn writes) under deterministic
//!   simulation.
//! * [`chaos`] — the seeded socket-fault client that *proves* the above:
//!   every injected fault must end in a clean teardown or a well-formed
//!   error response.
//!
//! ## Wire protocol (DESIGN.md §11)
//!
//! | Endpoint        | Method | Meaning                                   |
//! |-----------------|--------|-------------------------------------------|
//! | `/query`        | POST   | SPARQL-subset query body → result JSON    |
//! | `/update`       | POST   | `+`/`-` prefixed N-Triples lines          |
//! | `/lint`         | POST   | lint the served graph → report JSON       |
//! | `/trace`        | POST   | run query, return result + span tree      |
//! | `/health`       | GET    | `HealthReport` JSON (quota-exempt)        |
//! | `/metrics`      | GET    | metrics snapshot JSON (quota-exempt)      |
//!
//! Request headers: `X-Role` (required for query/update/trace/lint),
//! `X-Tenant` (quota bucket, default `public`), `Deadline-Ms` (request
//! budget, clamped to the server maximum), `X-Trace-Id` (16-hex trace id
//! to adopt). Every response echoes `X-Trace-Id`.

pub mod chaos;
pub mod http;
pub mod quota;
pub mod server;
pub mod transport;

pub use chaos::{build_request, run_case, well_formed_response, ChaosFault, ChaosOutcome};
pub use http::{Request, Response};
pub use quota::{QuotaConfig, TenantQuotas};
pub use server::{GrdfServer, ServerConfig, ServerCore};
pub use transport::{sim_conn, Conn, Listener, SimConn, SimLink};
