//! Per-tenant admission quotas with jittered backpressure hints.
//!
//! Each tenant gets its own [`TokenBucket`]; exceeding it sheds the
//! request with a `Retry-After` computed from the bucket's refill and a
//! deterministic jitter, so a herd of rejected clients retrying on the
//! hint does not reconverge on one instant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grdf_runtime::{splitmix64, Clock, TokenBucket};
use parking_lot::Mutex;

/// Quota applied to every tenant (buckets are per tenant, limits shared).
/// The default (`0.0` rate) disables quotas entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuotaConfig {
    /// Sustained admissions per second per tenant; `<= 0` disables quotas.
    pub rate_per_sec: f64,
    /// Burst capacity per tenant.
    pub burst: f64,
}

/// The admission verdict for a shed request: how long the client should
/// back off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Whole seconds for the `Retry-After` header (rounded up, min 1).
    pub retry_after_secs: u64,
    /// Millisecond-precision jittered hint for the `X-Backoff-Ms` header.
    pub backoff_ms: u64,
}

/// One token bucket per tenant, created on first sight.
pub struct TenantQuotas {
    clock: Arc<dyn Clock>,
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, Arc<TokenBucket>>>,
    /// Seed for deterministic backoff jitter.
    seed: u64,
    /// Monotone shed counter (drives the jitter sequence).
    sheds: AtomicU64,
}

impl TenantQuotas {
    /// Quotas on `clock` with deterministic jitter from `seed`.
    pub fn new(clock: Arc<dyn Clock>, config: QuotaConfig, seed: u64) -> TenantQuotas {
        TenantQuotas {
            clock,
            config,
            buckets: Mutex::new(HashMap::new()),
            seed,
            sheds: AtomicU64::new(0),
        }
    }

    /// Admit one request for `tenant`, or return the backoff hints.
    pub fn admit(&self, tenant: &str) -> Result<(), Shed> {
        if self.config.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let bucket = {
            let mut buckets = self.buckets.lock();
            Arc::clone(buckets.entry(tenant.to_string()).or_insert_with(|| {
                Arc::new(TokenBucket::new(
                    Arc::clone(&self.clock),
                    self.config.rate_per_sec,
                    self.config.burst,
                ))
            }))
        };
        match bucket.try_acquire() {
            Ok(()) => Ok(()),
            Err(wait) => {
                let n = self.sheds.fetch_add(1, Ordering::Relaxed);
                // Up to +50% deterministic jitter on the refill estimate,
                // spreading the retry herd without starving anyone.
                let unit = splitmix64(self.seed ^ n) as f64 / u64::MAX as f64;
                let backoff = wait.mul_f64(1.0 + 0.5 * unit).max(Duration::from_millis(1));
                Err(Shed {
                    retry_after_secs: u64::from(backoff.subsec_nanos() > 0)
                        .saturating_add(backoff.as_secs())
                        .max(1),
                    backoff_ms: (backoff.as_millis() as u64).max(1),
                })
            }
        }
    }

    /// Requests shed so far across all tenants.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Tenants seen so far.
    pub fn tenants(&self) -> usize {
        self.buckets.lock().len()
    }
}

impl std::fmt::Debug for TenantQuotas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantQuotas")
            .field("config", &self.config)
            .field("tenants", &self.tenants())
            .field("sheds", &self.sheds())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_runtime::ManualClock;

    fn quotas(rate: f64, burst: f64) -> (TenantQuotas, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let q = TenantQuotas::new(
            clock.clone(),
            QuotaConfig {
                rate_per_sec: rate,
                burst,
            },
            7,
        );
        (q, clock)
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let (q, _clock) = quotas(10.0, 2.0);
        assert!(q.admit("a").is_ok());
        assert!(q.admit("a").is_ok());
        let shed = q.admit("a").unwrap_err();
        assert!(shed.retry_after_secs >= 1);
        assert!(shed.backoff_ms >= 1);
        // Tenant b is untouched by a's exhaustion.
        assert!(q.admit("b").is_ok());
        assert_eq!(q.sheds(), 1);
        assert_eq!(q.tenants(), 2);
    }

    #[test]
    fn refill_readmits_on_the_shared_clock() {
        let (q, clock) = quotas(10.0, 1.0);
        assert!(q.admit("a").is_ok());
        assert!(q.admit("a").is_err());
        clock.advance(Duration::from_millis(100));
        assert!(q.admit("a").is_ok());
    }

    #[test]
    fn backoff_hints_are_jittered_but_bounded() {
        let (q, _clock) = quotas(1.0, 1.0);
        assert!(q.admit("a").is_ok());
        let mut hints = std::collections::BTreeSet::new();
        for _ in 0..16 {
            let shed = q.admit("a").unwrap_err();
            // Base wait ≈1s, jitter adds ≤50%.
            assert!(shed.backoff_ms >= 900, "hint too small: {shed:?}");
            assert!(shed.backoff_ms <= 1600, "hint too large: {shed:?}");
            hints.insert(shed.backoff_ms);
        }
        assert!(hints.len() > 4, "jitter must spread hints: {hints:?}");
    }

    #[test]
    fn zero_rate_disables_quotas() {
        let (q, _clock) = quotas(0.0, 0.0);
        for _ in 0..100 {
            assert!(q.admit("a").is_ok());
        }
        assert_eq!(q.sheds(), 0);
    }
}
