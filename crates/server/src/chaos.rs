//! Seeded socket-level fault injection — the client side of the server's
//! robustness proof.
//!
//! In the spirit of `grdf-store`'s crash-at-byte-N backend, each chaos
//! case mangles a real TCP conversation at the byte level: the request is
//! cut short, stalled mid-flight, prefixed with garbage, or abandoned
//! entirely. The decision for case `n` is a pure function of `(seed, n)`
//! via [`SeededDecider`], so any failing case replays from its seed.
//!
//! The invariant each case checks (and the property tests assert): the
//! server answers with a **well-formed** HTTP response or cleanly closes
//! the connection with **no bytes at all** — never a torn or half-written
//! response, and never a panic observable as a dropped listener.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use grdf_runtime::SeededDecider;

/// The socket-level fault a chaos case injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The request is sent whole — the control case.
    Clean,
    /// Only a prefix of the request is written, then the socket stalls
    /// (held open, nothing more sent) until the server times it out.
    StalledPrefix,
    /// Only a prefix is written, then the client disconnects.
    DisconnectMidRequest,
    /// Random garbage bytes are sent instead of a request.
    Garbage,
    /// The head declares a `Content-Length` but the body is cut short and
    /// the socket closed.
    TruncatedBody,
}

/// All faults in the rotation, in a stable order.
pub const ALL_FAULTS: [ChaosFault; 5] = [
    ChaosFault::Clean,
    ChaosFault::StalledPrefix,
    ChaosFault::DisconnectMidRequest,
    ChaosFault::Garbage,
    ChaosFault::TruncatedBody,
];

/// What one chaos case observed.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault injected.
    pub fault: ChaosFault,
    /// Every byte the server sent back before closing.
    pub response: Vec<u8>,
    /// Whether `response` is empty (clean teardown) or a complete,
    /// well-formed HTTP response. This is the property under test.
    pub ok: bool,
}

/// A well-formed wire request for `path` with the given headers/body —
/// the template the faults mangle.
pub fn build_request(path: &str, headers: &[(&str, &str)], body: &[u8]) -> Vec<u8> {
    let method = if body.is_empty() { "GET" } else { "POST" };
    let mut out = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    for (name, value) in headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(
        format!(
            "content-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// Pick the fault for case `n` (round-robin so every kind is exercised,
/// with the seed rotating the phase).
pub fn fault_for_case(decider: &SeededDecider, n: u64) -> ChaosFault {
    let phase = decider.pick("chaos.phase", 0, ALL_FAULTS.len() as u64);
    ALL_FAULTS[((n + phase) % ALL_FAULTS.len() as u64) as usize]
}

/// Run one chaos case against `addr`: inject the fault, then collect
/// whatever the server sends until it closes the connection (bounded by
/// `client_timeout`).
pub fn run_case(
    addr: SocketAddr,
    decider: &SeededDecider,
    n: u64,
    request: &[u8],
    client_timeout: Duration,
) -> io::Result<ChaosOutcome> {
    let fault = fault_for_case(decider, n);
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(client_timeout))?;
    stream.set_write_timeout(Some(client_timeout))?;
    stream.set_nodelay(true)?;
    match fault {
        ChaosFault::Clean => {
            stream.write_all(request)?;
        }
        ChaosFault::StalledPrefix | ChaosFault::DisconnectMidRequest => {
            // Cut anywhere in the request, including byte 0.
            let cut = decider.pick("chaos.cut", n, request.len() as u64) as usize;
            stream.write_all(&request[..cut])?;
            stream.flush()?;
            if fault == ChaosFault::DisconnectMidRequest {
                drop(stream);
                return Ok(ChaosOutcome {
                    fault,
                    response: Vec::new(),
                    ok: true,
                });
            }
            // Stall: hold the socket open, sending nothing. Fall through
            // to the read loop — the server must time us out.
        }
        ChaosFault::Garbage => {
            let len = 1 + decider.pick("chaos.garbage_len", n, 256) as usize;
            let garbage: Vec<u8> = (0..len)
                .map(|i| (decider.draw("chaos.garbage", n ^ (i as u64) << 32) & 0xFF) as u8)
                .collect();
            stream.write_all(&garbage)?;
        }
        ChaosFault::TruncatedBody => {
            // Send the full head plus only part of the declared body.
            let head_end = find_head_end(request).unwrap_or(request.len());
            let body_len = request.len() - head_end;
            let keep = decider.pick("chaos.body_keep", n, body_len.max(1) as u64) as usize;
            stream.write_all(&request[..head_end + keep])?;
            stream.flush()?;
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => response.extend_from_slice(&chunk[..read]),
            // Timeout or reset: the server tore the connection down (or
            // is still waiting on our stall) — stop collecting.
            Err(_) => break,
        }
    }
    let ok = response.is_empty() || well_formed_response(&response);
    Ok(ChaosOutcome {
        fault,
        response,
        ok,
    })
}

fn find_head_end(request: &[u8]) -> Option<usize> {
    request
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// Validate a raw response: status line `HTTP/1.1 NNN ...`, a complete
/// header block, and a `content-length` consistent with the body bytes
/// present. This is what "well-formed error response" means in the chaos
/// property: a client can always parse what the server sends.
pub fn well_formed_response(raw: &[u8]) -> bool {
    let Some(head_end) = find_head_end(raw) else {
        return false;
    };
    let Ok(head) = std::str::from_utf8(&raw[..head_end - 4]) else {
        return false;
    };
    let mut lines = head.split("\r\n");
    let Some(status_line) = lines.next() else {
        return false;
    };
    let mut parts = status_line.splitn(3, ' ');
    if parts.next() != Some("HTTP/1.1") {
        return false;
    }
    let Some(code) = parts.next().and_then(|c| c.parse::<u16>().ok()) else {
        return false;
    };
    if !(100..=599).contains(&code) {
        return false;
    }
    let mut content_length: Option<usize> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return false;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().ok();
            if content_length.is_none() {
                return false;
            }
        }
    }
    match content_length {
        Some(len) => raw.len() - head_end == len,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_what_the_server_writes() {
        let resp = crate::http::Response::error(429, "quota").header("retry-after", 1);
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        assert!(well_formed_response(&out));
    }

    #[test]
    fn validator_rejects_torn_and_junk_responses() {
        assert!(!well_formed_response(b""));
        assert!(!well_formed_response(b"HTTP/1.1 200 OK\r\n"));
        assert!(!well_formed_response(b"garbage\r\n\r\n"));
        // Truncated body: declared 10, carried 3.
        assert!(!well_formed_response(
            b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nabc"
        ));
        // No content-length at all: not self-delimiting.
        assert!(!well_formed_response(b"HTTP/1.1 200 OK\r\n\r\n"));
    }

    #[test]
    fn fault_rotation_covers_every_kind() {
        let d = SeededDecider::new(17);
        let kinds: std::collections::BTreeSet<String> = (0..5)
            .map(|n| format!("{:?}", fault_for_case(&d, n)))
            .collect();
        assert_eq!(kinds.len(), ALL_FAULTS.len());
    }

    #[test]
    fn request_builder_emits_parseable_requests() {
        let raw = build_request("/query", &[("x-role", "urn:r")], b"SELECT");
        assert!(raw.starts_with(b"POST /query HTTP/1.1\r\n"));
        let text = String::from_utf8(raw).unwrap();
        assert!(text.contains("content-length: 6\r\n"));
        assert!(text.ends_with("\r\n\r\nSELECT"));
    }
}
