//! The transport abstraction under the HTTP codec and worker pool.
//!
//! [`Conn`] and [`Listener`] are the only two surfaces the server needs
//! from its transport, so the same codec, routing, keep-alive loop, and
//! overload behavior run unchanged over:
//!
//! * real sockets — [`std::net::TcpStream`] / [`std::net::TcpListener`],
//!   the production path; or
//! * an in-memory [`SimConn`], the deterministic-simulation path: a
//!   lock-shared byte duplex whose fault surface (partitions, stalls,
//!   torn writes, reordered delivery) is driven by the simulated client
//!   through its [`SimLink`] handle, with idle waits expressed on the
//!   injected [`Clock`] instead of wall time.
//!
//! Fault semantics mirror the real kernel surface exactly as the codec
//! sees it, so `HttpConn`'s error classification needs no sim-specific
//! cases:
//!
//! | sim fault            | server-side observation                     |
//! |----------------------|---------------------------------------------|
//! | partition            | `ConnectionReset` on read, `BrokenPipe` on write |
//! | stall (no more data) | `TimedOut` after the configured read timeout, virtual clock advanced by the timeout |
//! | torn write           | a prefix is delivered, then `BrokenPipe`; the link records the tear so oracles can excuse the truncated delivery |
//! | reordered delivery   | the client enqueues pipelined requests in a permuted order ([`SimLink::send`] is just bytes) |

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use grdf_runtime::Clock;

/// One accepted connection, as the worker pool sees it: a byte stream
/// plus the per-connection transport options the server applies before
/// serving.
pub trait Conn: Read + Write + Send {
    /// Apply slow-peer protection: bound how long a read or write may
    /// wait before surfacing `TimedOut`/`WouldBlock`. Best-effort — a
    /// transport that cannot enforce a bound may ignore it.
    fn configure(&mut self, read_timeout: Duration, write_timeout: Duration);
}

impl Conn for TcpStream {
    fn configure(&mut self, read_timeout: Duration, write_timeout: Duration) {
        let _ = self.set_read_timeout(Some(read_timeout));
        let _ = self.set_write_timeout(Some(write_timeout));
        let _ = self.set_nodelay(true);
    }
}

/// A connection source the accept loop polls. Non-blocking by contract:
/// `Ok(None)` means nothing pending right now (the loop parks on the
/// injected clock between polls).
pub trait Listener: Send {
    /// Accept one pending connection, if any.
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Conn>>>;
}

/// The production listener. [`crate::GrdfServer::bind`] puts the socket
/// into non-blocking mode so `accept` maps cleanly onto `poll_accept`.
impl Listener for TcpListener {
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Conn>>> {
        match self.accept() {
            Ok((stream, _peer)) => Ok(Some(Box::new(stream))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Shared state of one simulated connection. The server end ([`SimConn`])
/// and the client end ([`SimLink`]) hold the same `Arc`.
#[derive(Debug, Default)]
struct LinkState {
    /// Bytes the client has sent that the server has not read yet.
    to_server: Vec<u8>,
    /// Bytes the server has written that the client has not drained yet.
    to_client: Vec<u8>,
    /// The client finished sending: once `to_server` drains, reads EOF.
    client_done: bool,
    /// Network partition: both directions fail from now on.
    partitioned: bool,
    /// Tear the server's next write after this many bytes: the prefix is
    /// delivered, the rest dropped, and the write errors `BrokenPipe`.
    tear_write_after: Option<usize>,
    /// A torn delivery actually happened (the no-torn-response oracle
    /// excuses responses the *network* truncated — the server still wrote
    /// a complete one).
    tore_delivery: bool,
    /// Read timeout the server configured; an idle read advances the
    /// virtual clock by this much before surfacing `TimedOut`.
    read_timeout: Duration,
}

/// The server end of a simulated connection. Implements [`Conn`], so the
/// unmodified worker/codec path serves it; all blocking is virtual.
pub struct SimConn {
    state: Arc<Mutex<LinkState>>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for SimConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConn").finish_non_exhaustive()
    }
}

/// The client end of a simulated connection: the simulated client writes
/// request bytes (possibly mangled), injects connection faults, and
/// drains whatever the server sent back.
#[derive(Debug, Clone)]
pub struct SimLink {
    state: Arc<Mutex<LinkState>>,
}

/// A fresh in-memory connection pair. Idle server reads consume
/// `read_timeout` of *virtual* time on `clock` — a stalled client costs
/// the simulation zero wall-clock.
pub fn sim_conn(clock: Arc<dyn Clock>) -> (SimConn, SimLink) {
    let state = Arc::new(Mutex::new(LinkState {
        read_timeout: Duration::from_millis(100),
        ..LinkState::default()
    }));
    (
        SimConn {
            state: Arc::clone(&state),
            clock,
        },
        SimLink { state },
    )
}

fn lock(state: &Arc<Mutex<LinkState>>) -> std::sync::MutexGuard<'_, LinkState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SimLink {
    /// Queue request bytes for the server. Reordered delivery is this
    /// call twice with the requests swapped — the link carries bytes, not
    /// messages, exactly like a socket.
    pub fn send(&self, bytes: &[u8]) {
        lock(&self.state).to_server.extend_from_slice(bytes);
    }

    /// Close the sending half: the server sees EOF once the queued bytes
    /// drain (a real client's `shutdown(Write)`).
    pub fn finish(&self) {
        lock(&self.state).client_done = true;
    }

    /// Drop the link both ways: every later read/write on either end
    /// fails like a reset connection.
    pub fn partition(&self) {
        lock(&self.state).partitioned = true;
    }

    /// Tear the server's next write: only `after` bytes get delivered,
    /// then the connection behaves partitioned.
    pub fn tear_next_write(&self, after: usize) {
        lock(&self.state).tear_write_after = Some(after);
    }

    /// Everything the server has sent so far (drained).
    pub fn take_received(&self) -> Vec<u8> {
        std::mem::take(&mut lock(&self.state).to_client)
    }

    /// Whether a torn delivery happened on this link (the injected fault
    /// fired; the truncated bytes the client holds are the network's
    /// fault, not the server's).
    pub fn tore_delivery(&self) -> bool {
        lock(&self.state).tore_delivery
    }
}

impl Read for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = {
            let mut s = lock(&self.state);
            if s.partitioned {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "partitioned",
                ));
            }
            if !s.to_server.is_empty() {
                let n = s.to_server.len().min(buf.len());
                buf[..n].copy_from_slice(&s.to_server[..n]);
                s.to_server.drain(..n);
                return Ok(n);
            }
            if s.client_done {
                return Ok(0);
            }
            // No data, client still "connected": a real socket would
            // block until the read timeout fires. Model exactly that —
            // burn the timeout on the virtual clock, then time out.
            s.read_timeout
        };
        self.clock.sleep(timeout);
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "simulated read timeout",
        ))
    }
}

impl Write for SimConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut s = lock(&self.state);
        if s.partitioned {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "partitioned"));
        }
        if let Some(after) = s.tear_write_after.take() {
            let keep = after.min(buf.len());
            s.to_client.extend_from_slice(&buf[..keep]);
            s.tore_delivery = true;
            s.partitioned = true;
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "torn write"));
        }
        s.to_client.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for SimConn {
    fn configure(&mut self, read_timeout: Duration, _write_timeout: Duration) {
        lock(&self.state).read_timeout = read_timeout;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grdf_runtime::ManualClock;

    fn pair() -> (SimConn, SimLink, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let (conn, link) = sim_conn(clock.clone());
        (conn, link, clock)
    }

    #[test]
    fn bytes_round_trip_and_eof_after_finish() {
        let (mut conn, link, _clock) = pair();
        link.send(b"hello");
        link.finish();
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
        assert_eq!(conn.read(&mut buf).unwrap(), 0, "EOF after drain");
        conn.write_all(b"resp").unwrap();
        assert_eq!(link.take_received(), b"resp");
    }

    #[test]
    fn idle_read_times_out_on_the_virtual_clock() {
        let (mut conn, link, clock) = pair();
        conn.configure(Duration::from_millis(150), Duration::from_millis(150));
        link.send(b"par");
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(&mut buf).unwrap(), 3);
        let err = conn.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(clock.now(), Duration::from_millis(150));
    }

    #[test]
    fn partition_resets_both_directions() {
        let (mut conn, link, _clock) = pair();
        link.send(b"x");
        link.partition();
        let mut buf = [0u8; 4];
        assert_eq!(
            conn.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            conn.write(b"y").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn torn_write_delivers_prefix_then_breaks() {
        let (mut conn, link, _clock) = pair();
        link.tear_next_write(4);
        assert_eq!(
            conn.write(b"HTTP/1.1 200 OK").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(link.take_received(), b"HTTP");
        assert!(link.tore_delivery());
        assert_eq!(
            conn.write(b"more").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }
}
