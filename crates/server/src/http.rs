//! A minimal, defensive HTTP/1.1 codec over any `Read + Write` stream.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the subset the GRDF wire protocol uses (request line, plain
//! headers, `Content-Length` bodies) and treats everything else as
//! malformed. The parser is sized against hostile input — bounded head
//! and body buffers, no chunked encoding, no header continuation — so a
//! garbage-spewing or slow-dripping client costs one bounded buffer and
//! one worker timeout, never unbounded memory.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query string).
    pub path: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// HTTP/1.1 keep-alive: persistent unless `Connection: close`.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Each variant maps to exactly one
/// response policy in the server (status code or silent teardown).
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → 400, close.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431, close.
    HeadTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`] → 413, close.
    BodyTooLarge,
    /// The socket idled past its read timeout. `mid_request` is true when
    /// partial bytes had arrived (→ 408); an idle keep-alive connection
    /// (no bytes yet) is torn down silently.
    TimedOut {
        /// Whether a partial request had started arriving.
        mid_request: bool,
    },
    /// The peer disconnected mid-request.
    Disconnected,
    /// Any other transport error.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::HeadTooLarge => f.write_str("request head too large"),
            HttpError::BodyTooLarge => f.write_str("request body too large"),
            HttpError::TimedOut { mid_request } => {
                write!(f, "read timed out (mid_request: {mid_request})")
            }
            HttpError::Disconnected => f.write_str("peer disconnected mid-request"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// One HTTP connection: a stream plus the carry-over buffer that makes
/// keep-alive pipelining safe (bytes read past one request's end seed the
/// next request's parse).
#[derive(Debug)]
pub struct HttpConn<S> {
    stream: S,
    carry: Vec<u8>,
}

impl<S: Read + Write> HttpConn<S> {
    /// Wrap a stream.
    pub fn new(stream: S) -> HttpConn<S> {
        HttpConn {
            stream,
            carry: Vec::new(),
        }
    }

    /// The underlying stream (e.g. to set socket timeouts).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Read one request. `Ok(None)` is the clean end of a keep-alive
    /// connection: EOF before any byte of a next request.
    pub fn read_request(&mut self) -> Result<Option<Request>, HttpError> {
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.carry) {
                break pos;
            }
            if self.carry.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.carry.is_empty() {
                        return Ok(None);
                    }
                    return Err(HttpError::Disconnected);
                }
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(classify_io(e, !self.carry.is_empty())),
            }
        };
        let head = self.carry[..head_end].to_vec();
        let body_start = head_end + 4;
        let head = String::from_utf8(head)
            .map_err(|_| HttpError::Malformed("non-UTF-8 request head".to_string()))?;
        let (method, path, headers) = parse_head(&head)?;

        if header_value(&headers, "transfer-encoding").is_some() {
            return Err(HttpError::Malformed(
                "transfer-encoding not supported".to_string(),
            ));
        }
        let content_length = match header_value(&headers, "content-length") {
            Some(v) => v
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length: {v}")))?,
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        // Pull the body: start from carried-over bytes, then the stream.
        let mut body: Vec<u8> = self.carry[body_start..].to_vec();
        self.carry.clear();
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let want = (content_length - body.len()).min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => return Err(HttpError::Disconnected),
                Ok(n) => body.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(classify_io(e, true)),
            }
        }
        // Bytes past the body belong to the next pipelined request.
        self.carry = body.split_off(content_length);
        Ok(Some(Request {
            method,
            path,
            headers,
            body,
        }))
    }

    /// Write a response (flushes).
    pub fn write_response(&mut self, response: &Response) -> io::Result<()> {
        response.write_to(&mut self.stream)
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn classify_io(e: io::Error, mid_request: bool) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::TimedOut { mid_request },
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => HttpError::Disconnected,
        _ => HttpError::Io(e),
    }
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

#[allow(clippy::type_complexity)]
fn parse_head(head: &str) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".to_string()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line: {request_line}")))?;
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request target: {request_line}")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if parts.next().is_some() || !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpError::Malformed(format!(
            "unsupported request line: {request_line}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line: {line}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name: {name}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// A response under construction. `Content-Length` is always emitted, so
/// every response is self-delimiting and clients never wait on EOF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Whether to advertise `Connection: close`.
    pub close: bool,
    /// Whether this response is a self-inflicted shed rejection (SLO
    /// degraded admission / tenant quota). Shed responses are excluded
    /// from the `server.errors` SLO numerator: counting them would let
    /// an error-ratio objective sustain its own burn through the very
    /// 503s meant to stop it.
    pub shed: bool,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            content_type: "text/plain",
            close: false,
            shed: false,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        let mut r = Response::new(status);
        r.body = body.into();
        r.content_type = "application/json";
        r
    }

    /// A plain-text response with an explicit content type (the
    /// Prometheus `/metrics` exposition and `/profile` collapsed stacks).
    pub fn text(status: u16, body: impl Into<Vec<u8>>, content_type: &'static str) -> Response {
        let mut r = Response::new(status);
        r.body = body.into();
        r.content_type = content_type;
        r
    }

    /// A JSON error envelope: `{"error": "<message>"}` — never partial
    /// data alongside an error.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\": \"{}\"}}", escape_json(message)),
        )
    }

    /// Append a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl std::fmt::Display) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Mark the connection for closure after this response.
    #[must_use]
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Mark as a self-inflicted shed rejection (see [`Response::shed`]).
    #[must_use]
    pub fn shedding(mut self) -> Response {
        self.shed = true;
        self
    }

    /// Serialize to the wire (flushes).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
                self.status,
                reason(self.status),
                self.content_type,
                self.body.len()
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if self.close {
            out.extend_from_slice(b"connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        w.write_all(&out)?;
        w.flush()
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Escape `s` for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory duplex stand-in: reads from `input`, writes to `out`.
    struct Chunked {
        input: Vec<Vec<u8>>,
        out: Vec<u8>,
    }

    impl Chunked {
        fn of(parts: &[&[u8]]) -> Chunked {
            Chunked {
                input: parts.iter().rev().map(|p| p.to_vec()).collect(),
                out: Vec::new(),
            }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.input.last_mut() {
                None => Ok(0),
                Some(part) => {
                    let n = part.len().min(buf.len());
                    buf[..n].copy_from_slice(&part[..n]);
                    part.drain(..n);
                    if part.is_empty() {
                        self.input.pop();
                    }
                    Ok(n)
                }
            }
        }
    }

    impl Write for Chunked {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.out.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_a_full_request_split_across_reads() {
        let mut conn = HttpConn::new(Chunked::of(&[
            b"POST /query HT",
            b"TP/1.1\r\nX-Role: urn:r\r\ncontent-length: 5\r\n\r\nhel",
            b"lo",
        ]));
        let req = conn.read_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("x-role"), Some("urn:r"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive());
        // Clean EOF ends the keep-alive connection.
        assert!(conn.read_request().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_carry_over() {
        let mut conn = HttpConn::new(Chunked::of(&[
            b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n",
        ]));
        let a = conn.read_request().unwrap().unwrap();
        assert_eq!(a.path, "/health");
        let b = conn.read_request().unwrap().unwrap();
        assert_eq!(b.path, "/metrics");
        assert!(!b.keep_alive());
    }

    #[test]
    fn eof_mid_head_is_a_disconnect() {
        let mut conn = HttpConn::new(Chunked::of(&[b"GET /hea"]));
        assert!(matches!(conn.read_request(), Err(HttpError::Disconnected)));
    }

    #[test]
    fn eof_mid_body_is_a_disconnect() {
        let mut conn = HttpConn::new(Chunked::of(&[
            b"POST /q HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
        ]));
        assert!(matches!(conn.read_request(), Err(HttpError::Disconnected)));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for garbage in [
            b"\x00\xff\x13\x37garbage\r\n\r\n".as_slice(),
            b"GET\r\n\r\n".as_slice(),
            b"GET /x HTTP/2.0\r\n\r\n".as_slice(),
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n".as_slice(),
            b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n".as_slice(),
        ] {
            let mut conn = HttpConn::new(Chunked::of(&[garbage]));
            assert!(
                matches!(conn.read_request(), Err(HttpError::Malformed(_))),
                "expected malformed for {garbage:?}"
            );
        }
    }

    #[test]
    fn oversized_declarations_are_rejected() {
        let huge = format!(
            "POST /q HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            2 * 1024 * 1024
        );
        let mut conn = HttpConn::new(Chunked::of(&[huge.as_bytes()]));
        assert!(matches!(conn.read_request(), Err(HttpError::BodyTooLarge)));

        let mut head = b"GET /q HTTP/1.1\r\n".to_vec();
        while head.len() <= MAX_HEAD_BYTES {
            head.extend_from_slice(b"x-padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let mut conn = HttpConn::new(Chunked::of(&[&head]));
        assert!(matches!(conn.read_request(), Err(HttpError::HeadTooLarge)));
    }

    #[test]
    fn chunked_encoding_is_refused() {
        let mut conn = HttpConn::new(Chunked::of(&[
            b"POST /q HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ]));
        assert!(matches!(conn.read_request(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn responses_are_self_delimiting() {
        let r = Response::json(200, "{\"ok\": true}")
            .header("x-trace-id", "00000000000000ab")
            .closing();
        let mut out = Vec::new();
        r.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 12\r\n"));
        assert!(text.contains("x-trace-id: 00000000000000ab\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));
    }

    #[test]
    fn error_bodies_are_json_envelopes() {
        let r = Response::error(403, "view \"x\" denied");
        assert_eq!(r.body, b"{\"error\": \"view \\\"x\\\" denied\"}");
    }
}
