//! The multi-tenant G-SACS server: a bounded worker pool serving
//! HTTP/1.1 connections with explicit overload behavior.
//!
//! Every unbounded resource has a bound and a fail-closed response:
//!
//! * **connections** — at most `max_connections` queued + active; excess
//!   accepts are answered `503 + Retry-After` and closed, never buffered.
//! * **tenant rate** — per-tenant token buckets; exhaustion is
//!   `429 + Retry-After` with a jittered `X-Backoff-Ms` hint.
//! * **request time** — a `Deadline-Ms` header becomes a
//!   [`Budget`] that propagates into view construction, query
//!   evaluation, and the reasoner fixpoint; expiry is `504`.
//! * **slow clients** — socket read/write timeouts bound how long a
//!   stalled peer can pin a worker.
//! * **shutdown** — graceful drain: accepted connections are served to
//!   completion; workers exit only once the queue is empty.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

use grdf_obs::{Obs, SloEngine, SloStatus, TenantDim, TraceId};
use grdf_query::eval::QueryResult;
use grdf_rdf::ntriples;
use grdf_runtime::{system_clock, Budget, Clock, SeedTree};
use grdf_security::gsacs::{ClientRequest, GSacs, UpdateOp, UpdateOutcome, UpdateRequest};
use grdf_security::resilience::GsacsError;
use parking_lot::RwLock;

use crate::http::{escape_json, HttpConn, HttpError, Request, Response};
use crate::quota::{QuotaConfig, TenantQuotas};
use crate::transport::{Conn, Listener};

/// Server tuning. The defaults suit tests and small deployments; the CLI
/// exposes the interesting ones as flags.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bound on queued + in-service connections; excess accepts get 503.
    pub max_connections: usize,
    /// Socket read timeout (slow-client protection).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Requests served per connection before it is closed.
    pub keep_alive_requests: usize,
    /// Budget applied when a request carries no `Deadline-Ms` header.
    pub default_deadline: Duration,
    /// Ceiling on client-requested deadlines.
    pub max_deadline: Duration,
    /// Per-tenant admission quota.
    pub quota: QuotaConfig,
    /// Time source for quotas and latency accounting.
    pub clock: Arc<dyn Clock>,
    /// Bound on distinct tenant labels attributed in the windowed
    /// metrics; raw ids beyond the cap collapse into `"other"`.
    pub tenant_cap: usize,
    /// How long a tenant slot must sit idle before its label can be
    /// recycled for a new tenant.
    pub tenant_min_idle: Duration,
    /// Hierarchical seed lane for the server's randomized hints (tenant
    /// quota backoff jitter). `None` (the default) derives the jitter
    /// seed from the bound port as before; a simulated world pins a lane
    /// so the whole run replays bit-identically from one master seed.
    pub seeds: Option<SeedTree>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_connections: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            keep_alive_requests: 128,
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(10),
            quota: QuotaConfig::default(),
            clock: system_clock(),
            tenant_cap: 32,
            tenant_min_idle: Duration::from_mins(1),
            seeds: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("workers", &self.workers)
            .field("max_connections", &self.max_connections)
            .field("read_timeout", &self.read_timeout)
            .field("keep_alive_requests", &self.keep_alive_requests)
            .field("default_deadline", &self.default_deadline)
            .field("max_deadline", &self.max_deadline)
            .field("quota", &self.quota)
            .finish_non_exhaustive()
    }
}

/// Under degraded admission (an SLO burning on both alert windows),
/// every Nth mutating/query request is shed pre-quota with `503`.
const SLO_SHED_EVERY: u64 = 4;

/// How stale the cached SLO evaluation may get before a request
/// re-evaluates it against the window store.
const SLO_REFRESH: Duration = Duration::from_secs(1);

/// Cached result of the most recent SLO evaluation (refreshed at most
/// once per [`SLO_REFRESH`], so the hot path never pays a ring scan).
struct SloCache {
    at: Option<Duration>,
    statuses: Vec<SloStatus>,
    burning: bool,
}

/// State shared by the accept loop and every worker.
struct Shared {
    svc: RwLock<GSacs>,
    obs: Obs,
    cfg: ServerConfig,
    quotas: TenantQuotas,
    /// Bounded-cardinality tenant label dimension for windowed metrics.
    tenants: TenantDim,
    /// Objectives evaluated for `/metrics` and degraded admission.
    slo: SloEngine,
    slo_cache: StdMutex<SloCache>,
    /// Monotone tick choosing which requests a burning SLO sheds.
    slo_shed_tick: AtomicU64,
    queue: StdMutex<VecDeque<Box<dyn Conn>>>,
    queue_signal: Condvar,
    shutdown: AtomicBool,
    /// Connections accepted into the queue (not shed).
    conns_accepted: AtomicU64,
    /// Connections fully served (matched against `conns_accepted` by the
    /// drain-completeness tests).
    conns_finished: AtomicU64,
    /// Connections currently being served.
    active: AtomicUsize,
    /// Requests parsed and routed.
    requests: AtomicU64,
}

impl Shared {
    fn counter(&self, name: &str) {
        self.obs.registry().counter(name).inc();
    }

    /// Current SLO statuses, re-evaluated at most once per
    /// [`SLO_REFRESH`] on the window store. Empty (and never burning)
    /// when no objectives or no window store are configured.
    fn slo_statuses(&self) -> (Vec<SloStatus>, bool) {
        let Some(windows) = self.obs.windows() else {
            return (Vec::new(), false);
        };
        if self.slo.objectives().is_empty() {
            return (Vec::new(), false);
        }
        let now = self.cfg.clock.now();
        let mut cache = self
            .slo_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stale = match cache.at {
            None => true,
            Some(at) => now.saturating_sub(at) >= SLO_REFRESH,
        };
        if stale {
            cache.statuses = self.slo.evaluate(windows);
            cache.burning = cache
                .statuses
                .iter()
                .any(|s| s.state == grdf_obs::SloState::Burning);
            cache.at = Some(now);
        }
        (cache.statuses.clone(), cache.burning)
    }
}

/// The transport-independent heart of the server: the shared service
/// state plus the connection-serving loop, with no threads and no
/// sockets of its own. [`GrdfServer`] wraps it in an accept thread and a
/// worker pool over real TCP; the deterministic simulation drives the
/// very same core inline over in-memory [`SimConn`](crate::transport::SimConn)s.
#[derive(Debug, Clone)]
pub struct ServerCore {
    shared: Arc<Shared>,
}

impl ServerCore {
    /// Assemble the core around `svc`. The quota jitter seed derives from
    /// `cfg.seeds` when set, else from `fallback_seed`.
    fn assemble(svc: GSacs, cfg: ServerConfig, fallback_seed: u64) -> ServerCore {
        let obs = svc.obs().clone();
        let slo = SloEngine::new(svc.slos().to_vec());
        let quota_seed = cfg
            .seeds
            .map_or(fallback_seed, |t| t.child("quota.jitter").seed());
        let quotas = TenantQuotas::new(Arc::clone(&cfg.clock), cfg.quota, quota_seed);
        let tenants = TenantDim::new(cfg.tenant_cap, cfg.tenant_min_idle);
        ServerCore {
            shared: Arc::new(Shared {
                svc: RwLock::new(svc),
                obs,
                cfg,
                quotas,
                tenants,
                slo,
                slo_cache: StdMutex::new(SloCache {
                    at: None,
                    statuses: Vec::new(),
                    burning: false,
                }),
                slo_shed_tick: AtomicU64::new(0),
                queue: StdMutex::new(VecDeque::new()),
                queue_signal: Condvar::new(),
                shutdown: AtomicBool::new(false),
                conns_accepted: AtomicU64::new(0),
                conns_finished: AtomicU64::new(0),
                active: AtomicUsize::new(0),
                requests: AtomicU64::new(0),
            }),
        }
    }

    /// A core with no listener attached (the simulation entry point).
    pub fn new(svc: GSacs, cfg: ServerConfig) -> ServerCore {
        ServerCore::assemble(svc, cfg, 0x6EDF_5EED)
    }

    /// Serve one connection to completion on the calling thread — the
    /// exact keep-alive/timeout/overload path the worker pool runs, over
    /// any [`Conn`]. Admission accounting matches the threaded path:
    /// the connection counts accepted, active while served, finished
    /// after.
    pub fn serve(&self, conn: Box<dyn Conn>) {
        let shared = &self.shared;
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        shared.active.fetch_add(1, Ordering::Relaxed);
        serve_conn(shared, conn);
        shared.active.fetch_sub(1, Ordering::Relaxed);
        shared.conns_finished.fetch_add(1, Ordering::Relaxed);
    }

    /// The wrapped service (simulation oracles read views, audit state,
    /// and the durable store through this).
    pub fn service(&self) -> &RwLock<GSacs> {
        &self.shared.svc
    }

    /// Requests parsed and routed so far.
    pub fn requests_total(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The observability bundle (shared with the wrapped GSacs).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }
}

/// A running server: an accept thread plus a bounded worker pool.
#[derive(Debug)]
pub struct GrdfServer {
    core: ServerCore,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("cfg", &self.cfg)
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl GrdfServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and start serving `svc`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: GSacs,
        cfg: ServerConfig,
    ) -> std::io::Result<GrdfServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let core = ServerCore::assemble(svc, cfg, addr.port().into());
        let shared = &core.shared;
        let accept = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("grdf-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name(format!("grdf-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(GrdfServer {
            core,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests parsed and routed so far.
    pub fn requests_total(&self) -> u64 {
        self.core.shared.requests.load(Ordering::Relaxed)
    }

    /// Connections accepted into the service queue.
    pub fn conns_accepted(&self) -> u64 {
        self.core.shared.conns_accepted.load(Ordering::Relaxed)
    }

    /// Connections fully served.
    pub fn conns_finished(&self) -> u64 {
        self.core.shared.conns_finished.load(Ordering::Relaxed)
    }

    /// The service's observability bundle (shared with the wrapped GSacs).
    pub fn obs(&self) -> &Obs {
        &self.core.shared.obs
    }

    /// The service's current health, as the `/health` endpoint reports it.
    pub fn health_json(&self) -> String {
        self.core.shared.svc.read().health().to_json()
    }

    /// Graceful drain: stop accepting, serve everything already accepted,
    /// then join all threads. Returns (connections accepted, connections
    /// finished) — equal when the drain lost nothing.
    pub fn shutdown(mut self) -> (u64, u64) {
        let shared = &self.core.shared;
        shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            // Wake the accept loop out of its poll park immediately.
            h.thread().unpark();
            let _ = h.join();
        }
        shared.queue_signal.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        (
            shared.conns_accepted.load(Ordering::Relaxed),
            shared.conns_finished.load(Ordering::Relaxed),
        )
    }
}

/// Poll interval between accept attempts when the listener is idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn accept_loop(listener: &dyn Listener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.poll_accept() {
            Ok(Some(conn)) => admit_conn(shared, conn),
            // Idle (or transiently erroring) listener: park on the
            // injected clock — a simulated run fast-forwards instead of
            // burning wall time, and shutdown unparks us immediately
            // instead of waiting out the interval.
            Ok(None) | Err(_) => shared.cfg.clock.park(ACCEPT_POLL),
        }
    }
}

/// Queue the connection, or shed it fail-closed with `503 + Retry-After`
/// when the connection bound is reached. Shedding writes one bounded
/// response and closes — overload never grows a buffer.
fn admit_conn(shared: &Shared, mut conn: Box<dyn Conn>) {
    let queued = shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len();
    let in_system = queued + shared.active.load(Ordering::Relaxed);
    if in_system >= shared.cfg.max_connections {
        shared.counter("server.shed");
        shared.counter("server.shed.conns");
        conn.configure(shared.cfg.read_timeout, shared.cfg.write_timeout);
        let resp = Response::error(503, "connection limit reached")
            .header("retry-after", 1)
            .closing();
        let _ = resp.write_to(&mut conn);
        return;
    }
    shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
    shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push_back(conn);
    shared.queue_signal.notify_one();
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream: Option<Box<dyn Conn>> = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                // Drain discipline: exit only once shutdown is flagged AND
                // the queue is empty — every accepted connection is served.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_signal
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        let Some(stream) = stream else { return };
        shared.active.fetch_add(1, Ordering::Relaxed);
        serve_conn(shared, stream);
        shared.active.fetch_sub(1, Ordering::Relaxed);
        shared.conns_finished.fetch_add(1, Ordering::Relaxed);
    }
}

/// Serve one connection's keep-alive request loop. Every exit path is a
/// clean teardown: either a well-formed (error) response was written, or
/// the stream is dropped without one (idle timeout, peer disconnect).
fn serve_conn(shared: &Shared, mut stream: Box<dyn Conn>) {
    stream.configure(shared.cfg.read_timeout, shared.cfg.write_timeout);
    let mut conn = HttpConn::new(stream);
    for served in 0.. {
        match conn.read_request() {
            Ok(None) => break,
            Ok(Some(req)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.counter("server.requests");
                let outcome = catch_unwind(AssertUnwindSafe(|| handle_request(shared, &req)));
                let mut resp = outcome.unwrap_or_else(|_| {
                    shared.counter("server.panics");
                    Response::error(500, "internal error")
                });
                // Close after this response when the client asked, the
                // per-connection request budget is spent, or a drain began.
                let close = !req.keep_alive()
                    || served + 1 >= shared.cfg.keep_alive_requests
                    || shared.shutdown.load(Ordering::SeqCst);
                if close {
                    resp = resp.closing();
                }
                let closing = resp.close;
                if conn.write_response(&resp).is_err() || closing {
                    break;
                }
            }
            Err(e) => {
                if let Some(resp) = error_response(&e) {
                    let _ = conn.write_response(&resp);
                }
                if matches!(e, HttpError::TimedOut { .. }) {
                    shared.counter("server.timeouts");
                }
                break;
            }
        }
    }
}

/// The response owed for an unreadable request, if any. `None` means
/// silent teardown (idle keep-alive timeout, disconnect): there is no
/// well-formed peer left to answer.
fn error_response(e: &HttpError) -> Option<Response> {
    let resp = match e {
        HttpError::Malformed(m) => Response::error(400, m),
        HttpError::HeadTooLarge => Response::error(431, "request head too large"),
        HttpError::BodyTooLarge => Response::error(413, "request body too large"),
        HttpError::TimedOut { mid_request: true } => Response::error(408, "timed out mid-request"),
        HttpError::TimedOut { mid_request: false } | HttpError::Disconnected | HttpError::Io(_) => {
            return None
        }
    };
    Some(resp.closing())
}

/// Route one parsed request. Always returns a well-formed response; error
/// bodies are `{"error": ...}` envelopes carrying no data.
fn handle_request(shared: &Shared, req: &Request) -> Response {
    let tenant = sanitize_tenant(req.header("x-tenant").unwrap_or("public"));
    // Bound the metric cardinality *before* the label reaches any store:
    // a raw tenant id resolves to one of at most `tenant_cap` live labels
    // (or `"other"`), so 10k distinct ids cannot grow the registry. A
    // recycled slot drops the evicted tenant's windowed series.
    let resolved = shared.tenants.resolve(&tenant, shared.cfg.clock.now());
    if let (Some(evicted), Some(ws)) = (&resolved.evicted, shared.obs.windows()) {
        ws.drop_tenant(evicted);
    }
    let wanted_id = req
        .header("x-trace-id")
        .and_then(TraceId::parse_hex)
        .unwrap_or(TraceId::NONE);
    let start = shared.cfg.clock.now();
    let (resp, trace_id) = {
        let scope = shared.obs.scope_with_id("server.request", wanted_id);
        grdf_obs::set_tenant(Arc::clone(&resolved.label));
        let id = scope.trace_id();
        let resp = route(shared, req, &tenant);
        // Latency is recorded inside the scope so the windowed store
        // sees the tenant series and the histogram can capture an
        // exemplar trace id. One shared histogram + a capped tenant
        // dimension replaces the unbounded per-tenant
        // `server.latency.<tenant>` registry entries.
        let elapsed = shared.cfg.clock.now().saturating_sub(start);
        grdf_obs::observe(
            "server.latency",
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        );
        grdf_obs::win_add("server.requests", 1);
        // Self-inflicted shed 503s stay out of the error numerator
        // (`server.shed` is their signal): counting them would hold the
        // fast error-ratio window above target forever once shedding
        // starts — degraded admission sheds 1-in-SLO_SHED_EVERY, an
        // error rate far beyond any sane objective.
        if resp.status >= 500 && !resp.shed {
            grdf_obs::add("server.errors", 1);
        }
        (resp, id)
    };
    // The scope has flushed: a /trace response can now see its own spans.
    let resp = if req.path == "/trace" && resp.status == 200 {
        attach_trace(shared, resp, trace_id)
    } else {
        resp
    };
    resp.header("x-trace-id", trace_id)
}

fn route(shared: &Shared, req: &Request, tenant: &str) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        // Health and metrics are probe endpoints: quota-exempt, read-only.
        ("GET", "/health") => Response::json(200, shared.svc.read().health().to_json()),
        // Prometheus text exposition (lifetime aggregates + windowed
        // per-tenant gauges + SLO burn rates, with exemplar trace ids).
        ("GET", "/metrics") => {
            let (slo, _) = shared.slo_statuses();
            let text = grdf_obs::expo::render(
                shared.obs.registry(),
                shared.obs.windows().map(std::convert::AsRef::as_ref),
                &slo,
            );
            Response::text(200, text, "text/plain; version=0.0.4")
        }
        // The pre-PR-7 JSON snapshot, kept for diff-based tooling.
        ("GET", "/metrics.json") => Response::json(200, shared.obs.registry().snapshot().to_json()),
        // Collapsed-stack wall-clock profile (404 when no profiler runs).
        ("GET", "/profile") => match shared.obs.profiler() {
            Some(p) => Response::text(200, p.collapsed(), "text/plain"),
            None => Response::error(404, "profiler is not running"),
        },
        ("POST", "/query" | "/update" | "/lint" | "/trace") => {
            // Degraded admission: when any objective burns on both alert
            // windows, shed a fixed fraction of work pre-quota so the
            // error budget stops draining (probe endpoints stay exempt).
            let (_, burning) = shared.slo_statuses();
            if burning
                && shared
                    .slo_shed_tick
                    .fetch_add(1, Ordering::Relaxed)
                    .is_multiple_of(SLO_SHED_EVERY)
            {
                shared.counter("server.shed");
                shared.counter("server.shed.slo");
                grdf_obs::win_add("server.shed", 1);
                return Response::error(503, "shedding load: SLO burn-rate alert active")
                    .header("retry-after", 1)
                    .shedding();
            }
            if let Err(shed) = shared.quotas.admit(tenant) {
                shared.counter("server.shed");
                shared.counter("server.shed.quota");
                grdf_obs::win_add("server.shed", 1);
                return Response::error(429, "tenant quota exceeded")
                    .header("retry-after", shed.retry_after_secs)
                    .header("x-backoff-ms", shed.backoff_ms)
                    .shedding();
            }
            let budget = match request_budget(shared, req) {
                Ok(b) => b,
                Err(resp) => return resp,
            };
            match req.path.as_str() {
                "/query" | "/trace" => handle_query(shared, req, budget),
                "/update" => handle_update(shared, req, budget),
                _ => Response::json(200, shared.svc.read().lint().to_json()),
            }
        }
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Parse `Deadline-Ms` into a budget, clamped to the server ceiling; the
/// default applies when absent. A malformed value is the client's error.
fn request_budget(shared: &Shared, req: &Request) -> Result<Budget, Response> {
    let deadline = match req.header("deadline-ms") {
        None => shared.cfg.default_deadline,
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) if ms > 0 => Duration::from_millis(ms).min(shared.cfg.max_deadline),
            _ => {
                return Err(Response::error(400, &format!("bad deadline-ms: {v}")));
            }
        },
    };
    Ok(Budget::with_time(deadline))
}

fn handle_query(shared: &Shared, req: &Request, budget: Budget) -> Response {
    let Some(role) = req.header("x-role") else {
        return Response::error(400, "missing x-role header");
    };
    let Ok(query) = String::from_utf8(req.body.clone()) else {
        return Response::error(400, "query body is not UTF-8");
    };
    let request = ClientRequest {
        role: role.to_string(),
        query,
    };
    let result = shared.svc.read().handle_with_budget(&request, budget);
    match result {
        Ok(r) => Response::json(200, render_query_result(&r)),
        Err(e) => gsacs_error_response(&e),
    }
}

fn handle_update(shared: &Shared, req: &Request, budget: Budget) -> Response {
    let Some(role) = req.header("x-role") else {
        return Response::error(400, "missing x-role header");
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "update body is not UTF-8");
    };
    let ops = match parse_update_ops(body) {
        Ok(ops) => ops,
        Err(m) => return Response::error(400, &m),
    };
    if ops.is_empty() {
        return Response::error(400, "empty update");
    }
    let request = UpdateRequest {
        role: role.to_string(),
        ops,
    };
    let outcome = shared
        .svc
        .write()
        .handle_update_with_budget(&request, budget);
    match outcome {
        UpdateOutcome::Applied(n) => Response::json(200, format!("{{\"applied\": {n}}}")),
        UpdateOutcome::Denied { op_index, reason } => Response::json(
            403,
            format!(
                "{{\"error\": \"{}\", \"op_index\": {op_index}}}",
                escape_json(&reason)
            ),
        ),
    }
}

/// Body grammar: one op per line, `+ <n-triple>` inserts, `- <n-triple>`
/// deletes; blank lines and `#` comments are skipped.
fn parse_update_ops(body: &str) -> Result<Vec<UpdateOp>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (insert, rest) = match line.split_at_checked(1) {
            Some(("+", rest)) => (true, rest),
            Some(("-", rest)) => (false, rest),
            _ => return Err(format!("line {}: expected '+' or '-' prefix", lineno + 1)),
        };
        let graph =
            ntriples::parse(rest.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        for triple in graph.iter() {
            ops.push(if insert {
                UpdateOp::Insert(triple)
            } else {
                UpdateOp::Delete(triple)
            });
        }
    }
    Ok(ops)
}

/// Map a service error onto the wire. Fail-closed: every arm is an
/// `{"error": ...}` envelope — no partial data ever rides along.
fn gsacs_error_response(e: &GsacsError) -> Response {
    match e {
        GsacsError::Parse(m) => Response::error(400, &format!("query parse error: {m}")),
        GsacsError::DeadlineExceeded { stage } => {
            Response::error(504, &format!("deadline exceeded at {stage:?}"))
        }
        GsacsError::Overloaded { in_flight, limit } => {
            Response::error(429, &format!("overloaded: {in_flight}/{limit} in flight"))
                .header("retry-after", 1)
        }
        GsacsError::Engine(m) => Response::error(503, &format!("engine unavailable: {m}")),
        GsacsError::LintRejected(m) => Response::error(503, &format!("lint-rejected: {m}")),
        GsacsError::Internal(m) => Response::error(500, &format!("internal: {m}")),
    }
}

fn render_query_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Select { vars, rows } => {
            let mut out = String::from("{\"type\": \"select\", \"vars\": [");
            for (i, v) in vars.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(&escape_json(v));
                out.push('"');
            }
            out.push_str("], \"rows\": [");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('{');
                for (j, (var, term)) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "\"{}\": \"{}\"",
                        escape_json(var),
                        escape_json(&term.to_string())
                    ));
                }
                out.push('}');
            }
            out.push_str("]}");
            out
        }
        QueryResult::Boolean(b) => format!("{{\"type\": \"boolean\", \"value\": {b}}}"),
        QueryResult::Graph(g) => format!(
            "{{\"type\": \"graph\", \"ntriples\": \"{}\"}}",
            escape_json(&ntriples::serialize(g))
        ),
    }
}

/// Wrap a completed `/trace` query response with its span tree, looked up
/// in the trace sink by the request's trace id.
fn attach_trace(shared: &Shared, resp: Response, id: TraceId) -> Response {
    if !shared.obs.tracing_enabled() {
        return Response::error(503, "tracing is disabled on this server");
    }
    let record = shared
        .obs
        .sink()
        .records()
        .into_iter()
        .rev()
        .find(|r| r.id == id);
    let spans = match record {
        None => String::from("[]"),
        Some(rec) => {
            let mut out = String::from("[");
            for (i, s) in rec.spans.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"name\": \"{}\", \"path\": \"{}\", \"depth\": {}, \
                     \"start_ns\": {}, \"dur_ns\": {}}}",
                    escape_json(s.name),
                    escape_json(&s.path),
                    s.depth,
                    s.start_ns,
                    s.dur_ns
                ));
            }
            out.push(']');
            out
        }
    };
    let result = String::from_utf8_lossy(&resp.body).into_owned();
    Response::json(
        200,
        format!("{{\"trace_id\": \"{id}\", \"result\": {result}, \"spans\": {spans}}}"),
    )
}

fn sanitize_tenant(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "public".to_string()
    } else {
        cleaned
    }
}
