//! The simulated world: the full stack under one virtual clock.
//!
//! [`run_schedule`] boots the real production assembly — `GSacs` over a
//! durable WAL/checkpoint store, wrapped in the real `ServerCore`
//! (codec, quotas, deadlines, overload behavior) — and steps a simulated
//! client against it over in-memory [`grdf_server::SimConn`]s. No
//! threads are spawned and no wall-clock time is consulted: every idle
//! wait, backoff, and deadline runs on a shared `ManualClock`, so a run
//! is a pure function of its [`Schedule`] and the whole-system invariant
//! oracles below can be checked continuously:
//!
//! 1. **Durability** — after every kill/recover, the recovered base
//!    graph equals the model graph of exactly the acknowledged updates.
//! 2. **Fail-closed corruption** — corrupting the newest checkpoint on a
//!    copy of the store never yields a silently-wrong recovery.
//! 3. **No torn responses** — every connection ends in a clean teardown
//!    or a well-formed response, unless the *network* tore the delivery.
//! 4. **No denied triple on the wire** — the restricted role's bytes
//!    never contain the secret, before or after recovery; the authorized
//!    role still sees it (so the denial proves something).
//! 5. **Audit coverage** — every served policy decision is on the
//!    durable audit stream or counted as an explicit sink failure.

use std::collections::BTreeSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use grdf_feature::{encode_feature, Feature};
use grdf_rdf::vocab::grdf as ns;
use grdf_rdf::{Graph, Term, Triple};
use grdf_runtime::{Clock, ManualClock, SeedTree};
use grdf_security::gsacs::{GSacs, OntoRepository, OwlHorstEngine};
use grdf_security::policy::{Action as PolicyAction, Policy, PolicySet};
use grdf_security::resilience::{FaultInjector, GsacsError, ResilienceConfig, Stage};
use grdf_server::{sim_conn, well_formed_response, QuotaConfig, ServerConfig, ServerCore};
use grdf_store::{recover, MemBackend, StorageBackend, StoreConfig};

use crate::schedule::{
    Action, ConnFault, EngineFault, FaultEvent, Schedule, StorageFault, WorldFault, SITES,
};

/// The sensitive literal the restricted role must never see on the wire.
pub const SECRET: &str = "XYZZY-CHEM-CODE";

/// Step sentinel meaning "no scheduled fault applies" — boots and
/// recoveries run fault-free by construction (the machine that comes
/// back is a fresh one; the scheduled surface targets live traffic).
const NO_STEP: u64 = u64::MAX;

/// Virtual time each step advances, refilling quotas and aging windows.
const STEP_TICK: Duration = Duration::from_millis(50);

/// A deliberately planted implementation bug, for proving the harness
/// catches what it claims to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// The storage backend reports WAL appends as durable without
    /// persisting them — the service acknowledges updates that a crash
    /// silently loses. The durability oracle must catch this.
    AckWithoutWal,
}

impl std::str::FromStr for Bug {
    type Err = String;
    fn from_str(s: &str) -> Result<Bug, String> {
        match s {
            "ack-without-wal" => Ok(Bug::AckWithoutWal),
            other => Err(format!("unknown bug '{other}' (try: ack-without-wal)")),
        }
    }
}

/// Parameters of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The master seed every randomized surface derives from.
    pub master_seed: u64,
    /// How many steps the world executes.
    pub steps: usize,
    /// Optional planted bug (harness self-test).
    pub bug: Option<Bug>,
    /// WAL bytes before a checkpoint rotation (small values exercise
    /// rotation + GC during short runs).
    pub checkpoint_threshold: u64,
}

impl SimConfig {
    /// A run of `steps` steps from `master_seed`, no planted bug.
    pub fn new(master_seed: u64, steps: usize) -> SimConfig {
        SimConfig {
            master_seed,
            steps,
            bug: None,
            checkpoint_threshold: 8192,
        }
    }
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The step the violation was detected at.
    pub step: usize,
    /// Which oracle fired.
    pub oracle: &'static str,
    /// What it saw.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {} [{}]: {}", self.step, self.oracle, self.detail)
    }
}

/// The outcome of one simulated run. Two runs of the same
/// `(master_seed, steps, bug, disabled)` produce byte-identical reports —
/// that is the replay contract `grdf-cli sim --seed` demonstrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The master seed the run derived from.
    pub master_seed: u64,
    /// Steps executed.
    pub steps: usize,
    /// Oracle violations, in detection order. Empty ⇔ the run passed.
    pub violations: Vec<Violation>,
    /// FNV-1a hash of the final served base graph (sorted N-Triples).
    pub graph_hash: u64,
    /// Durable audit lines streamed across every boot of the run.
    pub audit_total: u64,
    /// Updates acknowledged with 200.
    pub acked: u64,
    /// Requests denied with 403.
    pub denied: u64,
    /// Kill/recover cycles survived.
    pub recoveries: u64,
    /// Fault events enabled in the schedule.
    pub faults_enabled: usize,
}

impl SimReport {
    /// Whether every oracle held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The replay identity: verdict, final graph hash, audit-log length.
    /// Two runs of the same seed must agree on this triple exactly.
    pub fn fingerprint(&self) -> (bool, u64, u64) {
        (self.passed(), self.graph_hash, self.audit_total)
    }

    /// Render as JSON (counterexample artifacts, CI upload).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"master_seed\": {}", self.master_seed));
        s.push_str(&format!(", \"steps\": {}", self.steps));
        s.push_str(&format!(", \"passed\": {}", self.passed()));
        s.push_str(&format!(", \"graph_hash\": \"{:016x}\"", self.graph_hash));
        s.push_str(&format!(", \"audit_total\": {}", self.audit_total));
        s.push_str(&format!(", \"acked\": {}", self.acked));
        s.push_str(&format!(", \"denied\": {}", self.denied));
        s.push_str(&format!(", \"recoveries\": {}", self.recoveries));
        s.push_str(&format!(", \"faults_enabled\": {}", self.faults_enabled));
        s.push_str(", \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"step\": {}, \"oracle\": \"{}\", \"detail\": \"{}\"}}",
                v.step,
                v.oracle,
                v.detail.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        s.push_str("]}");
        s
    }
}

/// FNV-1a over the sorted N-Triples rendering of a graph — the replay
/// identity's graph component.
pub fn graph_hash(g: &Graph) -> u64 {
    let mut lines: Vec<String> = g.iter().map(|t| t.to_string()).collect();
    lines.sort_unstable();
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for line in &lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Scheduled fault surfaces
// ---------------------------------------------------------------------------

/// Engine-fault injector consulting the materialized schedule by current
/// step — every injection is individually suppressible by the shrinker.
#[derive(Debug)]
struct ScheduledInjector {
    step: Arc<AtomicU64>,
    faults: Arc<std::collections::BTreeMap<u64, EngineFault>>,
}

impl FaultInjector for ScheduledInjector {
    fn inject(&self, stage: Stage, clock: &dyn Clock) -> Result<(), GsacsError> {
        match self.faults.get(&self.step.load(Ordering::Relaxed)) {
            Some(EngineFault::Error) => Err(GsacsError::Internal(format!(
                "injected engine fault at {stage}"
            ))),
            Some(EngineFault::Stall(d)) => {
                clock.sleep(*d);
                Ok(())
            }
            None => Ok(()),
        }
    }
}

/// Storage backend consulting the schedule (and carrying the planted
/// bug, when any): short writes persist a prefix and error, failed
/// fsyncs report unknown durability, and `AckWithoutWal` silently drops
/// WAL appends while reporting success.
#[derive(Debug)]
struct ScheduledBackend {
    inner: Arc<MemBackend>,
    step: Arc<AtomicU64>,
    faults: Arc<std::collections::BTreeMap<u64, StorageFault>>,
    bug: Option<Bug>,
}

impl ScheduledBackend {
    fn active(&self) -> Option<StorageFault> {
        self.faults.get(&self.step.load(Ordering::Relaxed)).copied()
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected storage fault: {kind}"))
}

impl StorageBackend for ScheduledBackend {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn write_all(&self, name: &str, data: &[u8]) -> io::Result<()> {
        if self.active() == Some(StorageFault::ShortWrite) {
            let _ = self.inner.write_all(name, &data[..data.len() / 2]);
            return Err(injected("short write"));
        }
        self.inner.write_all(name, data)
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        if self.bug == Some(Bug::AckWithoutWal) && name.starts_with("wal-") {
            // The planted bug: claim durability, persist nothing.
            return Ok(());
        }
        if self.active() == Some(StorageFault::ShortWrite) {
            let _ = self.inner.append(name, &data[..data.len() / 2]);
            return Err(injected("short write"));
        }
        self.inner.append(name, data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        if self.active() == Some(StorageFault::FsyncFail) {
            return Err(injected("fsync failure"));
        }
        self.inner.sync(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn len(&self, name: &str) -> io::Result<u64> {
        self.inner.len(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }
}

// ---------------------------------------------------------------------------
// Fixture world
// ---------------------------------------------------------------------------

fn site_data() -> Graph {
    let mut data = Graph::new();
    for i in 0..SITES {
        let mut site = Feature::new(&ns::app(&format!("site{i}")), "ChemSite");
        site.set_property("hasSiteName", format!("Site {i}").as_str());
        site.set_property("hasChemCode", format!("{SECRET}-{i}").as_str());
        encode_feature(&mut data, &site);
    }
    data
}

fn policies() -> PolicySet {
    PolicySet::new(vec![
        // MainRep sees ChemSites but only their boundary — the chem
        // codes are outside its view, and it holds no mutation rights.
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy")],
        ),
        Policy::permit(&ns::sec("E1"), &ns::sec("Emergency"), &ns::app("ChemSite")),
        Policy {
            action: PolicyAction::Edit,
            ..Policy::permit(&ns::sec("E2"), &ns::sec("Emergency"), &ns::app("ChemSite"))
        },
        Policy {
            action: PolicyAction::Delete,
            ..Policy::permit(&ns::sec("E3"), &ns::sec("Emergency"), &ns::app("ChemSite"))
        },
    ])
}

fn chem_query() -> String {
    format!(
        "PREFIX app: <{}>\nSELECT ?c WHERE {{ ?s app:hasChemCode ?c }}",
        ns::APP_NS
    )
}

/// An HTTP/1.1 request with explicit connection behavior.
fn request(path: &str, role: Option<&str>, body: &[u8], close: bool) -> Vec<u8> {
    let method = if body.is_empty() { "GET" } else { "POST" };
    let mut out = format!("{method} {path} HTTP/1.1\r\n").into_bytes();
    if let Some(role) = role {
        out.extend_from_slice(format!("x-role: {role}\r\n").as_bytes());
    }
    let conn = if close { "close" } else { "keep-alive" };
    out.extend_from_slice(
        format!(
            "content-length: {}\r\nconnection: {conn}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

fn http_status(raw: &[u8]) -> Option<u16> {
    let line = raw.split(|&b| b == b'\r').next()?;
    let line = std::str::from_utf8(line).ok()?;
    line.split(' ').nth(1)?.parse().ok()
}

fn contains_secret(raw: &[u8]) -> bool {
    raw.windows(SECRET.len()).any(|w| w == SECRET.as_bytes())
}

// ---------------------------------------------------------------------------
// The world
// ---------------------------------------------------------------------------

struct World {
    cfg: SimConfig,
    schedule: Schedule,
    clock: Arc<ManualClock>,
    step: Arc<AtomicU64>,
    engine_faults: Arc<std::collections::BTreeMap<u64, EngineFault>>,
    storage_faults: Arc<std::collections::BTreeMap<u64, StorageFault>>,
    tree: SeedTree,
    mem: Arc<MemBackend>,
    core: ServerCore,
    /// The durable contract: exactly what a recovery must reproduce —
    /// the initial base plus every acknowledged update, in order.
    model: Graph,
    /// Acknowledged note triples still live (delete candidates).
    live_notes: Vec<Triple>,
    violations: Vec<Violation>,
    acked: u64,
    denied: u64,
    recoveries: u64,
    /// 200/403 decisions served on /query + /update since this boot.
    decisions_this_boot: u64,
    /// Durable audit lines streamed by stores of *previous* boots.
    audit_prev_boots: u64,
}

impl World {
    fn resilience_config(&self) -> ResilienceConfig {
        ResilienceConfig {
            clock: self.clock.clone(),
            seeds: Some(self.tree.child("gsacs")),
            fault_injector: Some(Arc::new(ScheduledInjector {
                step: Arc::clone(&self.step),
                faults: Arc::clone(&self.engine_faults),
            })),
            ..ResilienceConfig::default()
        }
    }

    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            clock: self.clock.clone(),
            seeds: Some(self.tree.child("server")),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            keep_alive_requests: 4,
            quota: QuotaConfig {
                rate_per_sec: 50.0,
                burst: 20.0,
            },
            ..ServerConfig::default()
        }
    }

    fn backend(&self) -> Arc<dyn StorageBackend> {
        Arc::new(ScheduledBackend {
            inner: Arc::clone(&self.mem),
            step: Arc::clone(&self.step),
            faults: Arc::clone(&self.storage_faults),
            bug: self.cfg.bug,
        })
    }

    fn store_config(&self) -> StoreConfig {
        StoreConfig {
            checkpoint_threshold: self.cfg.checkpoint_threshold,
            ..StoreConfig::default()
        }
    }

    fn violation(&mut self, step: usize, oracle: &'static str, detail: String) {
        self.violations.push(Violation {
            step,
            oracle,
            detail,
        });
    }

    /// Serve one in-memory exchange through the real core and return the
    /// bytes the client saw plus whether the network tore/partitioned
    /// the link.
    fn exchange(&mut self, payloads: &[Vec<u8>], fault: Option<ConnFault>) -> (Vec<u8>, bool) {
        let (conn, link) = sim_conn(self.clock.clone());
        let mut excused = false;
        match fault {
            None => {
                for p in payloads {
                    link.send(p);
                }
                link.finish();
            }
            Some(ConnFault::StallMidRequest { keep }) => {
                let all: Vec<u8> = payloads.concat();
                link.send(&all[..keep.min(all.len())]);
                // Never finish: the server burns its read timeout on the
                // virtual clock. The response (408 or silence) may be
                // complete, so no excuse is needed.
            }
            Some(ConnFault::TornRequest { keep }) => {
                let all: Vec<u8> = payloads.concat();
                link.send(&all[..keep.min(all.len())]);
                link.finish();
            }
            Some(ConnFault::PartitionMidRequest { keep }) => {
                let all: Vec<u8> = payloads.concat();
                link.send(&all[..keep.min(all.len())]);
                link.partition();
                excused = true;
            }
            Some(ConnFault::TornDelivery { after }) => {
                for p in payloads {
                    link.send(p);
                }
                link.finish();
                link.tear_next_write(after);
                excused = true;
            }
        }
        self.core.serve(Box::new(conn));
        let raw = link.take_received();
        (raw, excused || link.tore_delivery())
    }

    /// Count a served decision and run the audit-coverage oracle.
    fn note_decision(&mut self, step: usize) {
        self.decisions_this_boot += 1;
        let svc = self.core.service().read();
        let Some(store) = svc.durable_store() else {
            return;
        };
        let covered = store.audit_lines() + svc.audit_sink_errors();
        if covered < self.decisions_this_boot {
            let total = self.decisions_this_boot;
            drop(svc);
            self.violation(
                step,
                "audit-coverage",
                format!("served {total} decisions this boot but only {covered} reached the audit stream (lines + counted sink failures)"),
            );
        }
    }

    /// The no-secret oracle plus well-formedness for one exchange.
    fn check_wire(&mut self, step: usize, raw: &[u8], excused: bool, restricted: bool) {
        if restricted && contains_secret(raw) {
            self.violation(
                step,
                "denied-triple-on-wire",
                "restricted role received the secret literal".to_string(),
            );
        }
        if !excused && !raw.is_empty() && !well_formed_response(raw) {
            self.violation(
                step,
                "torn-response",
                format!("server delivered {} malformed bytes", raw.len()),
            );
        }
    }

    fn step_query(&mut self, step: usize, role: &str, restricted: bool, fault: Option<ConnFault>) {
        let req = request("/query", Some(role), chem_query().as_bytes(), true);
        let (raw, excused) = self.exchange(&[req], fault);
        self.check_wire(step, &raw, excused, restricted);
        match http_status(&raw) {
            Some(200) => {
                if !restricted && !excused && !contains_secret(&raw) {
                    // The authorized role must see the secret — otherwise
                    // the restricted denial above proves nothing.
                    self.violation(
                        step,
                        "authorized-view",
                        "authorized role's clean 200 lacks the secret".to_string(),
                    );
                }
                self.note_decision(step);
            }
            Some(403) => {
                self.denied += 1;
                self.note_decision(step);
            }
            _ => {}
        }
    }

    fn step_update(&mut self, step: usize, role: &str, ops: &str, fault: Option<ConnFault>) {
        let req = request("/update", Some(role), ops.as_bytes(), true);
        let (raw, excused) = self.exchange(&[req], fault);
        self.check_wire(step, &raw, excused, true);
        match http_status(&raw) {
            Some(200) => {
                self.acked += 1;
                self.note_decision(step);
            }
            Some(403) => {
                self.denied += 1;
                self.note_decision(step);
            }
            _ => {}
        }
    }

    fn note_triple(&self, site: usize, step: usize) -> Triple {
        Triple::new(
            Term::iri(&ns::app(&format!("site{site}"))),
            Term::iri(&ns::app("hasInspectionNote")),
            Term::string(&format!("note-{step}")),
        )
    }

    fn run_action(&mut self, step: usize, fault: Option<ConnFault>) {
        match self.schedule.actions[step] {
            Action::QueryRestricted => {
                self.step_query(step, &ns::sec("MainRep"), true, fault);
            }
            Action::QueryEmergency => {
                self.step_query(step, &ns::sec("Emergency"), false, fault);
            }
            Action::UpdateInsert { site } => {
                let t = self.note_triple(site, step);
                let before = self.acked;
                self.step_update(step, &ns::sec("Emergency"), &format!("+ {t}\n"), fault);
                if self.acked > before {
                    self.model.insert(t.clone());
                    self.live_notes.push(t);
                }
            }
            Action::UpdateDelete => {
                if self.live_notes.is_empty() {
                    // Nothing to delete yet: degrade to an insert so the
                    // step still exercises the mutation path.
                    let t = self.note_triple(0, step);
                    let before = self.acked;
                    self.step_update(step, &ns::sec("Emergency"), &format!("+ {t}\n"), fault);
                    if self.acked > before {
                        self.model.insert(t.clone());
                        self.live_notes.push(t);
                    }
                    return;
                }
                let pick = self.tree.child("workload").decider().pick(
                    "delete",
                    step as u64,
                    self.live_notes.len() as u64,
                ) as usize;
                let t = self.live_notes[pick].clone();
                let before = self.acked;
                self.step_update(step, &ns::sec("Emergency"), &format!("- {t}\n"), fault);
                if self.acked > before {
                    self.model.remove(&t);
                    self.live_notes.swap_remove(pick);
                }
            }
            Action::UpdateDeniedRole { site } => {
                let t = self.note_triple(site, step);
                let before = self.acked;
                self.step_update(step, &ns::sec("MainRep"), &format!("+ {t}\n"), fault);
                if self.acked > before {
                    self.violation(
                        step,
                        "denied-triple-on-wire",
                        "restricted role's update was acknowledged".to_string(),
                    );
                }
            }
            Action::Health => {
                let req = request("/health", None, b"", true);
                let (raw, excused) = self.exchange(&[req], fault);
                self.check_wire(step, &raw, excused, true);
            }
            Action::ReorderedPipeline => {
                // Two restricted queries, second-composed-first: the link
                // carries bytes, so this is reordered delivery as the
                // server sees it. Concatenated keep-alive responses are
                // not a single well-formed response — check only the
                // secrecy and clean-prefix properties here.
                let a = request(
                    "/query",
                    Some(&ns::sec("MainRep")),
                    chem_query().as_bytes(),
                    false,
                );
                let b = request(
                    "/query",
                    Some(&ns::sec("MainRep")),
                    chem_query().as_bytes(),
                    true,
                );
                let (raw, _excused) = self.exchange(&[b, a], fault);
                if contains_secret(&raw) {
                    self.violation(
                        step,
                        "denied-triple-on-wire",
                        "restricted role received the secret literal (pipelined)".to_string(),
                    );
                }
                if !raw.is_empty() && !raw.starts_with(b"HTTP/1.1 ") {
                    self.violation(
                        step,
                        "torn-response",
                        "pipelined response stream does not start with a status line".to_string(),
                    );
                }
                // Only decisions the service actually made (200/403)
                // reach the audit log; transport-level errors (408, 400)
                // never touch the service and must not be counted.
                let served = raw
                    .windows(12)
                    .filter(|w| *w == b"HTTP/1.1 200" || *w == b"HTTP/1.1 403")
                    .count();
                for _ in 0..served.min(2) {
                    self.note_decision(step);
                }
            }
        }
    }

    /// Kill the node and bring it back from the surviving backend files,
    /// then run the post-recovery oracles (durability, label ≡ view).
    fn kill_and_recover(&mut self, step: usize) {
        self.recoveries += 1;
        // Bank the dying boot's audit-line count before dropping it.
        {
            let svc = self.core.service().read();
            if let Some(store) = svc.durable_store() {
                self.audit_prev_boots += store.audit_lines();
            }
        }
        // The crash: all in-memory state vanishes; only backend files
        // survive. A fresh MemBackend from a byte-copy of those files is
        // the rebooted disk.
        let files = self.mem.clone_files();
        self.mem = Arc::new(MemBackend::from_files(files));
        // Recovery itself runs fault-free (see NO_STEP).
        self.step.store(NO_STEP, Ordering::Relaxed);
        let recovered = GSacs::recover_with_resilience(
            self.backend(),
            self.store_config(),
            Box::<OwlHorstEngine>::default(),
            16,
            self.resilience_config(),
        );
        match recovered {
            Ok((svc, rec)) => {
                let got = graph_hash(&rec.base);
                let want = graph_hash(&self.model);
                if got != want {
                    self.violation(
                        step,
                        "durability",
                        format!(
                            "recovered base ({} triples, hash {got:016x}) != acknowledged model ({} triples, hash {want:016x})",
                            rec.base.len(),
                            self.model.len()
                        ),
                    );
                }
                self.core = ServerCore::new(svc, self.server_config());
                self.decisions_this_boot = 0;
            }
            Err(e) => {
                self.violation(step, "durability", format!("recovery failed outright: {e}"));
                // The world cannot continue without a node; re-create a
                // fresh one so remaining steps still execute (their
                // oracles run against the replacement).
                self.mem = Arc::new(MemBackend::new());
                let svc = GSacs::create_durable(
                    self.backend(),
                    self.store_config(),
                    OntoRepository::new(),
                    policies(),
                    Box::<OwlHorstEngine>::default(),
                    site_data(),
                    16,
                    self.resilience_config(),
                )
                .expect("fresh replacement world");
                self.model = {
                    let mut g = Graph::new();
                    g.extend_from(&site_data());
                    g
                };
                self.live_notes.clear();
                self.core = ServerCore::new(svc, self.server_config());
                self.decisions_this_boot = 0;
            }
        }
        self.step.store(step as u64, Ordering::Relaxed);
        // Label ≡ view after recovery: the restricted role still cannot
        // see the secret, and the authorized role still can.
        self.step_query(step, &ns::sec("MainRep"), true, None);
        self.step_query(step, &ns::sec("Emergency"), false, None);
    }

    /// Offline corruption probe: flip a byte inside the newest checkpoint
    /// of a *copy* of the store. Recovery over the corrupted copy must
    /// fail closed — or, if an older intact checkpoint + complete WAL
    /// chain exists, reproduce the acknowledged state exactly. A silently
    /// different success is the violation.
    fn corrupt_probe(&mut self, step: usize) {
        let files = self.mem.clone_files();
        let Some((name, bytes)) = files
            .iter()
            .filter(|(n, b)| n.starts_with("ckpt-") && n.ends_with(".grdfck") && !b.is_empty())
            .max_by(|a, b| a.0.cmp(b.0))
            .map(|(n, b)| (n.clone(), b.clone()))
        else {
            return;
        };
        let probe = MemBackend::from_files(files);
        let offset =
            self.tree
                .child("corrupt")
                .decider()
                .pick("offset", step as u64, bytes.len() as u64) as usize;
        probe.flip_bit(&name, offset, 0x10);
        match recover(&probe) {
            Err(_) => {} // fail-closed: exactly right
            Ok(rec) => {
                let got = graph_hash(&rec.base);
                let want = graph_hash(&self.model);
                if got != want {
                    self.violation(
                        step,
                        "fail-closed-corruption",
                        format!(
                            "corrupted {name} byte {offset}: recovery silently succeeded with a different graph (hash {got:016x}, want {want:016x})"
                        ),
                    );
                }
            }
        }
    }
}

/// Run the schedule for `config` with the events at indices in
/// `disabled` suppressed (the shrinker's handle). An empty set is a
/// full-fidelity run.
pub fn run_schedule(config: &SimConfig, disabled: &BTreeSet<usize>) -> SimReport {
    let schedule = Schedule::generate(config.master_seed, config.steps);
    let mut engine_faults = std::collections::BTreeMap::new();
    let mut storage_faults = std::collections::BTreeMap::new();
    let mut conn_faults: std::collections::BTreeMap<usize, ConnFault> =
        std::collections::BTreeMap::new();
    let mut clock_skips: std::collections::BTreeMap<usize, Duration> =
        std::collections::BTreeMap::new();
    let mut kills: BTreeSet<usize> = BTreeSet::new();
    let mut probes: BTreeSet<usize> = BTreeSet::new();
    let mut enabled = 0usize;
    for (i, FaultEvent { step, fault }) in schedule.events.iter().enumerate() {
        if disabled.contains(&i) {
            continue;
        }
        enabled += 1;
        match fault {
            WorldFault::Engine(f) => {
                engine_faults.insert(*step as u64, *f);
            }
            WorldFault::Storage(f) => {
                storage_faults.insert(*step as u64, *f);
            }
            WorldFault::Conn(f) => {
                conn_faults.insert(*step, *f);
            }
            WorldFault::ClockSkip(d) => {
                clock_skips.insert(*step, *d);
            }
            WorldFault::KillRecover => {
                kills.insert(*step);
            }
            WorldFault::CorruptProbe => {
                probes.insert(*step);
            }
        }
    }

    let tree = SeedTree::new(config.master_seed);
    let clock = Arc::new(ManualClock::new());
    let step_cell = Arc::new(AtomicU64::new(NO_STEP));
    let mut world = World {
        cfg: *config,
        schedule,
        clock,
        step: Arc::clone(&step_cell),
        engine_faults: Arc::new(engine_faults),
        storage_faults: Arc::new(storage_faults),
        tree,
        mem: Arc::new(MemBackend::new()),
        // Placeholder; replaced right below once the backend exists.
        core: ServerCore::new(
            GSacs::with_resilience(
                OntoRepository::new(),
                PolicySet::new(Vec::new()),
                Box::<OwlHorstEngine>::default(),
                Graph::new(),
                1,
                ResilienceConfig::default(),
            ),
            ServerConfig::default(),
        ),
        model: Graph::new(),
        live_notes: Vec::new(),
        violations: Vec::new(),
        acked: 0,
        denied: 0,
        recoveries: 0,
        decisions_this_boot: 0,
        audit_prev_boots: 0,
    };
    let svc = GSacs::create_durable(
        world.backend(),
        world.store_config(),
        OntoRepository::new(),
        policies(),
        Box::<OwlHorstEngine>::default(),
        site_data(),
        16,
        world.resilience_config(),
    )
    .expect("boot the simulated world");
    world.model.extend_from(&site_data());
    world.core = ServerCore::new(svc, world.server_config());

    for step in 0..config.steps {
        world.step.store(step as u64, Ordering::Relaxed);
        if let Some(d) = clock_skips.get(&step) {
            world.clock.advance(*d);
        }
        if probes.contains(&step) {
            world.corrupt_probe(step);
        }
        if kills.contains(&step) {
            world.kill_and_recover(step);
        } else {
            let fault = conn_faults.get(&step).copied();
            world.run_action(step, fault);
        }
        world.clock.advance(STEP_TICK);
    }

    // Final accounting: a last recovery check is implicit in the kill
    // schedule; here we only read end-of-run state.
    let (graph, audit_total) = {
        let svc = world.core.service().read();
        let audit = world.audit_prev_boots + svc.durable_store().map_or(0, |s| s.audit_lines());
        (graph_hash(svc.base_graph()), audit)
    };
    SimReport {
        master_seed: config.master_seed,
        steps: config.steps,
        violations: world.violations,
        graph_hash: graph,
        audit_total,
        acked: world.acked,
        denied: world.denied,
        recoveries: world.recoveries,
        faults_enabled: enabled,
    }
}

/// Run the full-fidelity schedule for `config`.
pub fn run(config: &SimConfig) -> SimReport {
    run_schedule(config, &BTreeSet::new())
}
