//! Greedy counterexample shrinking.
//!
//! A failing schedule usually fails because of a small core of fault
//! events buried in noise. The shrinker suppresses scheduled fault
//! events one at a time — a suppression is *kept* when the run still
//! fails without that event — and repeats until a full pass removes
//! nothing more. What survives is a locally-minimal counterexample:
//! remove any one remaining event and every oracle holds.
//!
//! Because a run is a pure function of `(master_seed, steps, bug,
//! disabled)`, the shrinker needs no captured state: it just re-runs the
//! world. The result replays from `{master_seed, step_count}` plus the
//! suppression set alone.

use std::collections::BTreeSet;

use crate::schedule::Schedule;
use crate::world::{run_schedule, SimConfig, SimReport};

/// The outcome of a shrink campaign over one failing seed.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// Event indices suppressed from the generated schedule.
    pub disabled: BTreeSet<usize>,
    /// Human-readable descriptions of the surviving (essential) events.
    pub kept: Vec<String>,
    /// The failing report under the minimal schedule.
    pub report: SimReport,
    /// World re-runs the campaign consumed.
    pub runs: usize,
}

impl ShrinkResult {
    /// Render the minimal counterexample for artifacts / PR logs.
    pub fn render(&self) -> String {
        let mut out = format!(
            "minimal counterexample for seed {} ({} steps, {} runs):\n",
            self.report.master_seed, self.report.steps, self.runs
        );
        for k in &self.kept {
            out.push_str("  keep ");
            out.push_str(k);
            out.push('\n');
        }
        for v in &self.report.violations {
            out.push_str("  violates ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Greedily shrink the failing run of `config` to a locally-minimal
/// fault schedule. Returns `None` when the full-fidelity run passes
/// (nothing to shrink).
pub fn shrink(config: &SimConfig) -> Option<ShrinkResult> {
    let mut disabled = BTreeSet::new();
    let mut report = run_schedule(config, &disabled);
    let mut runs = 1;
    if report.passed() {
        return None;
    }
    let schedule = Schedule::generate(config.master_seed, config.steps);
    let total = schedule.events.len();
    loop {
        let mut progressed = false;
        for i in 0..total {
            if disabled.contains(&i) {
                continue;
            }
            let mut attempt = disabled.clone();
            attempt.insert(i);
            let r = run_schedule(config, &attempt);
            runs += 1;
            if !r.passed() {
                // Still fails without this event — it was noise.
                disabled = attempt;
                report = r;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Some(ShrinkResult {
        kept: schedule.enabled_events(&disabled),
        disabled,
        report,
        runs,
    })
}
