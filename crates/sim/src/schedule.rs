//! Schedule materialization: one master seed → the whole run.
//!
//! A [`Schedule`] is the complete, pre-materialized plan of a simulated
//! run: one [`Action`] per step (the workload) plus a sparse list of
//! [`FaultEvent`]s (the fault surface). Both derive from named
//! [`SeedTree`] lanes, so the schedule for `(master_seed, steps)` is a
//! pure value — replaying a counterexample needs nothing but those two
//! numbers, and the shrinker can suppress individual events by index
//! without perturbing anything else.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use grdf_runtime::SeedTree;

/// How many simulated sites the fixture world contains.
pub const SITES: usize = 8;

/// What the simulated client does at one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A query as the restricted role (must never see the secret).
    QueryRestricted,
    /// A query as the all-seeing role (must see the secret when clean).
    QueryEmergency,
    /// An authorized insert of a unique note triple on `site`.
    UpdateInsert {
        /// Which fixture site the note lands on.
        site: usize,
    },
    /// An authorized delete of a previously acknowledged note (falls back
    /// to an insert when none are live).
    UpdateDelete,
    /// An *unauthorized* update by the restricted role (must be denied).
    UpdateDeniedRole {
        /// Which fixture site the attempt targets.
        site: usize,
    },
    /// A `GET /health` probe.
    Health,
    /// Two restricted queries pipelined on one connection in swapped
    /// order (reordered delivery: the link carries bytes, not messages).
    ReorderedPipeline,
}

/// A connection-level fault shaping how one step's bytes move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Deliver only a prefix of the request, then go silent: the server
    /// burns its read timeout on the virtual clock and answers 408 (or
    /// tears down silently between requests).
    StallMidRequest {
        /// Request bytes delivered before the stall.
        keep: usize,
    },
    /// Deliver only a prefix, then close the sending half: the server
    /// sees EOF mid-request.
    TornRequest {
        /// Request bytes delivered before the close.
        keep: usize,
    },
    /// Deliver only a prefix, then drop the link both ways.
    PartitionMidRequest {
        /// Request bytes delivered before the partition.
        keep: usize,
    },
    /// Let the request through, but tear the server's response write
    /// after this many bytes (query steps only — an update must either
    /// be delivered its ack or never acknowledged at all, so the
    /// durability model stays exact).
    TornDelivery {
        /// Response bytes the network delivers before the tear.
        after: usize,
    },
}

/// A storage-layer fault active for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Appends and overwrites persist only a prefix and error (torn
    /// write) — the WAL poisons and fails closed until recovery.
    ShortWrite,
    /// `sync` reports failure; durability of earlier writes is unknown.
    FsyncFail,
}

/// A reasoning-engine fault active for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFault {
    /// Pipeline stages error (the resilient engine retries / trips the
    /// breaker).
    Error,
    /// Pipeline stages stall on the virtual clock (deadlines fire
    /// without wall time passing).
    Stall(Duration),
}

/// One fault surface firing at one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldFault {
    /// Reasoning-engine fault.
    Engine(EngineFault),
    /// Storage-backend fault.
    Storage(StorageFault),
    /// Connection fault on this step's wire exchange.
    Conn(ConnFault),
    /// The virtual clock jumps forward.
    ClockSkip(Duration),
    /// Kill the node (drop all in-memory state) and recover from the
    /// surviving backend files; post-recovery oracles run.
    KillRecover,
    /// Offline probe: corrupt the newest checkpoint on a *copy* of the
    /// store and assert recovery fails closed (or recovers the exact
    /// acknowledged state from an older intact chain).
    CorruptProbe,
}

impl fmt::Display for WorldFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldFault::Engine(EngineFault::Error) => write!(f, "engine-error"),
            WorldFault::Engine(EngineFault::Stall(d)) => {
                write!(f, "engine-stall({}ms)", d.as_millis())
            }
            WorldFault::Storage(StorageFault::ShortWrite) => write!(f, "storage-short-write"),
            WorldFault::Storage(StorageFault::FsyncFail) => write!(f, "storage-fsync-fail"),
            WorldFault::Conn(ConnFault::StallMidRequest { keep }) => {
                write!(f, "conn-stall@{keep}")
            }
            WorldFault::Conn(ConnFault::TornRequest { keep }) => write!(f, "conn-torn-req@{keep}"),
            WorldFault::Conn(ConnFault::PartitionMidRequest { keep }) => {
                write!(f, "conn-partition@{keep}")
            }
            WorldFault::Conn(ConnFault::TornDelivery { after }) => {
                write!(f, "conn-torn-delivery@{after}")
            }
            WorldFault::ClockSkip(d) => write!(f, "clock-skip({}ms)", d.as_millis()),
            WorldFault::KillRecover => write!(f, "kill-recover"),
            WorldFault::CorruptProbe => write!(f, "corrupt-probe"),
        }
    }
}

/// One scheduled fault: which step it fires at, and what fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The step index the fault is active at.
    pub step: usize,
    /// What fires.
    pub fault: WorldFault,
}

/// The fully materialized plan of one simulated run.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The master seed everything derives from.
    pub master_seed: u64,
    /// The per-step workload.
    pub actions: Vec<Action>,
    /// The sparse fault schedule, in step order. Indices into this list
    /// are the shrinker's unit of suppression.
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// Materialize the schedule for `(master_seed, steps)`. Pure: the
    /// same inputs always produce the same plan.
    pub fn generate(master_seed: u64, steps: usize) -> Schedule {
        let tree = SeedTree::new(master_seed);
        let workload = tree.child("workload").decider();
        let faults = tree.child("faults").decider();
        let mut actions = Vec::with_capacity(steps);
        let mut events = Vec::new();
        for step in 0..steps {
            let n = step as u64;
            let action = match workload.pick("action", n, 100) {
                0..=29 => Action::QueryRestricted,
                30..=49 => Action::QueryEmergency,
                50..=74 => Action::UpdateInsert {
                    site: workload.pick("site", n, SITES as u64) as usize,
                },
                75..=82 => Action::UpdateDelete,
                83..=89 => Action::UpdateDeniedRole {
                    site: workload.pick("site", n, SITES as u64) as usize,
                },
                90..=94 => Action::Health,
                _ => Action::ReorderedPipeline,
            };
            actions.push(action);
            if faults.fires("engine", n, 0.08) {
                let fault = if faults.fires("engine.kind", n, 0.5) {
                    EngineFault::Error
                } else {
                    EngineFault::Stall(Duration::from_millis(
                        50 + faults.pick("engine.stall", n, 400),
                    ))
                };
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::Engine(fault),
                });
            }
            if faults.fires("storage", n, 0.06) {
                let fault = if faults.fires("storage.kind", n, 0.6) {
                    StorageFault::ShortWrite
                } else {
                    StorageFault::FsyncFail
                };
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::Storage(fault),
                });
            }
            if faults.fires("conn", n, 0.10) {
                // A fault that can swallow the *response* is only safe on
                // read-only steps: an update whose ack is torn leaves the
                // durability model unsure whether to count it.
                let keep = 4 + faults.pick("conn.keep", n, 120) as usize;
                let mutating = matches!(action, Action::UpdateInsert { .. } | Action::UpdateDelete);
                let kinds = if mutating { 3 } else { 4 };
                let fault = match faults.pick("conn.kind", n, kinds) {
                    0 => ConnFault::StallMidRequest { keep },
                    1 => ConnFault::TornRequest { keep },
                    2 => ConnFault::PartitionMidRequest { keep },
                    _ => ConnFault::TornDelivery {
                        after: 4 + faults.pick("conn.tear", n, 60) as usize,
                    },
                };
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::Conn(fault),
                });
            }
            if faults.fires("clock", n, 0.05) {
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::ClockSkip(Duration::from_millis(
                        500 + faults.pick("clock.skip", n, 60_000),
                    )),
                });
            }
            if faults.fires("kill", n, 0.04) {
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::KillRecover,
                });
            }
            if faults.fires("corrupt", n, 0.04) {
                events.push(FaultEvent {
                    step,
                    fault: WorldFault::CorruptProbe,
                });
            }
        }
        Schedule {
            master_seed,
            actions,
            events,
        }
    }

    /// The events still enabled under a shrink suppression set, rendered
    /// for reports.
    pub fn enabled_events(&self, disabled: &BTreeSet<usize>) -> Vec<String> {
        self.events
            .iter()
            .enumerate()
            .filter(|(i, _)| !disabled.contains(i))
            .map(|(i, e)| format!("#{i} step {}: {}", e.step, e.fault))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        let a = Schedule::generate(42, 200);
        let b = Schedule::generate(42, 200);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.events, b.events);
        assert_ne!(
            Schedule::generate(1, 200).actions,
            Schedule::generate(2, 200).actions
        );
    }

    #[test]
    fn every_fault_surface_appears_somewhere() {
        // Across a modest seed range, every fault kind must be exercised —
        // a schedule generator that silently never draws a surface would
        // hollow out the whole harness.
        let mut engine = 0u32;
        let mut storage = 0u32;
        let mut conn = 0u32;
        let mut clock = 0u32;
        let mut kill = 0u32;
        let mut corrupt = 0u32;
        for seed in 0..20u64 {
            for e in Schedule::generate(seed, 150).events {
                match e.fault {
                    WorldFault::Engine(_) => engine += 1,
                    WorldFault::Storage(_) => storage += 1,
                    WorldFault::Conn(_) => conn += 1,
                    WorldFault::ClockSkip(_) => clock += 1,
                    WorldFault::KillRecover => kill += 1,
                    WorldFault::CorruptProbe => corrupt += 1,
                }
            }
        }
        assert!(engine > 0 && storage > 0 && conn > 0);
        assert!(clock > 0 && kill > 0 && corrupt > 0);
    }

    #[test]
    fn update_steps_never_get_response_destroying_faults() {
        for seed in 0..30u64 {
            let s = Schedule::generate(seed, 200);
            for e in &s.events {
                if let WorldFault::Conn(ConnFault::TornDelivery { .. }) = e.fault {
                    assert!(
                        !matches!(
                            s.actions[e.step],
                            Action::UpdateInsert { .. } | Action::UpdateDelete
                        ),
                        "seed {seed}: torn delivery scheduled on a mutating step"
                    );
                }
            }
        }
    }
}
