//! Deterministic whole-system simulation for GRDF.
//!
//! One master `u64` seed drives *every* randomized surface of a full
//! stack — the HTTP codec and worker-pool admission path (`ServerCore`
//! over in-memory `SimConn`s), G-SACS policy enforcement, the resilient
//! reasoner (retries, breaker, injected engine faults), the WAL +
//! checkpoint store (short writes, fsync failures, kill/recover), and a
//! virtual clock — via hierarchical [`grdf_runtime::SeedTree`]
//! derivation. No threads, no wall clock, no real sockets: a run is a
//! pure function of `(master_seed, steps, planted bug, suppressed
//! events)`.
//!
//! That purity buys the FoundationDB-style loop:
//!
//! * **Replay** — a failing run is persisted as `{master_seed,
//!   step_count}` and replays bit-identically ([`SimReport::fingerprint`]).
//! * **Oracles** — whole-system invariants are checked continuously
//!   while faults fire (see [`world`]): acknowledged updates survive
//!   recovery, corruption fails closed, no torn responses, no denied
//!   triple on the wire, audit covers every decision.
//! * **Shrink** — [`shrink::shrink`] greedily drops scheduled fault
//!   events while the oracle still fails, leaving a locally-minimal
//!   counterexample.
//!
//! Drive it from the CLI: `grdf-cli sim --seed 42 --steps 120`, or
//! `grdf-cli sim --swarm 200 --quick` for a CI-sized campaign.

pub mod schedule;
pub mod shrink;
pub mod world;

pub use schedule::{
    Action, ConnFault, EngineFault, FaultEvent, Schedule, StorageFault, WorldFault,
};
pub use shrink::{shrink as shrink_seed, ShrinkResult};
pub use world::{graph_hash, run, run_schedule, Bug, SimConfig, SimReport, Violation, SECRET};
