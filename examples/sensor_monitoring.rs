//! Observations and coverages (§3.3.5 / §3.3.8) as live monitoring data:
//! water-quality sensors along the incident streams, queried with
//! aggregates and temporal filters to locate the contamination.
//!
//! Run with: `cargo run --example sensor_monitoring`

use grdf::core::store::GrdfStore;
use grdf::feature::Value;
use grdf::geometry::Coord;
use grdf::workload::hydrology::{generate_hydrology, HydrologyConfig};
use grdf::workload::sensors::{generate_sensors, SensorConfig};

fn main() {
    // Streams being monitored.
    let hydro = generate_hydrology(&HydrologyConfig {
        streams: 12,
        seed: 3,
        ..Default::default()
    });
    let stream_iris: Vec<String> = hydro.features.iter().map(|f| f.iri.clone()).collect();

    // A day of hourly readings from 8 stations.
    let sensors = generate_sensors(&SensorConfig {
        stations: 8,
        observations_per_station: 24,
        observed_streams: stream_iris.clone(),
        ..Default::default()
    });
    println!(
        "{} observations from {} stations over {} streams",
        sensors.observations.len(),
        sensors.stations.len(),
        stream_iris.len()
    );

    // Everything goes into one GRDF store: streams, observations, and the
    // subclass axiom that makes app:Observation a grdf:Observation.
    let mut store = GrdfStore::new();
    for f in hydro
        .features
        .iter()
        .chain(sensors.observations.features.iter())
    {
        store.insert_feature(f).expect("insert");
    }
    store
        .load_turtle(
            "@prefix app: <http://grdf.org/app#> .
             @prefix grdf: <http://grdf.org/ontology#> .
             @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
             app:Observation rdfs:subClassOf grdf:Observation .",
        )
        .expect("axioms");
    store.materialize();

    // Aggregate query: mean turbidity per observed stream — the §7.1
    // responders' first question. (GROUP BY + AVG over the merged graph.)
    let rows = store
        .query(
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?stream (AVG(?v) AS ?turbidity) (COUNT(?o) AS ?readings)
             WHERE {
               ?o app:observedFeature ?stream ; app:result ?v .
             }
             GROUP BY ?stream
             ORDER BY DESC(?turbidity)
             LIMIT 3",
        )
        .expect("aggregate query");
    println!("\nworst streams by mean turbidity:");
    for row in rows.select_rows() {
        println!(
            "  {}  avg={:.2} NTU over {} readings",
            row["stream"],
            row["turbidity"].as_literal().unwrap().as_double().unwrap(),
            row["readings"].as_literal().unwrap().as_integer().unwrap(),
        );
    }
    let worst = rows.select_rows()[0]["stream"].clone();

    // Temporal filter: readings from the last six hours of the day only.
    let recent = store
        .query(
            "PREFIX app: <http://grdf.org/app#>
             PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
             SELECT (COUNT(?o) AS ?n) WHERE {
               ?o app:observedFeature ?s ; app:phenomenonTime ?t .
               FILTER(?t >= \"2026-07-06T18:00:00Z\"^^xsd:dateTime)
             }",
        )
        .expect("temporal query");
    println!(
        "\nreadings after 18:00 UTC: {}",
        recent.select_rows()[0]["n"]
            .as_literal()
            .unwrap()
            .as_integer()
            .unwrap()
    );

    // The temperature coverage answers point probes anywhere in the area.
    let probe = Coord::xy(2_540_000.0, 7_080_000.0);
    let temp = sensors.temperature.evaluate(&probe);
    println!(
        "\ntemperature coverage: {} samples, mean {:.1}, at probe point {}",
        sensors.temperature.len(),
        sensors.temperature.mean().unwrap(),
        match temp {
            Value::Double(d) => format!("{d:.1}"),
            other => other.to_string(),
        }
    );

    // Confirm the trend on the worst stream: first vs last reading.
    let trend = store
        .query(&format!(
            "PREFIX app: <http://grdf.org/app#>
             SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE {{
               ?o app:observedFeature {worst} ; app:result ?v .
             }}"
        ))
        .expect("trend query");
    let row = &trend.select_rows()[0];
    println!(
        "contaminated stream turbidity range: {:.1} → {:.1} NTU",
        row["lo"].as_literal().unwrap().as_double().unwrap(),
        row["hi"].as_literal().unwrap().as_double().unwrap(),
    );
}
