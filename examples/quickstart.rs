//! Quickstart: build a GRDF store, add geospatial features, reason, query.
//!
//! Run with: `cargo run --example quickstart`

use grdf::core::store::GrdfStore;
use grdf::feature::Feature;
use grdf::geometry::{Coord, LineString, Point};

fn main() {
    // 1. A store preloaded with the GRDF ontology (Fig. 1 of the paper).
    let mut store = GrdfStore::new();
    println!("ontology triples: {}", store.len());

    // 2. Insert features natively …
    let mut creek = Feature::new("http://grdf.org/app#WhiteRockCreek", "Stream");
    creek.set_property("hasStreamName", "White Rock Creek");
    creek.set_geometry(
        LineString::new(vec![
            Coord::xy(2_533_822.2, 7_108_248.8),
            Coord::xy(2_534_100.0, 7_108_500.0),
            Coord::xy(2_534_450.0, 7_108_900.0),
        ])
        .expect("two or more vertices")
        .into(),
    );
    store.insert_feature(&creek).expect("insert");

    let mut plant = Feature::new("http://grdf.org/app#NTEnergy", "ChemSite");
    plant.set_property("hasSiteName", "North Texas Energy");
    plant.set_property("hasChemCode", "121NR");
    plant.set_geometry(Point::new(2_534_000.0, 7_108_400.0).into());
    store.insert_feature(&plant).expect("insert");

    // … or from heterogeneous sources (here: Turtle; GML works the same).
    store
        .load_turtle(
            r"@prefix app: <http://grdf.org/app#> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               @prefix grdf: <http://grdf.org/ontology#> .
               app:ChemSite rdfs:subClassOf grdf:Feature .
               app:Stream rdfs:subClassOf grdf:Feature .",
        )
        .expect("load turtle");

    // 3. Materialize inference: subclass knowledge makes both instances
    //    grdf:Features without anyone asserting it.
    let stats = store.materialize();
    println!(
        "inferred {} new triples in {} passes",
        stats.inferred, stats.passes
    );
    println!("features known to the store: {}", store.feature_count());

    // 4. Query across the merged graph — including a spatial filter.
    let rows = store
        .query(
            "PREFIX app: <http://grdf.org/app#>
             SELECT ?name WHERE {
               ?site a app:ChemSite ; app:hasSiteName ?name .
               FILTER(grdf:intersectsBox(?site, 2530000, 7100000, 2540000, 7110000))
             }",
        )
        .expect("query");
    for row in rows.select_rows() {
        println!("chemical site in window: {}", row["name"]);
    }

    // 5. Serialize the whole store back out.
    let turtle = store.to_turtle();
    println!("turtle export: {} bytes", turtle.len());
}
