//! The topology model of Fig. 2: coordinate-free modelling of a small
//! drainage network, then *realization* into concrete geometry, with the
//! List 5 cardinality rules enforced both structurally and by the OWL
//! consistency checker.
//!
//! Run with: `cargo run --example topology_realization`

use std::collections::HashMap;

use grdf::core::ontology::grdf_ontology;
use grdf::geometry::Coord;
use grdf::owl::consistency::check_consistency;
use grdf::owl::reasoner::Reasoner;
use grdf::rdf::term::Term;
use grdf::rdf::vocab::{grdf as ns, rdf};
use grdf::topology::model::{DirectedEdge, TopologyModel};
use grdf::topology::realize::Realization;
use grdf::topology::TopoCurve;

fn main() {
    // --- connectivity first, coordinates later ---------------------------
    // A confluence: two headwaters meet at a junction and continue to an
    // outflow. No coordinates exist yet — "the connectivity information is
    // enough to perform these operations" (§6).
    let mut m = TopologyModel::new();
    let head_a = m.add_node();
    let head_b = m.add_node();
    let junction = m.add_node();
    let outflow = m.add_node();
    let e1 = m.add_edge(head_a, junction).expect("edge");
    let e2 = m.add_edge(head_b, junction).expect("edge");
    let e3 = m.add_edge(junction, outflow).expect("edge");

    println!(
        "nodes={}, edges={}, components={}",
        m.node_count(),
        m.edge_count(),
        m.connected_components()
    );
    println!("head A reaches outflow: {}", m.connected(head_a, outflow));
    println!(
        "path A→outflow: {} hops",
        m.shortest_path(head_a, outflow).expect("connected").len() - 1
    );

    // A TopoCurve: isomorphic to a geometric curve, still no coordinates.
    let main_stem = TopoCurve::new(
        &m,
        vec![DirectedEdge::forward(e1), DirectedEdge::forward(e3)],
    )
    .expect("contiguous chain");
    println!(
        "main stem: {} edges, closed = {}",
        main_stem.len(),
        main_stem.is_closed(&m)
    );

    // --- realization ------------------------------------------------------
    // Now bind the nodes to points; edges get straight-line curves whose
    // endpoints must coincide with the node points (checked).
    let coords: HashMap<_, _> = [
        (head_a, Coord::xy(0.0, 100.0)),
        (head_b, Coord::xy(0.0, 0.0)),
        (junction, Coord::xy(80.0, 50.0)),
        (outflow, Coord::xy(200.0, 55.0)),
    ]
    .into_iter()
    .collect();
    let realization = Realization::realize_graph_straight(&m, &coords).expect("consistent");
    println!(
        "realized {} primitives; total stream length = {:.1} units",
        realization.realized_count(),
        realization.total_edge_length()
    );
    let _ = e2;

    // --- the same rules, enforced by the ontology -------------------------
    // Encode a Face instance in RDF and let the OWL layer enforce List 5:
    // a Face needs ≥1 hasEdge and allows ≤1 hasSurface.
    let mut g = grdf_ontology();
    let face = Term::iri("urn:ex#face1");
    g.add(
        face.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&ns::iri("Face")),
    );
    Reasoner::default().materialize(&mut g);
    let violations = check_consistency(&g);
    println!(
        "face without edges: {} violation(s) — {}",
        violations.len(),
        violations[0]
    );

    g.add(
        face.clone(),
        Term::iri(&ns::iri("hasEdge")),
        Term::iri("urn:ex#edge1"),
    );
    println!(
        "after adding an edge: {} violation(s)",
        check_consistency(&g).len()
    );

    g.add(
        face.clone(),
        Term::iri(&ns::iri("hasSurface")),
        Term::iri("urn:ex#s1"),
    );
    g.add(
        face,
        Term::iri(&ns::iri("hasSurface")),
        Term::iri("urn:ex#s2"),
    );
    let v = check_consistency(&g);
    println!(
        "two surfaces on one face: {} violation(s) — {}",
        v.len(),
        v[0]
    );
}
