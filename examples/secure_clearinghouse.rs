//! Combining policies from multiple geospatial clearinghouses (paper §7:
//! "each node may enforce its own set of policies … if the combination of
//! policies from participating systems is inconsistent, additional rules
//! may be needed to resolve conflicts").
//!
//! This example merges two clearinghouses' policy sets, detects the
//! conflicts, resolves them with a combining algorithm, enforces
//! Edit/Delete on updates, inspects the audit log, and uses the reasoner's
//! explanation facility to justify a security-relevant inference.
//!
//! Run with: `cargo run --example secure_clearinghouse`

use grdf::owl::explain::explain;
use grdf::owl::reasoner::Reasoner;
use grdf::rdf::term::{Term, Triple};
use grdf::rdf::vocab::{grdf as ns, rdf};
use grdf::rdf::Graph;
use grdf::security::conflicts::{detect_conflicts, resolved_policy_set, CombiningAlgorithm};
use grdf::security::gsacs::{
    GSacs, NoReasoning, OntoRepository, UpdateOp, UpdateOutcome, UpdateRequest,
};
use grdf::security::policy::{Action, Policy, PolicySet};

fn main() {
    // --- data: one refinery, typed through a subclass ---------------------
    let mut data = Graph::new();
    data.add(
        Term::iri(&ns::app("Refinery")),
        Term::iri(grdf::rdf::vocab::rdfs::SUB_CLASS_OF),
        Term::iri(&ns::app("ChemSite")),
    );
    let plant = Term::iri(&ns::app("plant1"));
    data.add(
        plant.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&ns::app("Refinery")),
    );
    data.add(
        plant.clone(),
        Term::iri(&ns::app("hasChemCode")),
        Term::string("121NR"),
    );
    let base = data.clone();
    Reasoner::default().materialize(&mut data);

    // --- two clearinghouses contribute policies for the same role --------
    let combined = PolicySet::new(vec![
        // Clearinghouse A: contractors may view chemical sites' extents.
        Policy::permit_properties(
            "urn:chA#p1",
            &ns::sec("Contractor"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy")],
        ),
        // Clearinghouse A (older rule): contractors may view chemical
        // sites unconditionally — shadows the restriction above!
        Policy::permit("urn:chA#p0", &ns::sec("Contractor"), &ns::app("ChemSite")),
        // Clearinghouse B: contractors must NOT see refineries at all.
        Policy::deny("urn:chB#p9", &ns::sec("Contractor"), &ns::app("Refinery")),
    ]);

    println!("combined policy set: {} policies", combined.policies.len());
    let conflicts = detect_conflicts(&data, &combined);
    println!("detected {} conflicts:", conflicts.len());
    for c in &conflicts {
        println!("  - {c}");
    }

    // --- resolve with deny-overrides (least privilege) ---------------------
    let resolved = resolved_policy_set(&data, &combined, CombiningAlgorithm::DenyOverrides);
    println!(
        "after resolution (deny-overrides): {} policies remain: {:?}",
        resolved.policies.len(),
        resolved
            .policies
            .iter()
            .map(|p| p.id.as_str())
            .collect::<Vec<_>>()
    );
    assert!(
        detect_conflicts(&data, &resolved).is_empty(),
        "resolution must converge"
    );

    // The refinery deny now governs the subclass-typed plant.
    let access = resolved.evaluate(
        &data,
        &ns::sec("Contractor"),
        &plant,
        &ns::app("hasChemCode"),
        Action::View,
    );
    println!("contractor → plant1.hasChemCode: {access:?}");

    // Why is plant1 covered by a ChemSite policy at all? Ask the reasoner.
    let membership = Triple::new(
        plant.clone(),
        Term::iri(rdf::TYPE),
        Term::iri(&ns::app("ChemSite")),
    );
    let derivation = explain(&data, &base, &membership, 6).expect("explainable");
    println!("\njustification for the policy's applicability:\n{derivation}\n");

    // --- updates are enforced per action and audited -----------------------
    let mut svc = GSacs::new(
        OntoRepository::new(),
        resolved,
        Box::new(NoReasoning),
        data,
        16,
    );
    let attempt = svc.handle_update(&UpdateRequest {
        role: ns::sec("Contractor"),
        ops: vec![UpdateOp::Delete(Triple::new(
            plant.clone(),
            Term::iri(&ns::app("hasChemCode")),
            Term::string("121NR"),
        ))],
    });
    match &attempt {
        UpdateOutcome::Denied { reason, .. } => println!("update blocked: {reason}"),
        UpdateOutcome::Applied(n) => println!("update applied ({n} triples)"),
    }
    assert!(matches!(attempt, UpdateOutcome::Denied { .. }));

    println!("\naudit log:");
    for entry in svc.audit_log() {
        println!(
            "  [{}] role={} target={} allowed={}",
            entry.action,
            entry.role.rsplit('#').next().unwrap_or(&entry.role),
            entry.target,
            entry.allowed
        );
    }
    assert_eq!(svc.audit_denials().len(), 1);
}
