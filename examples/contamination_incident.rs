//! The paper's §7.1 scenario end-to-end: a water-contamination incident in
//! a chemical plants zone, three response roles, and fine-grained secure
//! views served through the G-SACS architecture of Fig. 3.
//!
//! Run with: `cargo run --example contamination_incident`

use grdf::core::ontology::grdf_ontology;
use grdf::rdf::vocab::grdf as ns;
use grdf::security::gsacs::{ClientRequest, GSacs, OntoRepository, OwlHorstEngine};
use grdf::security::ontology::security_ontology;
use grdf::security::policy::{Policy, PolicySet};
use grdf::workload::chemical::{alignment_axioms, generate_chemical_sites, ChemicalConfig};
use grdf::workload::hydrology::{generate_hydrology, HydrologyConfig};

fn main() {
    // --- data: hydrology topology + chemical repository (Lists 6–7) -----
    let hydro = generate_hydrology(&HydrologyConfig {
        streams: 60,
        seed: 7,
        ..Default::default()
    });
    let chem = generate_chemical_sites(&ChemicalConfig {
        sites: 40,
        seed: 8,
        ..Default::default()
    });
    let mut data = grdf::rdf::turtle::parse(alignment_axioms()).expect("axioms");
    for f in hydro.features.iter().chain(chem.features.iter()) {
        grdf::feature::encode_feature(&mut data, f);
    }
    println!("merged incident dataset: {} triples", data.len());

    // --- policies for the three §7.1 roles (List 8 style) ----------------
    let policies = PolicySet::new(vec![
        // 'main repair' — repairs wastewater pipes; may see only where the
        // chemical sites are, not what they store.
        Policy::permit_properties(
            &ns::sec("MainRepPolicy1"),
            &ns::sec("MainRep"),
            &ns::app("ChemSite"),
            &[&ns::iri("isBoundedBy"), &ns::iri("hasGeometry")],
        ),
        Policy::permit(
            &ns::sec("MainRepPolicy2"),
            &ns::sec("MainRep"),
            &ns::app("Stream"),
        ),
        // 'hazmat personnel' — clean up the spill; need chemicals + places.
        Policy::permit_properties(
            &ns::sec("HazmatPolicy1"),
            &ns::sec("Hazmat"),
            &ns::app("ChemSite"),
            &[
                &ns::iri("isBoundedBy"),
                &ns::iri("hasGeometry"),
                &ns::app("hasChemicalInfo"),
                &ns::app("hasSiteName"),
            ],
        ),
        Policy::permit(
            &ns::sec("HazmatPolicy2"),
            &ns::sec("Hazmat"),
            &ns::app("ChemInfo"),
        ),
        Policy::permit(
            &ns::sec("HazmatPolicy3"),
            &ns::sec("Hazmat"),
            &ns::app("Stream"),
        ),
        // 'emergency response' — administrative role, full access.
        Policy::permit(
            &ns::sec("EmPolicy1"),
            &ns::sec("Emergency"),
            &ns::app("ChemSite"),
        ),
        Policy::permit(
            &ns::sec("EmPolicy2"),
            &ns::sec("Emergency"),
            &ns::app("ChemInfo"),
        ),
        Policy::permit(
            &ns::sec("EmPolicy3"),
            &ns::sec("Emergency"),
            &ns::app("Stream"),
        ),
    ]);

    // --- assemble G-SACS (Fig. 3) ----------------------------------------
    let mut repo = OntoRepository::new();
    repo.register("grdf", grdf_ontology());
    repo.register("seconto", security_ontology());
    let service = GSacs::new(repo, policies, Box::<OwlHorstEngine>::default(), data, 256);
    println!(
        "G-SACS up: reasoner={}, {} inferred triples",
        service.reasoner_name(),
        service.inferred
    );

    // --- the same question, three roles, three answers -------------------
    let chemicals_query = format!(
        "PREFIX app: <{}>\nSELECT ?site ?chem WHERE {{ ?site app:hasChemicalInfo ?chem }}",
        ns::APP_NS
    );
    let locations_query = format!(
        "PREFIX app: <{}>\nPREFIX grdf: <{}>\nSELECT ?site WHERE {{ ?site a app:ChemSite ; grdf:isBoundedBy ?b }}",
        ns::APP_NS,
        ns::NS
    );

    for role in ["MainRep", "Hazmat", "Emergency"] {
        let role_iri = ns::sec(role);
        let chems = service
            .handle(&ClientRequest {
                role: role_iri.clone(),
                query: chemicals_query.clone(),
            })
            .expect("query");
        let locs = service
            .handle(&ClientRequest {
                role: role_iri.clone(),
                query: locations_query.clone(),
            })
            .expect("query");
        let stats = service.view_stats_for(&role_iri).expect("view built");
        println!(
            "{role:>9}: sees {} chemical links, {} site locations  (granted {} / suppressed {} triples)",
            chems.select_rows().len(),
            locs.select_rows().len(),
            stats.granted,
            stats.suppressed,
        );
    }

    // --- the cache earns its keep on repeated requests --------------------
    for _ in 0..50 {
        service
            .handle(&ClientRequest {
                role: ns::sec("Hazmat"),
                query: chemicals_query.clone(),
            })
            .expect("query");
    }
    let (hits, misses) = service.cache_stats();
    println!(
        "query cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        service.cache_hit_rate() * 100.0
    );
}
