//! Cross-domain aggregation: the paper's §1 motivation. Three sources in
//! three formats (GML, Turtle, RDF/XML) about overlapping real-world
//! entities are merged into one GRDF graph; reasoning then discovers the
//! identities and classifications no single silo contains.
//!
//! Run with: `cargo run --example aggregation`

use grdf::core::store::GrdfStore;
use grdf::rdf::vocab::grdf as ns;

/// Source 1 — a defense-style movement-tracking feed in GML (cf. the
/// paper's enemy-movement example).
const TRACKING_GML: &str = r#"<gml:FeatureCollection
    xmlns:gml="http://www.opengis.net/gml" xmlns:app="http://grdf.org/app#">
  <gml:featureMember>
    <app:TrackedVehicle gml:id="veh42">
      <app:plate>TX-4421</app:plate>
      <app:lastSeen>
        <gml:Point srsName="http://grdf.org/crs/TX83-NCF">
          <gml:pos>2533900 7108300</gml:pos>
        </gml:Point>
      </app:lastSeen>
    </app:TrackedVehicle>
  </gml:featureMember>
</gml:FeatureCollection>"#;

/// Source 2 — criminal records in Turtle, using its own vocabulary.
const RECORDS_TTL: &str = r#"
@prefix cr: <urn:records#> .
@prefix app: <http://grdf.org/app#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .

# Vocabulary alignment: the records vocabulary extends the app vocabulary.
cr:SuspectVehicle rdfs:subClassOf app:TrackedVehicle .
cr:plateNumber rdfs:subPropertyOf app:plate .
app:plate a owl:InverseFunctionalProperty .

cr:case771vehicle a cr:SuspectVehicle ;
    cr:plateNumber "TX-4421" ;
    cr:associatedCase "771-B" .
"#;

/// Source 3 — an infrastructure registry in RDF/XML (the paper's listing
/// syntax).
const INFRA_RDFXML: &str = r#"<rdf:RDF
    xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
    xmlns:app="http://grdf.org/app#">
  <app:ChemSite rdf:about="http://grdf.org/app#NTEnergy">
    <app:hasSiteName>North Texas Energy</app:hasSiteName>
    <app:hasChemCode>121NR</app:hasChemCode>
  </app:ChemSite>
</rdf:RDF>"#;

fn main() {
    let mut store = GrdfStore::new();
    let n1 = store.load_gml(TRACKING_GML).expect("gml");
    let n2 = store.load_turtle(RECORDS_TTL).expect("turtle");
    let n3 = store.load_rdfxml(INFRA_RDFXML).expect("rdf/xml");
    println!(
        "loaded 3 sources ({n1} features, {n2} + {n3} triples); store = {} triples",
        store.len()
    );

    // Before reasoning, the silos do not talk to each other: the tracked
    // vehicle and the case vehicle are unrelated resources.
    println!(
        "identities before reasoning: {}",
        store.same_as_links().len()
    );

    let stats = store.materialize();
    println!(
        "materialized {} inferences in {} passes",
        stats.inferred, stats.passes
    );

    // The inverse-functional plate number identified the two records.
    for (a, b) in store.same_as_links() {
        println!("discovered identity: {a} == {b}");
    }

    // A cross-domain query the silos could never answer: which case is
    // associated with a vehicle the tracker has coordinates for?
    let rows = store
        .query(
            "PREFIX app: <http://grdf.org/app#>
             PREFIX cr: <urn:records#>
             PREFIX grdf: <http://grdf.org/ontology#>
             SELECT DISTINCT ?case ?plate WHERE {
               ?v grdf:hasGeometry ?loc ;
                  cr:associatedCase ?case ;
                  app:plate ?plate .
             }",
        )
        .expect("query");
    for row in rows.select_rows() {
        println!(
            "case {} involves vehicle with plate {} — position known",
            row["case"], row["plate"]
        );
    }
    assert_eq!(
        rows.select_rows().len(),
        1,
        "aggregation must connect the silos"
    );

    // Everything can go back out as GML for legacy consumers.
    let gml = store.to_gml();
    println!("re-exported GML: {} bytes", gml.len());
    let _ = ns::NS;
}
