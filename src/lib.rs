//! # GRDF — Geospatial Resource Description Framework
//!
//! A from-scratch Rust reproduction of *"Geospatial Resource Description
//! Framework (GRDF) and security constructs"* (Alam, Khan, Thuraisingham;
//! ICDE 2008 / Computer Standards & Interfaces 33, 2011).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`xml`] — XML 1.0 substrate (parser/writer).
//! * [`rdf`] — RDF data model, triple store, Turtle/N-Triples/RDF-XML.
//! * [`owl`] — OWL-DL subset and forward-chaining reasoner.
//! * [`geometry`] — GRDF geometry model (§5 of the paper).
//! * [`topology`] — GRDF topology model (§6, Fig. 2).
//! * [`feature`] — GRDF feature model (§4) + temporal/coverage types (§3.3).
//! * [`gml`] — GML 3.1 subset and GML↔GRDF conversion (§3.2).
//! * [`query`] — SPARQL-subset engine with geospatial builtins.
//! * [`obs`] — observability: metrics registry, spans, trace export.
//! * [`runtime`] — clocks, budgets, and cooperative deadlines.
//! * [`security`] — security ontology, policies, G-SACS (§7–§8, Fig. 3)
//!   and its fail-closed resilience layer.
//! * [`server`] — multi-tenant HTTP/1.1 service layer over G-SACS with
//!   admission quotas, deadlines, and backpressure.
//! * [`store`] — crash-safe durability: write-ahead log + checkpoint
//!   store with corruption-tolerant recovery.
//! * [`sim`] — deterministic whole-system simulation: one master seed
//!   drives every fault surface, with invariant oracles and a
//!   replay/shrink loop.
//! * [`lint`] — static analysis over ontologies, policy sets, and
//!   instance graphs, with typed diagnostics and stable codes.
//! * [`core`] — the GRDF ontology itself + the aggregation store.
//! * [`workload`] — synthetic dataset generators (Lists 6–7 substitutes).
//!
//! ## Quickstart
//!
//! ```
//! use grdf::core::store::GrdfStore;
//! use grdf::feature::Feature;
//! use grdf::geometry::Point;
//!
//! let mut store = GrdfStore::new();
//! let mut f = Feature::new("http://example.org/site/1", "ChemSite");
//! f.set_geometry(Point::new(2533822.1, 7108248.8).into());
//! store.insert_feature(&f).unwrap();
//! assert_eq!(store.feature_count(), 1);
//! ```

pub use grdf_core as core;
pub use grdf_feature as feature;
pub use grdf_geometry as geometry;
pub use grdf_gml as gml;
pub use grdf_lint as lint;
pub use grdf_obs as obs;
pub use grdf_owl as owl;
pub use grdf_query as query;
pub use grdf_rdf as rdf;
pub use grdf_runtime as runtime;
pub use grdf_security as security;
pub use grdf_server as server;
pub use grdf_sim as sim;
pub use grdf_store as store;
pub use grdf_topology as topology;
pub use grdf_workload as workload;
pub use grdf_xml as xml;
